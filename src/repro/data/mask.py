"""Synthetic land mask.

The NOAA product masks out land cells before flattening ocean cells into
an ``R^{N_h}`` snapshot vector. We build a deterministic synthetic
coastline from boxes and ellipses that roughly mimic the real continents.
What matters downstream is (a) an ocean fraction near the real one
(~0.67 of the globe, higher on the one-degree grid because of lakes), and
(b) that the paper's Eastern Pacific assessment box (-10..10 lat,
200..250 lon) is open ocean far from coasts.
"""

from __future__ import annotations

import numpy as np

from repro.data.grid import LatLonGrid, EASTERN_PACIFIC

__all__ = ["synthetic_land_mask"]

# (lat_min, lat_max, lon_min, lon_max, kind) — kind "box" or "ellipse".
# A coarse cartoon of the continents on a 0..360 East longitude circle.
_CONTINENTS: tuple[tuple[float, float, float, float, str], ...] = (
    # North America
    (15.0, 72.0, 235.0, 300.0, "ellipse"),
    # Central America bridge
    (8.0, 20.0, 255.0, 280.0, "box"),
    # South America
    (-55.0, 12.0, 278.0, 325.0, "ellipse"),
    # Africa
    (-35.0, 37.0, 343.0, 412.0, "ellipse"),   # wraps through 0
    # Eurasia
    (5.0, 77.0, 0.0, 180.0, "ellipse"),
    # India emphasis (keeps the Indian Ocean open south of it)
    (8.0, 30.0, 68.0, 90.0, "box"),
    # Australia
    (-39.0, -11.0, 113.0, 154.0, "ellipse"),
    # Antarctica
    (-90.0, -70.0, 0.0, 360.0, "box"),
    # Greenland
    (60.0, 83.0, 300.0, 340.0, "ellipse"),
)


def _ellipse_mask(lat2d: np.ndarray, lon2d: np.ndarray,
                  lat_min: float, lat_max: float,
                  lon_min: float, lon_max: float) -> np.ndarray:
    c_lat = 0.5 * (lat_min + lat_max)
    c_lon = 0.5 * (lon_min + lon_max)
    r_lat = 0.5 * (lat_max - lat_min)
    r_lon = 0.5 * (lon_max - lon_min)
    dlon = (lon2d - c_lon + 180.0) % 360.0 - 180.0
    return ((lat2d - c_lat) / r_lat) ** 2 + (dlon / r_lon) ** 2 <= 1.0


def _box_mask(lat2d: np.ndarray, lon2d: np.ndarray,
              lat_min: float, lat_max: float,
              lon_min: float, lon_max: float) -> np.ndarray:
    lon_lo = lon_min % 360.0
    lon_hi = lon_max % 360.0
    in_lat = (lat2d >= lat_min) & (lat2d <= lat_max)
    if lon_min == 0.0 and lon_max == 360.0:
        return in_lat
    if lon_lo <= lon_hi:
        in_lon = (lon2d >= lon_lo) & (lon2d <= lon_hi)
    else:  # wraps the dateline
        in_lon = (lon2d >= lon_lo) | (lon2d <= lon_hi)
    return in_lat & in_lon


def synthetic_land_mask(grid: LatLonGrid) -> np.ndarray:
    """Boolean array of shape ``grid.shape`` — True where OCEAN.

    Deterministic (no RNG): the same grid always yields the same mask, so
    snapshot flattening is stable across runs.
    """
    lat2d, lon2d = grid.mesh()
    land = np.zeros(grid.shape, dtype=bool)
    for lat_min, lat_max, lon_min, lon_max, kind in _CONTINENTS:
        if kind == "ellipse":
            land |= _ellipse_mask(lat2d, lon2d, lat_min, lat_max,
                                  lon_min, lon_max)
        else:
            land |= _box_mask(lat2d, lon2d, lat_min, lat_max,
                              lon_min, lon_max)
    ocean = ~land
    # Sanity invariants the rest of the library relies on.
    frac = ocean.mean()
    if not 0.5 < frac < 0.9:  # pragma: no cover - construction guarantee
        raise RuntimeError(f"synthetic ocean fraction {frac:.2f} implausible")
    ep = EASTERN_PACIFIC.mask(grid)
    if not ocean[ep].all():  # pragma: no cover - construction guarantee
        raise RuntimeError("Eastern Pacific assessment box intersects land")
    return ocean
