"""Dataset assembly: generator + calendar + canonical splits.

``SSTDataset`` is the single object the rest of the library consumes. It
owns a :class:`~repro.data.sst.SyntheticSST` generator and the paper's
weekly calendar, exposes the training snapshot matrix (1981-10-22 through
1989, paper: 427 snapshots) eagerly and the much larger test period
(1990-2018, paper: 1,487 snapshots) through chunked access so full-
resolution runs stay within memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.calendar import WeeklyCalendar
from repro.data.grid import LatLonGrid
from repro.data.sst import SSTConfig, SyntheticSST

__all__ = ["SSTDataset", "load_sst_dataset"]


@dataclass
class SSTDataset:
    """The NOAA-OI-SST-shaped emulation dataset.

    Attributes
    ----------
    generator:
        The synthetic field source.
    calendar:
        Weekly calendar; defines the train/test breakpoint.
    """

    generator: SyntheticSST
    calendar: WeeklyCalendar = field(default_factory=WeeklyCalendar)

    def __post_init__(self) -> None:
        self._split = self.calendar.train_test_split_index()
        self._train_cache: np.ndarray | None = None

    # -- canonical index ranges ----------------------------------------
    @property
    def train_indices(self) -> range:
        """Snapshot indices of the training/validation period (pre-1990)."""
        return range(0, self._split)

    @property
    def test_indices(self) -> range:
        """Snapshot indices of the test period (1990 onward)."""
        return range(self._split, self.calendar.n_snapshots)

    @property
    def n_train(self) -> int:
        return len(self.train_indices)

    @property
    def n_test(self) -> int:
        return len(self.test_indices)

    # -- snapshot access -------------------------------------------------
    def training_snapshots(self) -> np.ndarray:
        """Training snapshot matrix ``S``: shape ``(N_h, n_train)``.

        Cached after first call — POD fitting, baseline fitting and
        windowing all reuse it.
        """
        if self._train_cache is None:
            self._train_cache = self.generator.snapshots(
                np.asarray(self.train_indices))
        return self._train_cache

    def snapshots(self, indices) -> np.ndarray:
        """Arbitrary snapshot columns, shape ``(N_h, len(indices))``."""
        return self.generator.snapshots(indices)

    def test_snapshot_chunks(self, chunk: int = 128
                             ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(indices, snapshot_block)`` over the test period.

        Each block has shape ``(N_h, len(indices))``; consumers project to
        POD space immediately so no full test matrix is ever materialized.
        """
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        idx = np.asarray(self.test_indices)
        for start in range(0, idx.size, chunk):
            block_idx = idx[start:start + chunk]
            yield block_idx, self.generator.snapshots(block_idx)

    # -- convenience -----------------------------------------------------
    @property
    def grid(self) -> LatLonGrid:
        return self.generator.grid

    @property
    def ocean_mask(self) -> np.ndarray:
        return self.generator.ocean_mask

    @property
    def n_ocean(self) -> int:
        return self.generator.n_ocean


def load_sst_dataset(*, degrees: float = 4.0, seed: int = 0,
                     n_snapshots: int = 1914,
                     config: SSTConfig | None = None) -> SSTDataset:
    """Build the canonical dataset.

    ``degrees=1`` reproduces the NOAA 360x180 layout exactly;
    the default 4-degree grid keeps full-archive experiments comfortably
    inside a laptop's memory while preserving the POD spectrum (the
    retained modes are planetary-scale).
    """
    generator = SyntheticSST(grid=LatLonGrid(degrees=degrees), seed=seed,
                             config=config or SSTConfig())
    calendar = WeeklyCalendar(n_snapshots=n_snapshots)
    return SSTDataset(generator=generator, calendar=calendar)
