"""Latitude/longitude grids and named regions.

The NOAA OI SST grid is one-degree: 360 longitudes (cell centers at
0.5..359.5 East) by 180 latitudes (-89.5..89.5). Experiments may run at a
coarser resolution (``degrees > 1``) to bound memory on small machines; the
synthetic field generator preserves the large-scale statistics either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatLonGrid", "Region", "EASTERN_PACIFIC"]


@dataclass(frozen=True)
class LatLonGrid:
    """Regular lat/lon grid with cell-center coordinates.

    Fields are stored as arrays of shape ``(n_lat, n_lon)`` with latitude
    ascending (south to north) along axis 0 and longitude eastward
    (0..360) along axis 1.
    """

    degrees: float = 1.0

    def __post_init__(self) -> None:
        if self.degrees <= 0 or 180.0 % self.degrees:
            raise ValueError(
                f"degrees must be positive and divide 180, got {self.degrees}")

    @property
    def n_lon(self) -> int:
        return round(360.0 / self.degrees)

    @property
    def n_lat(self) -> int:
        return round(180.0 / self.degrees)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_lat, self.n_lon)

    @property
    def n_cells(self) -> int:
        return self.n_lat * self.n_lon

    @property
    def lats(self) -> np.ndarray:
        """Cell-center latitudes, ascending, shape ``(n_lat,)``."""
        d = self.degrees
        return np.arange(self.n_lat) * d - 90.0 + d / 2.0

    @property
    def lons(self) -> np.ndarray:
        """Cell-center longitudes East in [0, 360), shape ``(n_lon,)``."""
        d = self.degrees
        return np.arange(self.n_lon) * d + d / 2.0

    def mesh(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lat2d, lon2d)`` meshes of shape ``(n_lat, n_lon)``."""
        return np.meshgrid(self.lats, self.lons, indexing="ij")

    def nearest_index(self, lat: float, lon: float) -> tuple[int, int]:
        """Indices of the cell containing the point ``(lat, lon East)``."""
        if not -90.0 <= lat <= 90.0:
            raise ValueError(f"latitude {lat} out of range [-90, 90]")
        lon = lon % 360.0
        i = min(int((lat + 90.0) / self.degrees), self.n_lat - 1)
        j = min(int(lon / self.degrees), self.n_lon - 1)
        return i, j


@dataclass(frozen=True)
class Region:
    """A lat/lon box, used for regional error metrics (paper: Table I)."""

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float
    name: str = "region"

    def __post_init__(self) -> None:
        if self.lat_max <= self.lat_min:
            raise ValueError("lat_max must exceed lat_min")
        if self.lon_max <= self.lon_min:
            raise ValueError("lon_max must exceed lon_min")

    def mask(self, grid: LatLonGrid) -> np.ndarray:
        """Boolean mask of grid cells inside the box, shape ``grid.shape``."""
        lat2d, lon2d = grid.mesh()
        return ((lat2d >= self.lat_min) & (lat2d <= self.lat_max)
                & (lon2d >= self.lon_min) & (lon2d <= self.lon_max))


#: The paper's Eastern Pacific assessment box: -10..+10 latitude,
#: 200..250 longitude East (Table I, Figs. 6-7).
EASTERN_PACIFIC = Region(lat_min=-10.0, lat_max=10.0,
                         lon_min=200.0, lon_max=250.0,
                         name="eastern_pacific")
