"""Procedural sea-surface-temperature field generator.

Substitutes for the NOAA Optimum Interpolation SST V2 archive (offline
environment — see DESIGN.md). The generated field is a sum of physically
motivated components chosen so the proper-orthogonal-decomposition
spectrum matches the regime the paper reports (Nr = 5 modes capture
roughly 92 % of the mean-removed variance; modes 1-3 quasi-periodic,
modes 4+ increasingly stochastic):

``T(x, t) = climatology(x) + seasonal(x, t) + enso(x, t)
            + trend(x, t) + eddies(x, t)``

* climatology — zonally dominated mean state with an equatorial warm pool;
* seasonal — annual harmonic, hemispherically anti-phased, mid-latitude
  amplified (the dominant POD pair), plus a weaker semi-annual harmonic
  with a distinct spatial pattern (modes 3-4 content);
* enso — an irregular 3-7 year oscillation confined to an Eastern
  equatorial Pacific blob;
* trend — slow warming, amplified in the northern hemisphere (this is what
  defeats the tree/linear baselines on the 1990-2018 test split);
* eddies — spatially correlated AR(1) noise (small-scale stochasticity).

Snapshots are randomly accessible and bit-reproducible: the eddy AR(1)
process is expressed as a truncated moving average over per-timestep noise
fields keyed by ``(seed, t)``, so ``field(t)`` never depends on what else
was generated.

Drift scenarios (``SSTConfig.scenario``) superimpose a structural change
on the archive after a configurable onset week, for exercising
continuous-learning promotion decisions (docs/PIPELINE.md):

* ``"enso_shift"`` — an ENSO regime shift: the Eastern-Pacific ENSO arm
  intensifies (a variance change in the retained modes) and a standing
  warm anomaly builds over the Nino region (a mean change), ramping in
  over ``scenario_ramp_weeks``;
* ``"trend_acceleration"`` — the secular warming *rate* itself grows
  after onset, so the trend offset departs quadratically from the
  pre-onset extrapolation.

``scenario="none"`` (the default) leaves the generator's numerics
untouched — the scenario term is never evaluated, so the no-drift
archive stays bitwise identical to pre-scenario releases (golden
digests in tests/test_sst_generator.py pin both this and the drifted
fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.data.grid import LatLonGrid
from repro.data.mask import synthetic_land_mask

__all__ = ["DRIFT_SCENARIOS", "SSTConfig", "SyntheticSST"]

#: Structural-drift scenarios the generator can superimpose after
#: ``scenario_onset_week`` (``"none"`` disables the machinery entirely).
DRIFT_SCENARIOS = ("none", "enso_shift", "trend_acceleration")

#: Mean tropical year expressed in weeks — the seasonal angular frequency.
WEEKS_PER_YEAR = 365.2425 / 7.0


@dataclass(frozen=True)
class SSTConfig:
    """Amplitudes and scales of the synthetic SST components (degrees C)."""

    # Defaults calibrated (on the 4-degree grid, training period) so the
    # leading 5 POD modes capture ~92 % of the fluctuation variance —
    # the paper's reported figure for NOAA OI SST with Nr = 5.
    seasonal_amplitude: float = 5.0
    seasonal_lag_fraction: float = 0.55  # quadrature annual pattern (mode pair)
    semiannual_amplitude: float = 2.0
    enso_amplitude: float = 1.2
    enso_lag_amplitude: float = 0.8      # westward-shifted lagged ENSO arm
    enso_sq_amplitude: float = 0.6       # quadratic ENSO response (skewness)
    enso_growth_per_37y: float = 0.0     # secular ENSO intensification
    enso_time_scale: float = 0.15         # FHN model-time units per week
    enso_epsilon: float = 0.1           # FHN recovery rate (sets period)
    enso_forcing: float = 0.5            # FHN constant forcing current
    enso_noise: float = 0.1             # stochastic forcing / sqrt(week)
    dipole_amplitude: float = 1.6        # southern chaotic weather arm
    weather_amplitude: float = 2.2       # northern chaotic weather arm
    weather_week_units: float = 0.06     # Lorenz-63 time units per week
    trend_per_year: float = 0.012
    seasonal_drift: float = 0.25         # secular drift of the seasonal-
    #                                      cycle patterns (mild covariate
    #                                      shift of the retained modes)
    eddy_amplitude: float = 1.1
    eddy_rho: float = 0.65          # AR(1) memory of the eddy field
    eddy_smooth_cells: float = 2.0  # spatial correlation length (grid cells)
    eddy_truncation: int = 24       # MA truncation: rho^24 ~ 3e-5
    # Structural drift (see module docstring / DRIFT_SCENARIOS). The
    # scenario term is additive and strictly gated: with "none" the
    # generator's arithmetic is exactly the historical no-drift path.
    scenario: str = "none"
    scenario_onset_week: int = 430       # first drifting week
    scenario_ramp_weeks: int = 104       # enso_shift ramp-in length
    scenario_strength: float = 1.0       # overall drift amplitude scale

    def __post_init__(self) -> None:
        if not 0.0 <= self.eddy_rho < 1.0:
            raise ValueError(f"eddy_rho must be in [0, 1), got {self.eddy_rho}")
        if self.eddy_truncation < 1:
            raise ValueError("eddy_truncation must be >= 1")
        if self.scenario not in DRIFT_SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}; "
                             f"expected one of {DRIFT_SCENARIOS}")
        if self.scenario_onset_week < 0:
            raise ValueError("scenario_onset_week must be >= 0, "
                             f"got {self.scenario_onset_week}")
        if self.scenario_ramp_weeks < 1:
            raise ValueError("scenario_ramp_weeks must be >= 1, "
                             f"got {self.scenario_ramp_weeks}")


@dataclass
class SyntheticSST:
    """Deterministic synthetic SST archive on a lat/lon grid.

    Parameters
    ----------
    grid:
        Target grid (1 degree reproduces the NOAA layout; coarser grids
        preserve the large-scale statistics at lower memory cost).
    seed:
        Base seed. Two instances with the same ``(grid, seed, config)``
        produce identical fields for every index.
    config:
        Component amplitudes.
    """

    grid: LatLonGrid = field(default_factory=LatLonGrid)
    seed: int = 0
    config: SSTConfig = field(default_factory=SSTConfig)

    def __post_init__(self) -> None:
        self.ocean_mask = synthetic_land_mask(self.grid)
        self._lat2d, self._lon2d = self.grid.mesh()
        self._climatology = self._build_climatology()
        (self._seasonal_pattern, self._seasonal_lag_pattern,
         self._semiannual_pattern) = self._build_seasonal_patterns()
        self._enso_pattern = self._build_enso_pattern()
        self._enso_lag_pattern = self._build_enso_lag_pattern()
        self._enso_sq_pattern = self._build_enso_sq_pattern()
        self._dipole_pattern = self._build_dipole_pattern()
        self._weather_pattern = self._build_weather_pattern()
        self._weather_series = np.empty((0, 2))
        # Climate-change drift of the seasonal/ENSO patterns themselves
        # ("seasonal cycle amplification"): a slow DC offset *inside* the
        # retained POD subspace. Training windows are pure oscillation, so
        # the window-mean direction has near-zero training variance — the
        # 1990-2018 drift along it is the covariate shift that collapses
        # the extrapolating baselines in Table II while the saturating
        # LSTMs degrade gracefully.
        self._drift_pattern = self.config.seasonal_drift * (
            0.5 * self._seasonal_lag_pattern
            + 0.4 * self._semiannual_pattern
            + 0.5 * self._enso_pattern)
        self._eddy_modulation = self._build_eddy_modulation()
        self._trend_pattern = self._build_trend_pattern()
        self._enso_origin = -(self.config.eddy_truncation + 64)
        self._enso_series = np.empty(0)
        self._ensure_enso(2048)

    # ------------------------------------------------------------------
    # Spatial patterns
    # ------------------------------------------------------------------
    def _build_climatology(self) -> np.ndarray:
        lat_rad = np.deg2rad(self._lat2d)
        base = -1.8 + 29.5 * np.cos(lat_rad) ** 2
        # Western-Pacific warm pool: a broad equatorial bump near 150E.
        dlon = (self._lon2d - 150.0 + 180.0) % 360.0 - 180.0
        warm_pool = 1.5 * np.exp(-(self._lat2d / 12.0) ** 2
                                 - (dlon / 50.0) ** 2)
        return (base + warm_pool).astype(np.float64)

    def _build_seasonal_patterns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        alat = np.minimum(np.abs(self._lat2d), 65.0)
        amp = self.config.seasonal_amplitude * np.sin(alat / 65.0 * np.pi / 2.0)
        hemi = np.tanh(self._lat2d / 8.0)
        annual_cos = amp * hemi
        # Quadrature (thermally lagged) annual pattern with distinct zonal
        # structure — turns the annual cycle into a POD mode *pair*, as in
        # the real SST field where ocean basins lag the insolation.
        annual_sin = (self.config.seasonal_lag_fraction * amp * hemi
                      * np.cos(np.deg2rad(self._lon2d - 40.0)))
        # Semi-annual harmonic with zonal structure (distinct POD content).
        semi = (self.config.semiannual_amplitude
                * np.cos(np.deg2rad(2.0 * self._lon2d))
                * np.exp(-((np.abs(self._lat2d) - 35.0) / 25.0) ** 2))
        return annual_cos, annual_sin, semi

    def _build_enso_pattern(self) -> np.ndarray:
        dlon = (self._lon2d - 235.0 + 180.0) % 360.0 - 180.0
        return self.config.enso_amplitude * np.exp(
            -(self._lat2d / 12.0) ** 2 - (dlon / 60.0) ** 2)

    def _build_enso_lag_pattern(self) -> np.ndarray:
        """Westward-shifted arm excited by the lagged ENSO index —
        a propagating interannual structure (distinct POD mode)."""
        dlon = (self._lon2d - 185.0 + 180.0) % 360.0 - 180.0
        return self.config.enso_lag_amplitude * np.exp(
            -(self._lat2d / 13.0) ** 2 - (dlon / 45.0) ** 2)

    def _build_enso_sq_pattern(self) -> np.ndarray:
        """Quadratic ENSO response (El Nino events run warmer than La Nina
        events run cold — ENSO skewness). Genuinely *nonlinear* dynamics:
        forecasting this content requires squaring an observable state,
        which separates the LSTMs from the linear baseline in Table II."""
        dlon = (self._lon2d - 258.0 + 180.0) % 360.0 - 180.0
        return self.config.enso_sq_amplitude * np.exp(
            -(self._lat2d / 10.0) ** 2 - (dlon / 30.0) ** 2)

    def _build_dipole_pattern(self) -> np.ndarray:
        """Southern-midlatitude zonal wavenumber-3 pattern excited by the
        second chaotic weather index — more nonlinear content for the
        trailing retained modes."""
        return (self.config.dipole_amplitude
                * np.cos(np.deg2rad(3.0 * self._lon2d + 40.0))
                * np.exp(-((self._lat2d + 42.0) / 16.0) ** 2))

    def _build_weather_pattern(self) -> np.ndarray:
        """Northern storm-track pattern excited by the chaotic
        intraseasonal index — the deterministic-but-nonlinear content that
        separates LSTMs from linear forecasters (paper Table II)."""
        return (self.config.weather_amplitude
                * np.cos(np.deg2rad(2.0 * self._lon2d - 30.0))
                * np.exp(-((self._lat2d - 45.0) / 14.0) ** 2))

    def _build_eddy_modulation(self) -> np.ndarray:
        """Latitude modulation of eddy amplitude: small-scale SST
        variability peaks in the midlatitude storm tracks and is weak in
        the tropics — which is also what keeps the paper's Eastern-Pacific
        forecast RMSE (Table I) well below the global eddy level."""
        lat_rad = np.deg2rad(self._lat2d)
        return 0.45 + 0.85 * np.sin(2.0 * lat_rad) ** 2

    def _build_trend_pattern(self) -> np.ndarray:
        # Warming amplified in the northern hemisphere, damped at the poles.
        north = 1.0 + 0.6 * np.tanh(self._lat2d / 30.0)
        polar_damp = np.cos(np.deg2rad(self._lat2d)) ** 0.5
        return north * polar_damp

    # ------------------------------------------------------------------
    # Temporal series
    # ------------------------------------------------------------------
    @staticmethod
    def _annual_phase(t: np.ndarray) -> np.ndarray:
        return 2.0 * np.pi * (t - 10.0) / WEEKS_PER_YEAR

    def _ensure_enso(self, t_max: int) -> None:
        """Extend the precomputed ENSO oscillator series through ``t_max``.

        The index is a stochastically forced **FitzHugh-Nagumo relaxation
        oscillator** — slow recharge, fast discharge — a standard cartoon
        of ENSO's slow build-up and rapid El Nino bursts. The fast
        transitions make 8-week-ahead prediction a genuinely *nonlinear*
        problem (burst timing depends on the full (v, w) state), which is
        the content class that separates LSTMs from the linear baseline
        (Table II). Amplitude intensifies secularly by
        ``enso_growth_per_37y``. Integrated once from a seeded stream, so
        every ``enso_index(t)`` is reproducible and random-access.
        """
        need = t_max - self._enso_origin + 1
        if need <= self._enso_series.size:
            return
        cfg = self.config
        n = max(need, 2 * self._enso_series.size, 2048)
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, 0xE5)))
        substeps = 4
        dt = cfg.enso_time_scale / substeps
        sqrt_dt = np.sqrt(dt)
        v = -1.0 + 0.6 * rng.standard_normal()
        w = 0.3 * rng.standard_normal()
        # Seeded warm-up randomizes the limit-cycle phase so different
        # seeds (e.g. CESM ensemble members vs the observed trajectory)
        # produce decorrelated ENSO histories.
        # Slow Ornstein-Uhlenbeck modulation of the recovery rate makes the
        # oscillation period wander (real ENSO recurs every 2-7 years, not
        # on a clock) — this is also what decorrelates independently seeded
        # trajectories (CESM ensemble members vs the observed record).
        tau = 25.0        # OU relaxation, model-time units (~3 years)
        ou_sigma = 0.30   # stationary std of log-period modulation
        ou = ou_sigma * rng.standard_normal()

        def step() -> None:
            nonlocal v, w, ou
            v += ((v - v ** 3 / 3.0 - w + cfg.enso_forcing) * dt
                  + cfg.enso_noise * sqrt_dt * rng.standard_normal())
            eps = cfg.enso_epsilon * np.exp(ou)
            w += eps * (v + 0.7 - 0.8 * w) * dt
            ou += (-ou / tau) * dt \
                + ou_sigma * np.sqrt(2.0 * dt / tau) * rng.standard_normal()

        for _ in range(int(rng.integers(0, 500)) * substeps):
            step()
        series = np.empty(n)
        for i in range(n):
            t = self._enso_origin + i
            years = max(t, 0) / WEEKS_PER_YEAR
            growth = 1.0 + cfg.enso_growth_per_37y * years / 37.0
            series[i] = v * growth
            for _ in range(substeps):
                step()
        self._enso_series = series

    def enso_index(self, t: int) -> float:
        """ENSO-like index at week ``t`` (see :meth:`_ensure_enso`)."""
        if t < self._enso_origin:
            raise ValueError(
                f"enso_index defined for t >= {self._enso_origin}, got {t}")
        self._ensure_enso(t)
        return float(self._enso_series[t - self._enso_origin])

    def _ensure_weather(self, t_max: int) -> None:
        """Extend the chaotic intraseasonal index through ``t_max``.

        The index is the (standardized) x-coordinate of a Lorenz-63
        trajectory sampled every ``weather_week_units`` model-time units —
        fast deterministic chaos: strongly predictable a few weeks ahead
        *by a nonlinear model*, nearly unpredictable linearly, and fading
        toward the end of the 8-week forecast window. Integrated once with
        RK4 from a seeded initial condition (reproducible random access).
        """
        need = t_max - self._enso_origin + 1
        if need <= self._weather_series.shape[0]:
            return
        n = max(need, 2 * self._weather_series.shape[0], 2048)
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, 0x3A)))
        state = np.array([1.0, 1.0, 25.0]) + rng.normal(0.0, 1.0, size=3)

        def deriv(s: np.ndarray) -> np.ndarray:
            x, y, z = s
            return np.array([10.0 * (y - x),
                             x * (28.0 - z) - y,
                             x * y - (8.0 / 3.0) * z])

        dt = 0.01
        # Warm onto the attractor before recording.
        for _ in range(2000):
            k1 = deriv(state)
            k2 = deriv(state + 0.5 * dt * k1)
            k3 = deriv(state + 0.5 * dt * k2)
            k4 = deriv(state + dt * k3)
            state = state + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        per_week = max(1, int(round(self.config.weather_week_units / dt)))
        series = np.empty((n, 2))
        for i in range(n):
            series[i, 0] = state[0]
            series[i, 1] = state[2]
            for _ in range(per_week):
                k1 = deriv(state)
                k2 = deriv(state + 0.5 * dt * k1)
                k3 = deriv(state + 0.5 * dt * k2)
                k4 = deriv(state + dt * k3)
                state = state + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        # Standardize with the long-run Lorenz-63 statistics
        # (x: mean 0, std ~7.9; z: mean ~23.5, std ~8.6).
        series[:, 0] /= 7.9
        series[:, 1] = (series[:, 1] - 23.5) / 8.6
        self._weather_series = series

    def weather_index(self, t: int) -> float:
        """Northern chaotic intraseasonal index (Lorenz-63 x) at week ``t``."""
        if t < self._enso_origin:
            raise ValueError(
                f"weather_index defined for t >= {self._enso_origin}, got {t}")
        self._ensure_weather(t)
        return float(self._weather_series[t - self._enso_origin, 0])

    def dipole_index(self, t: int) -> float:
        """Southern chaotic weather index (Lorenz-63 z) at week ``t`` —
        nonlinearly coupled to :meth:`weather_index` through the shared
        attractor."""
        if t < self._enso_origin:
            raise ValueError(
                f"dipole_index defined for t >= {self._enso_origin}, got {t}")
        self._ensure_weather(t)
        return float(self._weather_series[t - self._enso_origin, 1])

    # ------------------------------------------------------------------
    # Structural drift scenarios
    # ------------------------------------------------------------------
    def _scenario_term(self, t: int) -> np.ndarray | float:
        """Additive drift field at week ``t`` (0.0 before onset).

        Only called when ``config.scenario != "none"`` — the no-drift
        path never evaluates this, keeping the historical archive
        bitwise unchanged.
        """
        cfg = self.config
        dt = t - cfg.scenario_onset_week
        if dt <= 0:
            return 0.0
        s = cfg.scenario_strength
        if cfg.scenario == "enso_shift":
            # Regime shift: the ENSO arm intensifies (its index couples
            # harder into the pattern — a covariance change of the
            # retained modes) while a standing warm anomaly builds over
            # the Nino region (a mean change), with the lagged western
            # arm strengthening in step. Ramps in over
            # scenario_ramp_weeks, then holds.
            ramp = min(dt / cfg.scenario_ramp_weeks, 1.0)
            return s * ramp * (
                self._enso_pattern * (0.75 * self.enso_index(t) + 0.8)
                + 0.5 * self._enso_lag_pattern * self.enso_index(t - 26))
        # trend_acceleration: the warming *rate* grows linearly after
        # onset, so the accumulated offset departs quadratically from the
        # pre-onset trend line (8x the base rate gained per year at
        # strength 1).
        years = dt / WEEKS_PER_YEAR
        accel = 8.0 * cfg.trend_per_year
        return s * 0.5 * accel * years ** 2 * self._trend_pattern

    # ------------------------------------------------------------------
    # Eddy (stochastic) component
    # ------------------------------------------------------------------
    def _noise_field(self, t: int) -> np.ndarray:
        """White-in-time, spatially smoothed unit-variance noise for week t."""
        # SeedSequence requires non-negative entropy; the AR warm-up reaches
        # back `eddy_truncation` weeks before t=0, so offset the key.
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, 1, t + (1 << 20))))
        white = rng.standard_normal(self.grid.shape)
        smooth = ndimage.gaussian_filter(
            white, sigma=self.config.eddy_smooth_cells, mode=("nearest", "wrap"))
        std = smooth.std()
        return smooth / std if std > 0 else smooth

    def _eddy_field(self, t: int, cache: dict[int, np.ndarray] | None = None
                    ) -> np.ndarray:
        """AR(1) eddy field via truncated moving-average representation.

        ``e_t = sqrt(1-rho^2) * sum_k rho^k n_{t-k}`` truncated at
        ``eddy_truncation`` lags — random access with bounded cost.
        """
        cfg = self.config
        acc = np.zeros(self.grid.shape)
        coeff = np.sqrt(1.0 - cfg.eddy_rho ** 2)
        for k in range(cfg.eddy_truncation + 1):
            tk = t - k
            if tk < -cfg.eddy_truncation:
                break
            if cache is not None and tk in cache:
                noise = cache[tk]
            else:
                noise = self._noise_field(tk)
                if cache is not None:
                    cache[tk] = noise
            acc += (cfg.eddy_rho ** k) * noise
        return cfg.eddy_amplitude * self._eddy_modulation * coeff * acc

    # ------------------------------------------------------------------
    # Public field access
    # ------------------------------------------------------------------
    def field(self, t: int) -> np.ndarray:
        """SST field at week ``t``; land cells are NaN. Shape ``grid.shape``."""
        return self.fields(np.asarray([t]))[0]

    def fields(self, indices) -> np.ndarray:
        """Stack of SST fields, shape ``(len(indices), n_lat, n_lon)``.

        Contiguous ascending index ranges reuse eddy noise fields across
        steps, so sequential generation costs ~1 smoothing per snapshot.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 1:
            raise ValueError(f"indices must be 1-D, got shape {idx.shape}")
        out = np.empty((idx.size,) + self.grid.shape, dtype=np.float64)
        noise_cache: dict[int, np.ndarray] = {}
        max_cache = self.config.eddy_truncation + 2
        for row, t in enumerate(idx):
            t = int(t)
            phase = self._annual_phase(np.float64(t))
            deterministic = (
                self._climatology
                + self._seasonal_pattern * np.cos(phase)
                + self._seasonal_lag_pattern * np.sin(phase)
                + self._semiannual_pattern * np.cos(2.0 * phase + 0.7)
                + self._enso_pattern * self.enso_index(t)
                + self._enso_lag_pattern * self.enso_index(t - 26)
                + self._enso_sq_pattern * (self.enso_index(t) ** 2 - 0.5)
                + self._dipole_pattern * self.dipole_index(t)
                + self._weather_pattern * self.weather_index(t)
                + self._drift_pattern * (t / (37.0 * WEEKS_PER_YEAR))
                + self._trend_pattern * (self.config.trend_per_year
                                         * t / WEEKS_PER_YEAR))
            if self.config.scenario != "none":
                deterministic = deterministic + self._scenario_term(t)
            out[row] = deterministic + self._eddy_field(t, noise_cache)
            # Bound the cache: only the last `truncation` lags are reusable.
            if len(noise_cache) > 2 * max_cache:
                for key in sorted(noise_cache)[:-max_cache]:
                    del noise_cache[key]
        out[:, ~self.ocean_mask] = np.nan
        return out

    def snapshots(self, indices) -> np.ndarray:
        """Flattened ocean-only snapshots, shape ``(N_h, len(indices))``.

        This is the column-per-snapshot layout the POD snapshot matrix
        expects (paper Eq. 1).
        """
        stack = self.fields(indices)
        return np.ascontiguousarray(stack[:, self.ocean_mask].T)

    def unflatten(self, vector: np.ndarray) -> np.ndarray:
        """Expand an ``N_h`` ocean vector back onto the grid (land = NaN)."""
        vector = np.asarray(vector, dtype=np.float64)
        n_ocean = int(self.ocean_mask.sum())
        if vector.shape != (n_ocean,):
            raise ValueError(
                f"expected vector of shape ({n_ocean},), got {vector.shape}")
        out = np.full(self.grid.shape, np.nan)
        out[self.ocean_mask] = vector
        return out

    @property
    def n_ocean(self) -> int:
        """Number of ocean cells ``N_h`` (the snapshot dimension)."""
        return int(self.ocean_mask.sum())
