"""Windowed sequence-to-sequence example extraction.

The paper (Sec. II-B): from ``Ns`` training snapshots of POD coefficients,
"we choose every subinterval of width 2K as an example, where K snapshots
are the input and K snapshots are the output", then randomly sample 80 %
of examples for training and keep 20 % for validation.

Note on example counts: with the paper's Ns = 427 and K = 8 a stride-1
sliding window yields 412 examples; the paper reports 1,111, which implies
the authors' pipeline upsampled the coefficient series in time by a factor
of ~2.7 before windowing (1,126 - 16 + 1 = 1,111). ``upsample`` reproduces
that preprocessing when set; the default (no upsampling) keeps the cleaner
stride-1 construction. Either way the learning task is identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["WindowedExamples", "make_windowed_examples",
           "train_validation_split", "upsample_series"]


@dataclass(frozen=True)
class WindowedExamples:
    """Paired input/output windows.

    Attributes
    ----------
    inputs:
        Shape ``(n_examples, K, n_features)``.
    outputs:
        Shape ``(n_examples, K, n_features)`` — the following K steps.
    """

    inputs: np.ndarray
    outputs: np.ndarray

    def __post_init__(self) -> None:
        if self.inputs.shape != self.outputs.shape:
            raise ValueError(
                f"inputs {self.inputs.shape} and outputs "
                f"{self.outputs.shape} must have identical shapes")
        if self.inputs.ndim != 3:
            raise ValueError(
                f"expected 3-D (examples, K, features), got {self.inputs.ndim}-D")

    @property
    def n_examples(self) -> int:
        return self.inputs.shape[0]

    @property
    def window(self) -> int:
        return self.inputs.shape[1]

    @property
    def n_features(self) -> int:
        return self.inputs.shape[2]

    def subset(self, indices) -> "WindowedExamples":
        idx = np.asarray(indices, dtype=np.int64)
        return WindowedExamples(self.inputs[idx], self.outputs[idx])


def upsample_series(coefficients: np.ndarray, factor: float) -> np.ndarray:
    """Linearly interpolate a ``(n_features, n_time)`` series in time.

    ``factor > 1`` increases temporal sampling density; used to reproduce
    the paper's example count (see module docstring).
    """
    coeff = check_matrix(coefficients, name="coefficients")
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    n_time = coeff.shape[1]
    n_new = max(2, int(round(n_time * factor)))
    old_t = np.arange(n_time, dtype=np.float64)
    new_t = np.linspace(0.0, n_time - 1.0, n_new)
    return np.stack([np.interp(new_t, old_t, row) for row in coeff])


def make_windowed_examples(coefficients: np.ndarray, window: int,
                           *, stride: int = 1,
                           upsample: float | None = None) -> WindowedExamples:
    """Slide a ``2*window`` subinterval over a coefficient series.

    Parameters
    ----------
    coefficients:
        POD coefficient matrix ``A`` of shape ``(n_features, n_time)``
        (rows = modes, columns = time), as produced by
        :func:`repro.pod.project_coefficients`.
    window:
        K — the input length and the forecast length.
    stride:
        Step between consecutive subinterval starts.
    upsample:
        Optional temporal upsampling factor applied before windowing.
    """
    coeff = check_matrix(coefficients, name="coefficients")
    window = check_positive_int(window, name="window")
    stride = check_positive_int(stride, name="stride")
    if upsample is not None:
        coeff = upsample_series(coeff, upsample)
    n_time = coeff.shape[1]
    if n_time < 2 * window:
        raise ValueError(
            f"need at least 2*window={2 * window} time steps, got {n_time}")
    starts = np.arange(0, n_time - 2 * window + 1, stride)
    # (time, features) layout for the sequence models.
    series = np.ascontiguousarray(coeff.T)
    inputs = np.stack([series[s:s + window] for s in starts])
    outputs = np.stack([series[s + window:s + 2 * window] for s in starts])
    return WindowedExamples(inputs, outputs)


def train_validation_split(examples: WindowedExamples,
                           *, train_fraction: float = 0.8,
                           rng=None) -> tuple[WindowedExamples, WindowedExamples]:
    """Random 80/20 split of examples (paper Sec. II-B).

    Both sides are guaranteed non-empty, so ``n_examples`` must be at
    least 2 — with one example the old clamping silently produced an
    empty training set.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(
            f"train_fraction must be in (0, 1), got {train_fraction}")
    gen = as_generator(rng)
    n = examples.n_examples
    if n < 2:
        raise ValueError(
            f"need at least 2 examples to split into non-empty train and "
            f"validation sets, got {n}")
    perm = gen.permutation(n)
    n_train = max(1, int(round(train_fraction * n)))
    n_train = min(n_train, n - 1)
    return examples.subset(perm[:n_train]), examples.subset(perm[n_train:])
