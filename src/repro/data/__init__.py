"""Synthetic geophysical data substrate.

The paper uses the NOAA Optimum Interpolation SST V2 data set (weekly
360x180 one-degree snapshots, 1981-10-22 to 2018-06-30, 1,914 snapshots).
That archive is not reachable offline, so this package procedurally
generates a statistically equivalent data set on the same grid and
calendar: seasonal cycle, ENSO-like interannual variability in the Eastern
Pacific, a slow warming trend, and spatially correlated eddies, over a
synthetic land mask. See DESIGN.md section 1 for the substitution argument.
"""

from repro.data.calendar import WeeklyCalendar
from repro.data.grid import LatLonGrid, Region, EASTERN_PACIFIC
from repro.data.mask import synthetic_land_mask
from repro.data.sst import SSTConfig, SyntheticSST
from repro.data.windowing import (
    WindowedExamples,
    make_windowed_examples,
    train_validation_split,
)
from repro.data.loaders import SSTDataset, load_sst_dataset

__all__ = [
    "WeeklyCalendar",
    "LatLonGrid",
    "Region",
    "EASTERN_PACIFIC",
    "synthetic_land_mask",
    "SSTConfig",
    "SyntheticSST",
    "WindowedExamples",
    "make_windowed_examples",
    "train_validation_split",
    "SSTDataset",
    "load_sst_dataset",
]
