"""Weekly snapshot calendar matching the NOAA OI SST V2 archive.

The archive provides one snapshot per week starting 1981-10-22; the paper
uses 1,914 snapshots (through mid-2018), trains/validates on the first 427
(1981-10-22 through end of 1989), and tests on the remaining 1,487
(1990 through 2018).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

__all__ = ["WeeklyCalendar"]

_EPOCH = _dt.date(1981, 10, 22)


@dataclass(frozen=True)
class WeeklyCalendar:
    """Weekly calendar with the paper's canonical train/test breakpoint.

    Parameters
    ----------
    n_snapshots:
        Total number of weekly snapshots (paper: 1,914).
    start:
        Date of snapshot 0 (paper: 1981-10-22).
    """

    n_snapshots: int = 1914
    start: _dt.date = _EPOCH

    def __post_init__(self) -> None:
        if self.n_snapshots <= 0:
            raise ValueError(f"n_snapshots must be positive, got {self.n_snapshots}")

    def date_of(self, index: int) -> _dt.date:
        """Date of snapshot ``index`` (negative indices follow Python rules)."""
        if index < 0:
            index += self.n_snapshots
        if not 0 <= index < self.n_snapshots:
            raise IndexError(f"snapshot index {index} out of range "
                             f"[0, {self.n_snapshots})")
        return self.start + _dt.timedelta(weeks=index)

    def index_of(self, date: _dt.date) -> int:
        """Index of the snapshot whose week contains ``date``.

        Raises ``ValueError`` if ``date`` precedes the archive or falls after
        its final week.
        """
        delta = (date - self.start).days
        if delta < 0:
            raise ValueError(f"{date} precedes archive start {self.start}")
        idx = delta // 7
        if idx >= self.n_snapshots:
            raise ValueError(f"{date} is after the final snapshot "
                             f"({self.date_of(self.n_snapshots - 1)})")
        return idx

    @property
    def end(self) -> _dt.date:
        """Date of the final snapshot."""
        return self.date_of(self.n_snapshots - 1)

    def train_test_split_index(self, cutoff_year: int = 1990) -> int:
        """First snapshot index falling in ``cutoff_year`` or later.

        With the defaults this reproduces the paper's 427/1,487 split
        (training through 1989, testing 1990-2018).
        """
        cutoff = _dt.date(cutoff_year, 1, 1)
        delta = (cutoff - self.start).days
        if delta <= 0:
            return 0
        # First snapshot whose 7-day week reaches into the cutoff year is
        # test data (a week straddling the new year is not pure training
        # data). This reproduces the paper's 427/1,487 split exactly.
        idx = delta // 7
        return min(idx, self.n_snapshots)

    def indices_between(self, first: _dt.date, last: _dt.date) -> range:
        """Snapshot indices with ``first <= date_of(i) <= last``."""
        if last < first:
            raise ValueError(f"last ({last}) precedes first ({first})")
        lo = max(0, -(-(first - self.start).days // 7))
        hi_days = (last - self.start).days
        hi = min(self.n_snapshots - 1, hi_days // 7)
        if hi < lo:
            return range(0)
        return range(lo, hi + 1)
