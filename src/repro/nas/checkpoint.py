"""Versioned, atomic search checkpoint/restart (docs/CHECKPOINTING.md).

On a real machine a 3-hour allocation ends whether or not the search is
done; DeepHyper-style campaigns resume from saved state. Checkpoints are
plain JSON — architectures as integer lists, rewards as floats, RNG state
as stringified bit-generator words — so they stay portable and
inspectable by external tools (``allow_nan=False`` guarantees spec-valid
JSON: an untold search's ``best_reward = -inf`` is stored as ``null``,
never the non-standard ``-Infinity`` token).

Exactness: a checkpoint captures the **complete** search state, including
the exact position of every RNG bit-stream (via
:func:`repro.utils.rng.generator_state`). Restoring does *not* reseed —
reseeding would make an interrupted campaign a different experiment than
an uninterrupted one, which is exactly the reproducibility failure Li &
Talwalkar warn about. A resumed search proposes the bit-identical
continuation; the differential suite (tests/test_campaign_resume.py)
enforces this for every algorithm. Legacy v1 checkpoints (written before
RNG capture existed) are still loadable and fall back to
``seed_on_resume`` reseeding, with the caveat that they cannot reproduce
the uninterrupted trajectory.

Atomicity: :func:`save_search` (and every campaign checkpoint the
executors write) goes through :func:`atomic_write_json` — serialize to a
``.tmp`` sibling, ``fsync``, then ``os.replace`` over the target. A kill
at any instant leaves either the previous checkpoint or the new one,
never a torn file.

All four algorithms are covered: :class:`AgingEvolution`,
:class:`RandomSearch`, and :class:`DistributedRL` (whose state includes
each :class:`~repro.nas.algorithms.ppo.PPOAgent`'s policy logits, value
baseline, and the synchronized round counter).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.nas.algorithms.aging_evolution import AgingEvolution
from repro.nas.algorithms.genetic import GeneticSearch
from repro.nas.algorithms.ppo import PPOConfig
from repro.nas.algorithms.random_search import RandomSearch
from repro.nas.algorithms.rl_nas import DistributedRL
from repro.nas.space.search_space import StackedLSTMSpace

__all__ = ["SEARCH_FORMAT", "CAMPAIGN_FORMAT", "CHECKPOINT_VERSION",
           "CheckpointPolicy", "atomic_write_json", "search_state",
           "save_search", "restore_search", "load_search",
           "load_checkpoint"]

#: Format tag of an algorithm-only checkpoint (one search's state).
SEARCH_FORMAT = "repro-search-checkpoint"

#: Format tag of a full campaign checkpoint (search + executor + tracker),
#: written by the walltime-bounded executors in :mod:`repro.hpc.executor`.
CAMPAIGN_FORMAT = "repro-campaign-checkpoint"

#: Current schema version. v1 is the legacy pre-RNG-capture layout (no
#: ``format``/``version`` keys); v2 adds exact RNG state, DistributedRL
#: coverage, and JSON-spec-valid ``best_reward`` encoding.
CHECKPOINT_VERSION = 2


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where a campaign writes checkpoints.

    Parameters
    ----------
    path:
        Checkpoint file; each write atomically replaces the previous one.
    every_seconds:
        Periodic checkpoint interval in *simulated* seconds. ``None``
        writes only at walltime expiry / campaign completion. The
        synchronous RL search rounds the interval up to its next round
        boundary (its only quiescent points).
    """

    path: str | Path
    every_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValueError(
                f"every_seconds must be positive, got {self.every_seconds}")


def atomic_write_json(path, payload: dict) -> None:
    """Write ``payload`` as JSON such that a crash never corrupts ``path``.

    The bytes land in a ``.tmp`` sibling first and are fsynced before an
    atomic ``os.replace`` publishes them — the last good checkpoint is
    loadable at every instant. ``allow_nan=False`` rejects any NaN or
    infinity before a single byte is written.
    """
    target = Path(path)
    text = json.dumps(payload, indent=1, allow_nan=False, sort_keys=True)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)


def search_state(search) -> dict:
    """Versioned JSON-compatible snapshot of any search algorithm."""
    if not isinstance(search, (AgingEvolution, RandomSearch, DistributedRL,
                               GeneticSearch)):
        raise TypeError(
            f"checkpointing supports AgingEvolution, RandomSearch, "
            f"DistributedRL and GeneticSearch, got {type(search).__name__}")
    return {"format": SEARCH_FORMAT, "version": CHECKPOINT_VERSION,
            **search.state_dict()}


def save_search(search, path) -> None:
    """Atomically write a checkpoint of ``search`` to ``path`` (JSON)."""
    atomic_write_json(path, search_state(search))


def _build_algorithm(state: dict, space: StackedLSTMSpace):
    """Construct an uninitialized instance of the checkpointed class."""
    name = state.get("algorithm")
    if name == "AgingEvolution":
        return AgingEvolution(space, rng=0,
                              population_size=state["population_size"],
                              sample_size=state["sample_size"],
                              aging=state.get("aging", True))
    if name == "RandomSearch":
        return RandomSearch(space, rng=0)
    if name == "DistributedRL":
        return DistributedRL(space, rng=0,
                             n_agents=state["n_agents"],
                             workers_per_agent=state["workers_per_agent"],
                             config=PPOConfig(**state["config"]))
    if name == "GeneticSearch":
        config = state["config"]
        return GeneticSearch(space, rng=0,
                             population_size=config["population_size"],
                             tournament_size=config["tournament_size"],
                             crossover_rate=config["crossover_rate"],
                             mutation_rate=config["mutation_rate"],
                             elite=config["elite"])
    raise ValueError(f"unknown algorithm {name!r} in checkpoint")


def restore_search(state: dict, space: StackedLSTMSpace, *,
                   seed_on_resume=None):
    """Rebuild a search from a :func:`search_state` snapshot.

    v2 snapshots restore exactly, including the RNG bit-stream —
    ``seed_on_resume`` is ignored. Legacy v1 snapshots carry no RNG state,
    so the generator is reseeded from ``seed_on_resume`` (the old,
    non-reproducible behaviour, kept so existing files remain loadable).
    """
    version = int(state.get("version", 1))
    if version > CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {version} is newer than supported "
            f"({CHECKPOINT_VERSION})")
    declared = state.get("format")
    if declared not in (None, SEARCH_FORMAT):
        raise ValueError(f"not a search checkpoint (format={declared!r})")
    search = _build_algorithm(state, space)
    if version >= 2:
        search.load_state_dict(state)
        return search
    # -- legacy v1 layout (reseed-on-resume) ------------------------------
    search.rng = np.random.default_rng(seed_on_resume)
    search.n_asked = int(state["n_asked"])
    search.n_told = int(state["n_told"])
    reward = state["best_reward"]
    search.best_reward = -float("inf") if reward is None else float(reward)
    if state.get("best_architecture") is not None:
        search.best_architecture = space.validate(
            state["best_architecture"])
    if isinstance(search, AgingEvolution):
        for arch, reward in state.get("population", []):
            search.population.append((space.validate(arch), float(reward)))
    return search


def load_checkpoint(path) -> dict:
    """Read any checkpoint file (search or campaign) as a raw dict."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def load_search(path, space: StackedLSTMSpace, *, seed_on_resume=None):
    """Read a checkpoint written by :func:`save_search` — or extract the
    algorithm from a campaign checkpoint written by the executors."""
    state = load_checkpoint(path)
    if state.get("format") == CAMPAIGN_FORMAT:
        state = state["algorithm"]
    return restore_search(state, space, seed_on_resume=seed_on_resume)
