"""Search checkpoint/restart.

On a real machine a 3-hour allocation ends whether or not the search is
done; DeepHyper-style campaigns resume from saved state. The asynchronous
searches serialize to plain JSON-compatible dicts (architectures are
integer tuples; rewards floats), so checkpoints are portable and
inspectable.

RNG state note: resuming reseeds the generator from ``seed_on_resume``
rather than restoring the exact bit-stream — the population/record *state*
is what matters for search continuation, and JSON keeps the format simple.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.nas.algorithms.aging_evolution import AgingEvolution
from repro.nas.algorithms.random_search import RandomSearch
from repro.nas.space.search_space import StackedLSTMSpace

__all__ = ["search_state", "save_search", "restore_search", "load_search"]


def search_state(search) -> dict:
    """JSON-compatible snapshot of an asynchronous search."""
    state = {
        "algorithm": type(search).__name__,
        "n_asked": search.n_asked,
        "n_told": search.n_told,
        "best_reward": search.best_reward,
        "best_architecture": (list(search.best_architecture)
                              if search.best_architecture else None),
    }
    if isinstance(search, AgingEvolution):
        state["population_size"] = search.population_size
        state["sample_size"] = search.sample_size
        state["aging"] = search.aging
        state["population"] = [[list(arch), reward]
                               for arch, reward in search.population]
    elif not isinstance(search, RandomSearch):
        raise TypeError(
            f"checkpointing supports the asynchronous searches, got "
            f"{type(search).__name__}")
    return state


def save_search(search, path) -> None:
    """Write a checkpoint to ``path`` (JSON)."""
    Path(path).write_text(json.dumps(search_state(search), indent=1))


def restore_search(state: dict, space: StackedLSTMSpace, *,
                   seed_on_resume=None):
    """Rebuild a search from a :func:`search_state` snapshot."""
    name = state.get("algorithm")
    if name == "AgingEvolution":
        search = AgingEvolution(space, rng=seed_on_resume,
                                population_size=state["population_size"],
                                sample_size=state["sample_size"],
                                aging=state.get("aging", True))
        for arch, reward in state["population"]:
            search.population.append((space.validate(arch), float(reward)))
    elif name == "RandomSearch":
        search = RandomSearch(space, rng=seed_on_resume)
    else:
        raise ValueError(f"unknown algorithm {name!r} in checkpoint")
    search.n_asked = int(state["n_asked"])
    search.n_told = int(state["n_told"])
    search.best_reward = float(state["best_reward"])
    if state["best_architecture"] is not None:
        search.best_architecture = space.validate(
            state["best_architecture"])
    return search


def load_search(path, space: StackedLSTMSpace, *, seed_on_resume=None):
    """Read a checkpoint written by :func:`save_search`."""
    state = json.loads(Path(path).read_text())
    return restore_search(state, space, seed_on_resume=seed_on_resume)
