"""Hidden architecture -> (quality, cost) ground-truth model.

At the paper's scale a search evaluates tens of thousands of candidate
LSTMs, each trained for 20 epochs on a Theta KNL node. One CPU core
cannot train 33,748 networks, so scale experiments replace the inner
training with this surrogate (DESIGN.md Sec. 1):

* **Quality** (validation R^2 after ``epochs`` epochs) is a smooth,
  deterministic function of interpretable architecture features — depth,
  aggregate width, skip-connection usage — plus a fixed per-choice linear
  fingerprint that makes the landscape non-degenerate (search can climb
  it), plus per-evaluation Gaussian training noise. Default coefficients
  are calibrated so random architectures score ~0.93-0.94 and the best
  reachable ~0.965-0.97 at 20 epochs (paper Fig. 3), and ~0.985 after
  100-epoch post-training (paper Sec. IV-B).
* **Cost** (single-node training seconds) is affine in trainable
  parameters with lognormal noise, calibrated to the paper's per-node
  throughput (~8,068 evaluations on 128 nodes in 3 h for AE).

The model is *hidden* from the search algorithms — they see only rewards,
exactly as on the real machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.utils.rng import as_generator

__all__ = ["ArchitecturePerformanceModel"]


@dataclass(frozen=True)
class _QualityCoefficients:
    base: float = 0.952
    depth_optimum: float = 2.6       # LSTM stacks of 2-3 train best in 20 ep
    depth_curvature: float = 0.0075
    width_gain: float = 0.004        # per log2(units/16) of mean width
    skip_gain: float = 0.005         # first few skips help...
    skip_best: int = 3               # ...then hurt
    skip_penalty: float = 0.004
    fingerprint_scale: float = 0.0035
    empty_network_quality: float = 0.885
    ceiling: float = 0.972           # 20-epoch quality ceiling
    posttrain_ceiling: float = 0.988  # 100-epoch ceiling


class ArchitecturePerformanceModel:
    """Deterministic quality/cost oracle over a search space.

    Parameters
    ----------
    space:
        The architecture space the oracle is defined over.
    seed:
        Seeds the fixed linear fingerprint (part of the hidden landscape,
        *not* the evaluation noise).
    noise_std:
        Std of the per-evaluation training noise added to the quality.
    time_base / time_per_param:
        Affine single-node training-cost model, seconds (20 epochs).
    time_noise_sigma:
        Lognormal sigma of the cost noise.
    """

    def __init__(self, space: StackedLSTMSpace, *, seed: int = 0,
                 noise_std: float = 0.004,
                 time_base: float = 145.0,
                 time_per_param: float = 0.00025,
                 time_noise_sigma: float = 0.12,
                 coefficients: _QualityCoefficients | None = None) -> None:
        self.space = space
        self.noise_std = float(noise_std)
        self.time_base = float(time_base)
        self.time_per_param = float(time_per_param)
        self.time_noise_sigma = float(time_noise_sigma)
        self.coeff = coefficients or _QualityCoefficients()
        fp_rng = np.random.default_rng(np.random.SeedSequence((seed, 0xF1)))
        # One fixed weight per (variable node, choice): a linear hidden
        # landscape component that rewards specific combinations.
        self._fingerprint = [
            fp_rng.normal(0.0, self.coeff.fingerprint_scale, size=c)
            for c in space.cardinalities]

    # ------------------------------------------------------------------
    # Features
    # ------------------------------------------------------------------
    def _features(self, arch: Architecture) -> tuple[int, float, int]:
        ops = self.space.layer_ops(arch)
        active = [op.units for op in ops if not op.is_identity]
        depth = len(active)
        mean_width = float(np.mean(active)) if active else 0.0
        n_skips = len(self.space.active_skips(arch))
        return depth, mean_width, n_skips

    # ------------------------------------------------------------------
    # Quality
    # ------------------------------------------------------------------
    def quality(self, arch: Architecture, epochs: int = 20) -> float:
        """Noise-free expected validation R^2 after ``epochs`` epochs."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        arch = self.space.validate(arch)
        c = self.coeff
        depth, mean_width, n_skips = self._features(arch)
        if depth == 0:
            q = c.empty_network_quality
        else:
            q = c.base
            q -= c.depth_curvature * (depth - c.depth_optimum) ** 2
            q += c.width_gain * np.log2(max(mean_width, 16.0) / 16.0)
            if n_skips <= c.skip_best:
                q += c.skip_gain * n_skips
            else:
                q += (c.skip_gain * c.skip_best
                      - c.skip_penalty * (n_skips - c.skip_best))
            for weights, value in zip(self._fingerprint, arch):
                q += float(weights[value])
        # Longer training closes a fraction of the gap to the post-training
        # ceiling (paper: 0.96 search reward -> 0.985 after 100 epochs).
        if epochs > 20:
            frac = min(1.0, (epochs - 20) / 80.0)
            gap_target = c.posttrain_ceiling - c.ceiling
            q += frac * gap_target * max(0.0, (q - 0.90)) / 0.07
        elif epochs < 20:
            # Under-training degrades quality smoothly.
            q -= 0.002 * (20 - epochs)
        ceiling = c.posttrain_ceiling if epochs > 20 else c.ceiling
        return float(np.clip(q, 0.30, ceiling))

    def observed_quality(self, arch: Architecture, rng,
                         epochs: int = 20) -> float:
        """Quality with per-evaluation training noise (what a worker sees)."""
        gen = as_generator(rng)
        return float(self.quality(arch, epochs)
                     + gen.normal(0.0, self.noise_std))

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    def training_seconds(self, arch: Architecture, rng=None,
                         epochs: int = 20) -> float:
        """Simulated single-node training time for ``epochs`` epochs."""
        params = self.space.count_parameters(arch)
        mean = (self.time_base + self.time_per_param * params) * (epochs / 20.0)
        if rng is None:
            return float(mean)
        gen = as_generator(rng)
        noise = np.exp(gen.normal(0.0, self.time_noise_sigma)
                       - 0.5 * self.time_noise_sigma ** 2)
        return float(mean * noise)
