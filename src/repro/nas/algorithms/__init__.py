"""Architecture search algorithms (paper Sec. III-B)."""

from repro.nas.algorithms.base import SearchAlgorithm
from repro.nas.algorithms.random_search import RandomSearch
from repro.nas.algorithms.aging_evolution import AgingEvolution
from repro.nas.algorithms.genetic import GeneticSearch
from repro.nas.algorithms.ppo import PPOAgent, PPOConfig
from repro.nas.algorithms.rl_nas import DistributedRL

__all__ = [
    "SearchAlgorithm",
    "RandomSearch",
    "AgingEvolution",
    "GeneticSearch",
    "PPOAgent",
    "PPOConfig",
    "DistributedRL",
]
