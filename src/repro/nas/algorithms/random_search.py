"""Random search (paper Sec. III-B3).

Samples operations uniformly at every variable node with no feedback —
embarrassingly parallel, needs no internode communication, and (as the
paper demonstrates) plateaus because nothing steers it toward better
regions of the space.
"""

from __future__ import annotations

from repro.nas.algorithms.base import SearchAlgorithm
from repro.nas.space.search_space import Architecture

__all__ = ["RandomSearch"]


class RandomSearch(SearchAlgorithm):
    """Uniform random sampling over the architecture space."""

    asynchronous = True
    # Proposals never depend on rewards: the backend may ask ahead and
    # keep every pool worker busy without changing the sample stream.
    speculative_ask = True

    def _propose(self) -> Architecture:
        return self.space.random_architecture(self.rng)

    def _observe(self, arch: Architecture, reward: float) -> None:
        # Feedback-free by definition; the base class already tracks the best.
        pass

    # Checkpointing: the base class already captures everything random
    # search owns (counters, best record, exact RNG position) — the
    # sample stream continues bit-for-bit on resume.
