"""Distributed reinforcement-learning NAS (paper Sec. III-B2).

The multimaster-multiworker paradigm: ``n_agents`` PPO masters each
generate a batch of ``workers_per_agent`` architectures, dispatch them to
their workers, wait for *all* rewards (the synchronization the paper
blames for RL's poor node utilization), compute local gradients, then
**all-reduce with the mean operator** and apply the identical averaged
update everywhere — so all agents share one policy trajectory but explore
with different RNG streams.

The class is executor-agnostic: the simulated cluster calls
``propose_round()`` to get every agent's batch and ``finish_round()`` once
all evaluations of the round completed.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from repro.nas.algorithms.base import SearchAlgorithm
from repro.nas.algorithms.ppo import PPOAgent, PPOConfig
from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.utils.rng import spawn
from repro.utils.validation import check_positive_int

__all__ = ["DistributedRL"]


class DistributedRL(SearchAlgorithm):
    """Synchronous multi-agent PPO search.

    Parameters
    ----------
    n_agents:
        Number of policy masters (paper: fixed at 11).
    workers_per_agent:
        Evaluations per agent per round — set from the node count by the
        cluster model (paper Sec. IV: e.g. 10 workers/agent on 128 nodes).
    """

    asynchronous = False

    def __init__(self, space: StackedLSTMSpace, rng=None, *,
                 n_agents: int = 11, workers_per_agent: int = 10,
                 config: PPOConfig | None = None) -> None:
        super().__init__(space, rng)
        self.n_agents = check_positive_int(n_agents, name="n_agents")
        self.workers_per_agent = check_positive_int(
            workers_per_agent, name="workers_per_agent")
        agent_rngs = spawn(self.rng, self.n_agents)
        self.agents = [PPOAgent(space, rng=r, config=config)
                       for r in agent_rngs]
        self.round_index = 0

    # ------------------------------------------------------------------
    # Round-based protocol (used by the synchronous executor)
    # ------------------------------------------------------------------
    def propose_round(self) -> list[list[Architecture]]:
        """One batch per agent: ``[agent][worker] -> architecture``."""
        return [agent.sample_batch(self.workers_per_agent)
                for agent in self.agents]

    def finish_round(self, batches: list[list[Architecture]],
                     rewards: list[list[float]]) -> None:
        """Synchronous update: local PPO gradients per agent, all-reduce
        mean across agents, identical apply everywhere."""
        if len(batches) != self.n_agents or len(rewards) != self.n_agents:
            raise ValueError(
                f"expected {self.n_agents} batches/rewards, got "
                f"{len(batches)}/{len(rewards)}")
        for batch, rew in zip(batches, rewards):
            for arch, r in zip(batch, rew):
                self.tell(arch, r)

        old_logps = [np.array([agent.log_prob(a) for a in batch])
                     for agent, batch in zip(self.agents, batches)]
        for _ in range(self.agents[0].config.update_epochs):
            logit_grads = None
            value_grad = 0.0
            for agent, batch, rew, old_logp in zip(self.agents, batches,
                                                   rewards, old_logps):
                grads, vgrad = agent.compute_gradients(batch, list(rew),
                                                       old_logp)
                if logit_grads is None:
                    logit_grads = [g.copy() for g in grads]
                else:
                    for acc, g in zip(logit_grads, grads):
                        acc += g
                value_grad += vgrad
            # All-reduce with the mean operator (paper Sec. III-B2).
            for g in logit_grads:
                g /= self.n_agents
            value_grad /= self.n_agents
            for agent in self.agents:
                agent.apply_gradients(logit_grads, value_grad)
        self.round_index += 1

    # ------------------------------------------------------------------
    # Ask/tell compatibility (serial driving without a cluster)
    # ------------------------------------------------------------------
    def _propose(self) -> Architecture:
        # Round-robin across agents so a serial driver still exercises all
        # policies; the synchronous semantics require the round protocol.
        agent = self.agents[(self.n_asked - 1) % self.n_agents]
        return agent.sample_architecture()

    def _observe(self, arch: Architecture, reward: float) -> None:
        # Recorded via tell(); gradient updates happen in finish_round.
        pass

    def run_serial(self, evaluate, n_rounds: int) -> list[float]:
        """Drive the full synchronous loop in-process (no cluster).

        ``evaluate(arch) -> reward``. Returns every reward in evaluation
        order — convenient for tests and small studies.
        """
        check_positive_int(n_rounds, name="n_rounds")
        all_rewards: list[float] = []
        for _ in range(n_rounds):
            batches = self.propose_round()
            rewards = [[float(evaluate(a)) for a in batch]
                       for batch in batches]
            self.finish_round(batches, rewards)
            for rew in rewards:
                all_rewards.extend(rew)
        return all_rewards

    def mean_policy_entropy(self) -> float:
        return float(np.mean([a.policy_entropy() for a in self.agents]))

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _state_extra(self) -> dict:
        return {"n_agents": self.n_agents,
                "workers_per_agent": self.workers_per_agent,
                "round_index": self.round_index,
                "config": asdict(self.agents[0].config),
                "agents": [agent.state_dict() for agent in self.agents]}

    def _load_extra(self, state: dict) -> None:
        agents = state["agents"]
        if len(agents) != self.n_agents:
            raise ValueError(
                f"state has {len(agents)} agents, algorithm has "
                f"{self.n_agents}")
        self.round_index = int(state["round_index"])
        for agent, agent_state in zip(self.agents, agents):
            agent.load_state_dict(agent_state)
