"""Ask/tell interface shared by the asynchronous search algorithms.

The executor (simulated cluster or a plain loop) drives a search by
repeatedly calling :meth:`ask` to obtain the next architecture to evaluate
and :meth:`tell` when an evaluation finishes. Fully asynchronous
algorithms (aging evolution, random search) tolerate any interleaving of
asks and tells; the synchronous RL method uses its own batch interface
(see :mod:`repro.nas.algorithms.rl_nas`).
"""

from __future__ import annotations

from repro import obs
from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.utils.rng import as_generator, generator_from_state, \
    generator_state

__all__ = ["SearchAlgorithm"]


class SearchAlgorithm:
    """Base class: owns the space, an RNG, and the best-so-far record."""

    #: Whether the algorithm tolerates out-of-order tells (drives which
    #: executor the cluster simulator pairs it with).
    asynchronous: bool = True

    #: Whether the proposal stream is independent of pending tells, i.e.
    #: the k-th ask() returns the same architecture no matter how many
    #: results have been reported. Lets the parallel evaluation backend
    #: issue asks ahead of the event loop and keep a full pool in flight
    #: (repro.hpc.parallel.TaskFeed). Feedback-driven searches must leave
    #: this False.
    speculative_ask: bool = False

    def __init__(self, space: StackedLSTMSpace, rng=None) -> None:
        self.space = space
        self.rng = as_generator(rng)
        self.n_asked = 0
        self.n_told = 0
        self.best_architecture: Architecture | None = None
        self.best_reward = -float("inf")

    # -- protocol ----------------------------------------------------------
    def ask(self) -> Architecture:
        """Propose the next architecture to evaluate."""
        self.n_asked += 1
        with obs.scope("nas/ask"):
            return self._propose()

    def tell(self, arch: Architecture, reward: float) -> None:
        """Report a finished evaluation."""
        self.n_told += 1
        if reward > self.best_reward:
            self.best_reward = reward
            self.best_architecture = tuple(arch)
        with obs.scope("nas/tell"):
            self._observe(tuple(arch), float(reward))

    # -- checkpointing ------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the complete search state.

        Includes the exact RNG bit-stream position, so a search restored
        via :meth:`load_state_dict` proposes the *identical* continuation
        an uninterrupted run would have — the contract the campaign
        checkpoints (:mod:`repro.nas.checkpoint`) build on. ``best_reward``
        of a never-told search is ``-inf``, which is not valid JSON; it is
        stored as ``None``.
        """
        return {
            "algorithm": type(self).__name__,
            "n_asked": self.n_asked,
            "n_told": self.n_told,
            "best_reward": (None if self.best_reward == -float("inf")
                            else float(self.best_reward)),
            "best_architecture": (list(self.best_architecture)
                                  if self.best_architecture is not None
                                  else None),
            "rng": generator_state(self.rng),
            **self._state_extra(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the snapshot produced by :meth:`state_dict` in place."""
        name = state.get("algorithm")
        if name != type(self).__name__:
            raise ValueError(
                f"state is for {name!r}, not {type(self).__name__}")
        self.n_asked = int(state["n_asked"])
        self.n_told = int(state["n_told"])
        reward = state["best_reward"]
        self.best_reward = -float("inf") if reward is None else float(reward)
        self.best_architecture = None
        if state["best_architecture"] is not None:
            self.best_architecture = self.space.validate(
                state["best_architecture"])
        if state.get("rng") is not None:
            self.rng = generator_from_state(state["rng"])
        self._load_extra(state)

    def _state_extra(self) -> dict:
        """Algorithm-specific state merged into :meth:`state_dict`."""
        return {}

    def _load_extra(self, state: dict) -> None:
        """Restore what :meth:`_state_extra` captured."""

    # -- hooks for subclasses ----------------------------------------------
    def _propose(self) -> Architecture:
        raise NotImplementedError

    def _observe(self, arch: Architecture, reward: float) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(asked={self.n_asked}, "
                f"told={self.n_told}, best={self.best_reward:.4f})")
