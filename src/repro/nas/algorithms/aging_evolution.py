"""Aging evolution (regularized evolution), paper Sec. III-B1.

Completely asynchronous evolutionary algorithm after Real et al. (2019):

* a population of the ``population_size`` most recently evaluated
  architectures is kept in a FIFO ring (ageing: the *oldest* member is
  replaced, regardless of fitness — the regularization mechanism the paper
  credits for AE's robustness to training noise);
* to propose a child, ``sample_size`` members are drawn uniformly without
  replacement, the fittest of the sample is the parent, and a single
  variable node of the parent is mutated to a different value;
* until the population is primed, proposals are random (the initial
  population of the paper).

Proposal requires no communication and no barrier: any number of asks may
be outstanding, and tells may arrive in any order — exactly the property
that gives AE its node-utilization advantage on the simulated cluster.
"""

from __future__ import annotations

from collections import deque

from repro.nas.algorithms.base import SearchAlgorithm
from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.utils.validation import check_positive_int

__all__ = ["AgingEvolution"]


class AgingEvolution(SearchAlgorithm):
    """Asynchronous aging evolution.

    Parameters
    ----------
    population_size:
        p — ring capacity (paper: 100).
    sample_size:
        s — tournament sample per mutation (paper: 10).
    aging:
        True (default) replaces the *oldest* member — regularized
        evolution. False replaces the *worst* member instead (classical
        tournament GA) — the ablation the paper's Sec. IV-A discussion
        motivates: without ageing, a lucky noisy evaluation can sit in the
        population forever.
    """

    asynchronous = True

    def __init__(self, space: StackedLSTMSpace, rng=None, *,
                 population_size: int = 100, sample_size: int = 10,
                 aging: bool = True) -> None:
        super().__init__(space, rng)
        self.aging = bool(aging)
        self.population_size = check_positive_int(population_size,
                                                  name="population_size")
        self.sample_size = check_positive_int(sample_size, name="sample_size")
        if self.sample_size > self.population_size:
            raise ValueError(
                f"sample_size ({sample_size}) cannot exceed population_size "
                f"({population_size})")
        self.population: deque[tuple[Architecture, float]] = deque(
            maxlen=self.population_size)

    def _propose(self) -> Architecture:
        # Random initialization phase: propose random architectures until
        # enough evaluations have come back to fill the population. Using
        # n_asked keeps concurrent workers from all mutating a tiny early
        # population.
        if self.n_asked <= self.population_size or not self.population:
            return self.space.random_architecture(self.rng)
        k = min(self.sample_size, len(self.population))
        sample_idx = self.rng.choice(len(self.population), size=k,
                                     replace=False)
        parent = max((self.population[int(i)] for i in sample_idx),
                     key=lambda entry: entry[1])[0]
        return self.space.mutate(parent, self.rng)

    def _observe(self, arch: Architecture, reward: float) -> None:
        if self.aging or len(self.population) < self.population_size:
            # deque(maxlen=p) evicts the oldest member automatically.
            self.population.append((arch, reward))
            return
        # Non-aging ablation: evict the current worst instead.
        worst = min(range(len(self.population)),
                    key=lambda i: self.population[i][1])
        if reward > self.population[worst][1]:
            del self.population[worst]
            self.population.append((arch, reward))

    def _state_extra(self) -> dict:
        return {"population_size": self.population_size,
                "sample_size": self.sample_size,
                "aging": self.aging,
                "population": [[list(arch), float(reward)]
                               for arch, reward in self.population]}

    def _load_extra(self, state: dict) -> None:
        self.population.clear()
        for arch, reward in state["population"]:
            self.population.append((self.space.validate(arch),
                                    float(reward)))

    @property
    def population_rewards(self) -> list[float]:
        """Rewards of current population members, oldest first."""
        return [reward for _, reward in self.population]
