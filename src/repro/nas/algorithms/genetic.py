"""Generational genetic algorithm for joint arch/hyperparameter search.

Pawar et al. (PAPERS.md) tune a geophysical surrogate's architecture and
training hyperparameters with one GA; this searcher reproduces that
recipe over any mixed-radix integer-tuple space — in particular
:class:`~repro.nas.space.joint.JointArchitectureSpace`, whose trailing
genes select learning rate, input window, and POD rank.

The GA is generational but *ask/tell-asynchronous*: proposals come from
a bred-offspring queue, and a new generation is bred as soon as a full
population of tells has accumulated, regardless of the ask/tell
interleaving. When the queue runs dry between generations (more workers
than offspring), proposals fall back to random immigrants — fresh
genetic material, counted in ``nas/ga/immigrants``. Every random draw
comes from the algorithm's own RNG in event order, so a campaign is a
pure function of the (deterministic) executor event sequence and
checkpoints restore the exact trajectory.

``speculative_ask`` stays False: the proposal stream depends on tell
timing (breeding), so ask-ahead would make the trajectory depend on
worker-pool depth and break the bitwise serial==pooled contract.
"""

from __future__ import annotations

from collections import deque

from repro import obs
from repro.nas.algorithms.base import SearchAlgorithm
from repro.nas.space.search_space import Architecture
from repro.utils.validation import check_positive_int

__all__ = ["GeneticSearch"]


class GeneticSearch(SearchAlgorithm):
    """Elitist generational GA with tournament selection, uniform
    crossover, and per-gene mutation.

    Parameters
    ----------
    population_size:
        Individuals per generation (and tells required to breed).
    tournament_size:
        Sample size for each parent-selection tournament.
    crossover_rate:
        Probability an offspring is bred from two parents by uniform
        crossover (otherwise it is a clone of the first parent).
    mutation_rate:
        Per-gene redraw probability. ``None`` (default) uses ``1/L`` for
        an encoding of length ``L`` — one expected mutation per child.
    elite:
        Number of best individuals carried into the next generation's
        breeding pool alongside the fresh results.
    """

    asynchronous = True
    speculative_ask = False

    def __init__(self, space, rng=None, *, population_size: int = 20,
                 tournament_size: int = 4, crossover_rate: float = 0.9,
                 mutation_rate: float | None = None, elite: int = 2) -> None:
        super().__init__(space, rng)
        self.population_size = check_positive_int(population_size,
                                                  name="population_size")
        self.tournament_size = check_positive_int(tournament_size,
                                                  name="tournament_size")
        if self.tournament_size > self.population_size:
            raise ValueError(
                f"tournament_size ({tournament_size}) cannot exceed "
                f"population_size ({population_size})")
        if not 0.0 <= crossover_rate <= 1.0:
            raise ValueError(
                f"crossover_rate must be in [0, 1], got {crossover_rate}")
        self.crossover_rate = float(crossover_rate)
        if mutation_rate is not None and not 0.0 < mutation_rate <= 1.0:
            raise ValueError(
                f"mutation_rate must be in (0, 1], got {mutation_rate}")
        self.mutation_rate = (float(mutation_rate)
                              if mutation_rate is not None else None)
        if not isinstance(elite, int) or elite < 0:
            raise ValueError(f"elite must be a non-negative int, got {elite!r}")
        if elite > self.population_size:
            raise ValueError(
                f"elite ({elite}) cannot exceed population_size "
                f"({population_size})")
        self.elite = elite
        self.generation = 0
        self.n_immigrants = 0
        self.population: list[tuple[Architecture, float]] = []
        self._results: list[tuple[Architecture, float]] = []
        self._pending: deque[Architecture] = deque()

    def config(self) -> dict:
        """The experiment-defining knobs — checkpoint identity."""
        return {"population_size": self.population_size,
                "tournament_size": self.tournament_size,
                "crossover_rate": self.crossover_rate,
                "mutation_rate": self.mutation_rate,
                "elite": self.elite}

    # ------------------------------------------------------------------
    # Ask/tell protocol
    # ------------------------------------------------------------------
    def _propose(self) -> Architecture:
        # Seeding phase: the first population is uniform random, keyed on
        # n_asked so concurrent workers never breed from an empty pool.
        if self.n_asked <= self.population_size:
            return self.space.random_architecture(self.rng)
        if not self._pending and len(self._results) >= self.population_size:
            self._breed()
        if self._pending:
            return self._pending.popleft()
        # Offspring queue exhausted before enough tells came back: feed
        # the workers fresh genetic material rather than stalling.
        self.n_immigrants += 1
        if obs.enabled():
            obs.counter_add("nas/ga/immigrants")
        return self.space.random_architecture(self.rng)

    def _observe(self, arch: Architecture, reward: float) -> None:
        self._results.append((arch, reward))

    # ------------------------------------------------------------------
    # Breeding
    # ------------------------------------------------------------------
    def _breed(self) -> None:
        """Form the next generation and queue its offspring."""
        pool = sorted(self.population, key=lambda e: e[1], reverse=True)
        pool = pool[:self.elite] + self._results
        # Stable sort: on reward ties, elites (listed first) win.
        pool.sort(key=lambda e: e[1], reverse=True)
        self.population = pool[:self.population_size]
        self._results = []
        self.generation += 1
        if obs.enabled():
            obs.counter_add("nas/ga/generations")
        for _ in range(self.population_size):
            self._pending.append(self._make_offspring())

    def _select(self) -> Architecture:
        k = min(self.tournament_size, len(self.population))
        idx = self.rng.choice(len(self.population), size=k, replace=False)
        return max((self.population[int(i)] for i in idx),
                   key=lambda entry: entry[1])[0]

    def _make_offspring(self) -> Architecture:
        parent = self._select()
        child = list(parent)
        if float(self.rng.random()) < self.crossover_rate:
            other = self._select()
            # Uniform crossover: each gene comes from either parent.
            for pos in range(len(child)):
                if int(self.rng.integers(2)):
                    child[pos] = other[pos]
            if obs.enabled():
                obs.counter_add("nas/ga/crossovers")
        cards = self.space.cardinalities
        rate = (self.mutation_rate if self.mutation_rate is not None
                else 1.0 / len(cards))
        for pos, card in enumerate(cards):
            if float(self.rng.random()) < rate:
                offset = int(self.rng.integers(1, card))
                child[pos] = (child[pos] + offset) % card
                if obs.enabled():
                    obs.counter_add("nas/ga/mutations")
        return self.space.validate(child)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _state_extra(self) -> dict:
        return {"config": self.config(),
                "generation": self.generation,
                "n_immigrants": self.n_immigrants,
                "population": [[list(arch), float(reward)]
                               for arch, reward in self.population],
                "results": [[list(arch), float(reward)]
                            for arch, reward in self._results],
                "pending": [list(arch) for arch in self._pending]}

    def _load_extra(self, state: dict) -> None:
        config = state["config"]
        if config != self.config():
            raise ValueError(
                f"checkpointed GA config {config} does not match this "
                f"searcher's {self.config()}: resuming would continue a "
                f"different experiment")
        self.generation = int(state["generation"])
        self.n_immigrants = int(state["n_immigrants"])
        self.population = [(self.space.validate(arch), float(reward))
                           for arch, reward in state["population"]]
        self._results = [(self.space.validate(arch), float(reward))
                         for arch, reward in state["results"]]
        self._pending = deque(self.space.validate(arch)
                              for arch in state["pending"])

    @property
    def population_rewards(self) -> list[float]:
        """Rewards of the current generation's members, best first."""
        return [reward for _, reward in self.population]
