"""Proximal policy optimization for one-shot architecture episodes.

The NAS episode is single-step: the agent emits one complete architecture
(a vector of categorical choices, one per variable node) and receives the
validation R^2 as the reward. The policy is a factorized categorical
distribution — independent logits per variable node — with a learned
scalar value baseline. The update is the clipped PPO surrogate of the
paper's Eq. 9:

``J(theta) = E[min(r A, clip(r, 1-eps, 1+eps) A)]``,

with ``r`` the new/old joint-probability ratio (which factorizes over
nodes). Gradients are analytic (softmax scores), so no autodiff is needed.

The multimaster-multiworker parallelization (each agent evaluating a batch
on its workers, then an all-reduce mean over agent gradients) lives in
:mod:`repro.nas.algorithms.rl_nas`; this module is one agent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.utils.rng import as_generator, generator_from_state, \
    generator_state

__all__ = ["PPOConfig", "PPOAgent"]


@dataclass(frozen=True)
class PPOConfig:
    """PPO hyperparameters (paper: clip epsilon typically 0.1 or 0.2)."""

    clip_epsilon: float = 0.2
    learning_rate: float = 0.05
    value_learning_rate: float = 0.1
    entropy_bonus: float = 0.01
    update_epochs: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.clip_epsilon < 1.0:
            raise ValueError(
                f"clip_epsilon must be in (0, 1), got {self.clip_epsilon}")
        if self.learning_rate <= 0 or self.value_learning_rate <= 0:
            raise ValueError("learning rates must be positive")
        if self.update_epochs <= 0:
            raise ValueError("update_epochs must be positive")


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max()
    e = np.exp(z)
    return e / e.sum()


class PPOAgent:
    """One policy/value "master" of the distributed RL search."""

    def __init__(self, space: StackedLSTMSpace, rng=None,
                 config: PPOConfig | None = None) -> None:
        self.space = space
        self.rng = as_generator(rng)
        self.config = config or PPOConfig()
        self.logits: list[np.ndarray] = [np.zeros(c)
                                         for c in space.cardinalities]
        self.value_baseline = 0.0

    # ------------------------------------------------------------------
    # Acting
    # ------------------------------------------------------------------
    def sample_architecture(self) -> Architecture:
        """Draw one architecture from the current policy."""
        arch = []
        for logit in self.logits:
            probs = _softmax(logit)
            arch.append(int(self.rng.choice(len(probs), p=probs)))
        return tuple(arch)

    def sample_batch(self, batch_size: int) -> list[Architecture]:
        """Draw a batch (one architecture per worker node)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return [self.sample_architecture() for _ in range(batch_size)]

    def log_prob(self, arch: Architecture,
                 logits: list[np.ndarray] | None = None) -> float:
        """Joint log-probability of an architecture under the policy."""
        logits = self.logits if logits is None else logits
        arch = self.space.validate(arch)
        total = 0.0
        for value, logit in zip(arch, logits):
            total += float(np.log(_softmax(logit)[value] + 1e-12))
        return total

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def compute_gradients(self, archs: list[Architecture],
                          rewards: list[float],
                          old_logp: np.ndarray | None = None
                          ) -> tuple[list[np.ndarray], float]:
        """Clipped-PPO policy gradient and value gradient for one batch.

        ``old_logp`` is the joint log-probability of each architecture
        under the *pre-update* policy; pass the same array across all
        epochs of an update (``update`` does). ``None`` snapshots the
        current policy (ratio 1 — first epoch).

        Returns ``(logit_grads, value_grad)`` in *ascent* direction for the
        policy (caller adds them) and descent magnitude for the value MSE.
        Gradients are averaged over the batch so they are directly
        all-reduce-mean compatible across agents.
        """
        if len(archs) != len(rewards) or not archs:
            raise ValueError("archs and rewards must be equal-length, non-empty")
        cfg = self.config
        rewards_arr = np.asarray(rewards, dtype=np.float64)
        advantages = rewards_arr - self.value_baseline
        std = advantages.std()
        if std > 1e-8:
            advantages = (advantages - advantages.mean()) / std

        if old_logp is None:
            old_logp = np.array([self.log_prob(a) for a in archs])

        grads = [np.zeros_like(l) for l in self.logits]
        new_logp = np.array([self.log_prob(a) for a in archs])
        ratios = np.exp(new_logp - old_logp)
        clipped = np.clip(ratios, 1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon)
        # d/d theta min(r A, clip(r) A): the gradient flows only through r
        # when the unclipped term is active.
        unclipped_active = (ratios * advantages) <= (clipped * advantages)
        for a, adv, ratio, active in zip(archs, advantages, ratios,
                                         unclipped_active):
            if not active:
                continue
            a = self.space.validate(a)
            for pos, value in enumerate(a):
                probs = _softmax(self.logits[pos])
                score = -probs
                score[value] += 1.0  # d log pi / d logits
                grads[pos] += (ratio * adv) * score
        for g in grads:
            g /= len(archs)
        # Entropy bonus keeps early exploration broad (strong exploration at
        # the start of RL search is visible in the paper's Fig. 3).
        if cfg.entropy_bonus > 0.0:
            for pos, logit in enumerate(self.logits):
                probs = _softmax(logit)
                # d entropy / d logits = -probs * (log probs + H)
                entropy = -float(np.sum(probs * np.log(probs + 1e-12)))
                grads[pos] += cfg.entropy_bonus * (
                    -probs * (np.log(probs + 1e-12) + entropy))
        value_grad = float(np.mean(self.value_baseline - rewards_arr))
        return grads, value_grad

    def apply_gradients(self, logit_grads: list[np.ndarray],
                        value_grad: float) -> None:
        """Ascend the policy objective / descend the value loss."""
        if len(logit_grads) != len(self.logits):
            raise ValueError(
                f"expected {len(self.logits)} gradient arrays, "
                f"got {len(logit_grads)}")
        cfg = self.config
        for logit, grad in zip(self.logits, logit_grads):
            logit += cfg.learning_rate * grad
        self.value_baseline -= cfg.value_learning_rate * value_grad

    def update(self, archs: list[Architecture], rewards: list[float]) -> None:
        """Full local PPO update: the old policy is snapshotted once, then
        several gradient epochs ascend the clipped surrogate against it."""
        old_logp = np.array([self.log_prob(a) for a in archs])
        for _ in range(self.config.update_epochs):
            grads, vgrad = self.compute_gradients(archs, rewards, old_logp)
            self.apply_gradients(grads, vgrad)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-compatible snapshot: policy logits, the value baseline
        (the agent's entire optimizer state — updates are plain SGD with
        no momentum buffers), and the exact RNG position."""
        return {"logits": [logit.tolist() for logit in self.logits],
                "value_baseline": float(self.value_baseline),
                "rng": generator_state(self.rng)}

    def load_state_dict(self, state: dict) -> None:
        """Restore the snapshot produced by :meth:`state_dict`."""
        logits = state["logits"]
        if len(logits) != len(self.logits):
            raise ValueError(
                f"state has {len(logits)} logit vectors, policy has "
                f"{len(self.logits)}")
        self.logits = [np.asarray(logit, dtype=np.float64)
                       for logit in logits]
        self.value_baseline = float(state["value_baseline"])
        self.rng = generator_from_state(state["rng"])

    def policy_entropy(self) -> float:
        """Mean per-node entropy — an exploration diagnostic."""
        total = 0.0
        for logit in self.logits:
            p = _softmax(logit)
            total += -float(np.sum(p * np.log(p + 1e-12)))
        return total / len(self.logits)
