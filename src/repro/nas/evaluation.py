"""Architecture evaluators.

An evaluator maps an architecture encoding to an
:class:`EvaluationResult`: the search reward (validation R^2) plus the
*simulated single-node duration* the cluster model charges for it. Two
fidelities are provided (DESIGN.md Sec. 1):

* :class:`RealTrainingEvaluator` — builds the NumPy network and actually
  trains it on windowed POD-coefficient data (the paper's inner loop;
  used for science results and small searches);
* :class:`SurrogateEvaluator` — queries the calibrated
  :class:`~repro.nas.surrogate.ArchitecturePerformanceModel` (used for
  512-node-scale searches on one core).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.nas.space.builder import build_network
from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.nas.surrogate import ArchitecturePerformanceModel
from repro.nn.training import Trainer
from repro.utils.rng import as_generator

__all__ = ["EvaluationResult", "Evaluator", "RealTrainingEvaluator",
           "SurrogateEvaluator", "PacedEvaluator"]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of evaluating one architecture."""

    architecture: Architecture
    reward: float
    duration: float               # simulated single-node seconds
    n_parameters: int
    metadata: dict = field(default_factory=dict)


class Evaluator:
    """Protocol: subclasses implement :meth:`evaluate`."""

    def __init__(self, space: StackedLSTMSpace) -> None:
        self.space = space

    def evaluate(self, arch: Architecture, rng=None) -> EvaluationResult:
        raise NotImplementedError


class SurrogateEvaluator(Evaluator):
    """Reward/cost from the hidden performance model."""

    def __init__(self, space: StackedLSTMSpace,
                 model: ArchitecturePerformanceModel | None = None, *,
                 epochs: int = 20) -> None:
        super().__init__(space)
        self.model = model or ArchitecturePerformanceModel(space)
        self.epochs = int(epochs)

    def evaluate(self, arch: Architecture, rng=None) -> EvaluationResult:
        gen = as_generator(rng)
        with obs.scope("nas/evaluate/surrogate"):
            reward = self.model.observed_quality(arch, gen,
                                                 epochs=self.epochs)
            duration = self.model.training_seconds(arch, gen,
                                                   epochs=self.epochs)
        if obs.enabled():
            obs.counter_add("nas/evaluations")
            obs.counter_add("nas/simulated_seconds", duration)
        return EvaluationResult(
            architecture=tuple(arch), reward=reward, duration=duration,
            n_parameters=self.space.count_parameters(arch),
            metadata={"fidelity": "surrogate", "epochs": self.epochs})


class PacedEvaluator(Evaluator):
    """Wrap an evaluator with real wall-clock latency per evaluation.

    On the actual machine an evaluation occupies a node for minutes while
    the master merely waits; this wrapper reintroduces that latency
    (``pace_seconds`` of ``time.sleep`` around the inner evaluation) so
    dispatch machinery can be exercised and benchmarked under realistic
    conditions: a process pool overlaps the waits of concurrent
    evaluations even on a single core, exactly as the real cluster
    overlaps node occupancy. Results are those of the inner evaluator,
    bitwise — pacing never touches the rng stream.
    """

    def __init__(self, inner: Evaluator, *, pace_seconds: float) -> None:
        super().__init__(inner.space)
        if pace_seconds < 0:
            raise ValueError(
                f"pace_seconds must be non-negative, got {pace_seconds}")
        self.inner = inner
        self.pace_seconds = float(pace_seconds)

    def evaluate(self, arch: Architecture, rng=None) -> EvaluationResult:
        result = self.inner.evaluate(arch, rng)
        if self.pace_seconds > 0:
            time.sleep(self.pace_seconds)
        return result


class RealTrainingEvaluator(Evaluator):
    """Trains the realized network on windowed example tensors.

    Parameters
    ----------
    data:
        ``(x_train, y_train, x_val, y_val)`` windowed tensors (see
        :func:`repro.data.make_windowed_examples`).
    trainer:
        Training protocol; defaults to the paper's search settings
        (batch 64, lr 1e-3, 20 epochs, Adam).
    cost_model:
        Optional performance model used to *charge simulated time* for the
        evaluation so real-fidelity runs remain comparable to surrogate
        runs on the simulated cluster; defaults to measured wall seconds.
    """

    def __init__(self, space: StackedLSTMSpace, data, *,
                 trainer: Trainer | None = None,
                 cost_model: ArchitecturePerformanceModel | None = None
                 ) -> None:
        super().__init__(space)
        x_train, y_train, x_val, y_val = data
        self.x_train = np.asarray(x_train, dtype=np.float64)
        self.y_train = np.asarray(y_train, dtype=np.float64)
        self.x_val = np.asarray(x_val, dtype=np.float64)
        self.y_val = np.asarray(y_val, dtype=np.float64)
        if self.x_train.ndim != 3 or self.x_train.shape[2] != space.input_dim:
            raise ValueError(
                f"x_train must be (n, T, {space.input_dim}), "
                f"got {self.x_train.shape}")
        self.trainer = trainer or Trainer(epochs=20, batch_size=64,
                                          learning_rate=0.001)
        self.cost_model = cost_model

    def evaluate(self, arch: Architecture, rng=None) -> EvaluationResult:
        gen = as_generator(rng)
        start = time.perf_counter()
        with obs.scope("nas/evaluate/real"):
            net = build_network(self.space, arch, rng=gen)
            history = self.trainer.fit(net, self.x_train, self.y_train,
                                       self.x_val, self.y_val, rng=gen)
        wall = time.perf_counter() - start
        if obs.enabled():
            obs.counter_add("nas/evaluations")
            obs.gauge_set("nas/evaluation_wall_s", wall)
        reward = history.final_val_r2
        if self.cost_model is not None:
            duration = self.cost_model.training_seconds(
                arch, gen, epochs=self.trainer.epochs)
        else:
            duration = wall
        return EvaluationResult(
            architecture=tuple(arch), reward=reward, duration=duration,
            n_parameters=net.n_parameters,
            metadata={"fidelity": "real", "wall_seconds": wall,
                      "epochs": self.trainer.epochs,
                      "history": history})
