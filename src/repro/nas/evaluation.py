"""Architecture evaluators.

An evaluator maps an architecture encoding to an
:class:`EvaluationResult`: the search reward (validation R^2) plus the
*simulated single-node duration* the cluster model charges for it. Two
fidelities are provided (DESIGN.md Sec. 1):

* :class:`RealTrainingEvaluator` — builds the NumPy network and actually
  trains it on windowed POD-coefficient data (the paper's inner loop;
  used for science results and small searches);
* :class:`SurrogateEvaluator` — queries the calibrated
  :class:`~repro.nas.surrogate.ArchitecturePerformanceModel` (used for
  512-node-scale searches on one core).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.nas.space.builder import build_network
from repro.nas.space.joint import JointArchitectureSpace
from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.nas.surrogate import ArchitecturePerformanceModel
from repro.nn.optimizers import Adam
from repro.nn.serialization import network_from_spec, network_spec
from repro.nn.training import History, Trainer
from repro.utils.rng import as_generator, generator_from_state, \
    generator_state

__all__ = ["EvaluationResult", "Evaluator", "RealTrainingEvaluator",
           "SurrogateEvaluator", "PacedEvaluator",
           "JointSurrogateEvaluator", "PartialTrainingEvaluator",
           "evaluator_identity"]


def evaluator_identity(evaluator) -> dict | None:
    """What a campaign checkpoint records about an evaluation backend.

    Evaluators that represent external or experiment-defining state — a
    benchmark archive bound by content digest, a hyperparameter grid —
    expose ``checkpoint_identity()``; a resume must then present an
    evaluator with the same identity. Evaluators without the hook record
    ``None`` and skip the check, exactly as all legacy checkpoints do.
    """
    identity = getattr(evaluator, "checkpoint_identity", None)
    return identity() if callable(identity) else None


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of evaluating one architecture."""

    architecture: Architecture
    reward: float
    duration: float               # simulated single-node seconds
    n_parameters: int
    metadata: dict = field(default_factory=dict)


class Evaluator:
    """Protocol: subclasses implement :meth:`evaluate`."""

    def __init__(self, space: StackedLSTMSpace) -> None:
        self.space = space

    def evaluate(self, arch: Architecture, rng=None) -> EvaluationResult:
        raise NotImplementedError


class SurrogateEvaluator(Evaluator):
    """Reward/cost from the hidden performance model."""

    def __init__(self, space: StackedLSTMSpace,
                 model: ArchitecturePerformanceModel | None = None, *,
                 epochs: int = 20) -> None:
        super().__init__(space)
        self.model = model or ArchitecturePerformanceModel(space)
        self.epochs = int(epochs)

    def evaluate(self, arch: Architecture, rng=None) -> EvaluationResult:
        return self.evaluate_at(arch, self.epochs, rng)

    def evaluate_at(self, arch: Architecture, epochs: int,
                    rng=None) -> EvaluationResult:
        """Evaluate at an explicit epoch budget (multi-fidelity ask).

        ``evaluate_at(arch, self.epochs, rng)`` is ``evaluate(arch, rng)``
        bitwise — the same two noise draws in the same order.
        """
        gen = as_generator(rng)
        with obs.scope("nas/evaluate/surrogate"):
            reward = self.model.observed_quality(arch, gen, epochs=epochs)
            duration = self.model.training_seconds(arch, gen, epochs=epochs)
        if obs.enabled():
            obs.counter_add("nas/evaluations")
            obs.counter_add("nas/simulated_seconds", duration)
        return EvaluationResult(
            architecture=tuple(arch), reward=reward, duration=duration,
            n_parameters=self.space.count_parameters(arch),
            metadata={"fidelity": "surrogate", "epochs": int(epochs)})


class PacedEvaluator(Evaluator):
    """Wrap an evaluator with real wall-clock latency per evaluation.

    On the actual machine an evaluation occupies a node for minutes while
    the master merely waits; this wrapper reintroduces that latency
    (``pace_seconds`` of ``time.sleep`` around the inner evaluation) so
    dispatch machinery can be exercised and benchmarked under realistic
    conditions: a process pool overlaps the waits of concurrent
    evaluations even on a single core, exactly as the real cluster
    overlaps node occupancy. Results are those of the inner evaluator,
    bitwise — pacing never touches the rng stream.
    """

    def __init__(self, inner: Evaluator, *, pace_seconds: float) -> None:
        super().__init__(inner.space)
        if pace_seconds < 0:
            raise ValueError(
                f"pace_seconds must be non-negative, got {pace_seconds}")
        self.inner = inner
        self.pace_seconds = float(pace_seconds)

    def evaluate(self, arch: Architecture, rng=None) -> EvaluationResult:
        result = self.inner.evaluate(arch, rng)
        if self.pace_seconds > 0:
            time.sleep(self.pace_seconds)
        return result


class RealTrainingEvaluator(Evaluator):
    """Trains the realized network on windowed example tensors.

    Parameters
    ----------
    data:
        ``(x_train, y_train, x_val, y_val)`` windowed tensors (see
        :func:`repro.data.make_windowed_examples`).
    trainer:
        Training protocol; defaults to the paper's search settings
        (batch 64, lr 1e-3, 20 epochs, Adam).
    cost_model:
        Optional performance model used to *charge simulated time* for the
        evaluation so real-fidelity runs remain comparable to surrogate
        runs on the simulated cluster; defaults to measured wall seconds.
    """

    def __init__(self, space: StackedLSTMSpace, data, *,
                 trainer: Trainer | None = None,
                 cost_model: ArchitecturePerformanceModel | None = None
                 ) -> None:
        super().__init__(space)
        x_train, y_train, x_val, y_val = data
        self.x_train = np.asarray(x_train, dtype=np.float64)
        self.y_train = np.asarray(y_train, dtype=np.float64)
        self.x_val = np.asarray(x_val, dtype=np.float64)
        self.y_val = np.asarray(y_val, dtype=np.float64)
        if self.x_train.ndim != 3 or self.x_train.shape[2] != space.input_dim:
            raise ValueError(
                f"x_train must be (n, T, {space.input_dim}), "
                f"got {self.x_train.shape}")
        self.trainer = trainer or Trainer(epochs=20, batch_size=64,
                                          learning_rate=0.001)
        self.cost_model = cost_model

    def evaluate(self, arch: Architecture, rng=None) -> EvaluationResult:
        gen = as_generator(rng)
        start = time.perf_counter()
        with obs.scope("nas/evaluate/real"):
            net = build_network(self.space, arch, rng=gen)
            history = self.trainer.fit(net, self.x_train, self.y_train,
                                       self.x_val, self.y_val, rng=gen)
        wall = time.perf_counter() - start
        if obs.enabled():
            obs.counter_add("nas/evaluations")
            obs.gauge_set("nas/evaluation_wall_s", wall)
        reward = history.final_val_r2
        if self.cost_model is not None:
            duration = self.cost_model.training_seconds(
                arch, gen, epochs=self.trainer.epochs)
        else:
            duration = wall
        return EvaluationResult(
            architecture=tuple(arch), reward=reward, duration=duration,
            n_parameters=net.n_parameters,
            metadata={"fidelity": "real", "wall_seconds": wall,
                      "epochs": self.trainer.epochs,
                      "history": history})


class JointSurrogateEvaluator(Evaluator):
    """Surrogate evaluator over a
    :class:`~repro.nas.space.joint.JointArchitectureSpace`.

    The reward is the performance model's architecture quality plus a
    deterministic hyperparameter response surface whose optimum sits at
    the paper's fixed protocol (lr 1e-3, window 8, POD rank 6) —
    quadratic penalties in log-lr, window, and rank, large enough
    (up to ~3 noise standard deviations at the grid edges) that a joint
    searcher has real signal to exploit. The two per-evaluation noise
    draws (quality Gaussian, then lognormal cost) replay
    :class:`SurrogateEvaluator` exactly, so campaign trajectories remain
    pure functions of the task RNG streams.
    """

    #: Penalty weights of the hyperparameter response surface.
    LR_PENALTY = 0.008        # per (decade off 1e-3)^2
    WINDOW_PENALTY = 0.0006   # per (window - 8)^2
    RANK_PENALTY = 0.0008     # per (rank - 6)^2

    def __init__(self, space: JointArchitectureSpace,
                 model: ArchitecturePerformanceModel | None = None, *,
                 epochs: int = 20) -> None:
        if not isinstance(space, JointArchitectureSpace):
            raise TypeError(
                f"JointSurrogateEvaluator needs a JointArchitectureSpace, "
                f"got {type(space).__name__}")
        super().__init__(space)
        self.model = model or ArchitecturePerformanceModel(space.arch_space)
        self.epochs = int(epochs)

    def mean_quality(self, encoding, epochs: int | None = None) -> float:
        """Noise-free joint quality (architecture term + hyper response)."""
        arch, hp = self.space.split(encoding)
        q = self.model.quality(arch, epochs=epochs or self.epochs)
        q -= self.LR_PENALTY * math.log10(hp.learning_rate / 1e-3) ** 2
        q -= self.WINDOW_PENALTY * (hp.window - 8) ** 2
        q -= self.RANK_PENALTY * (hp.pod_rank - 6) ** 2
        return float(q)

    def _cost_scale(self, hp) -> float:
        # Longer windows lengthen every BPTT unroll; higher POD rank
        # widens the input/output features. Both scale compute linearly
        # to first order.
        return (hp.window / 8.0) * (0.7 + 0.3 * hp.pod_rank / 6.0)

    def evaluate(self, encoding, rng=None) -> EvaluationResult:
        return self.evaluate_at(encoding, self.epochs, rng)

    def evaluate_at(self, encoding, epochs: int, rng=None) -> EvaluationResult:
        gen = as_generator(rng)
        arch, hp = self.space.split(encoding)
        with obs.scope("nas/evaluate/joint"):
            reward = self.mean_quality(encoding, epochs) \
                + float(gen.normal(0.0, self.model.noise_std))
            duration = self.model.training_seconds(arch, gen, epochs=epochs) \
                * self._cost_scale(hp)
        if obs.enabled():
            obs.counter_add("nas/evaluations")
            obs.counter_add("nas/simulated_seconds", duration)
        return EvaluationResult(
            architecture=self.space.validate(encoding), reward=reward,
            duration=duration,
            n_parameters=self.space.count_parameters(encoding),
            metadata={"fidelity": "joint-surrogate", "epochs": int(epochs),
                      "learning_rate": hp.learning_rate,
                      "window": hp.window, "pod_rank": hp.pod_rank})

    def checkpoint_identity(self) -> dict:
        """Joint campaigns are defined by the hyperparameter grid: a
        resume against a different grid is a different experiment."""
        return {"kind": "joint-surrogate", "epochs": self.epochs,
                "grid": self.space.grid.config()}


class PartialTrainingEvaluator(RealTrainingEvaluator):
    """Real training with resumable partial fits (multi-fidelity rungs).

    :meth:`evaluate_partial` trains an architecture to an epoch budget
    and returns, in the result metadata, a *continuation state* — the
    fitted-state vocabulary of :mod:`repro.forecast.persistence`
    (:func:`~repro.nn.serialization.network_spec` + weight arrays)
    extended with the Adam moment estimates and the exact RNG
    bit-position. Feeding that state back with a higher budget continues
    the training **bitwise-identically** to one uninterrupted run: the
    epoch loop's only cross-epoch state is (weights, optimizer moments,
    RNG position, history), all captured. Early stopping keeps per-call
    state, so the trainer must have ``patience=None``.
    """

    def __init__(self, space: StackedLSTMSpace, data, *,
                 trainer: Trainer | None = None,
                 cost_model: ArchitecturePerformanceModel | None = None
                 ) -> None:
        super().__init__(space, data, trainer=trainer, cost_model=cost_model)
        if self.trainer.patience is not None:
            raise ValueError(
                "PartialTrainingEvaluator requires patience=None: early "
                "stopping keeps per-call state that a continuation cannot "
                "restore")

    def evaluate(self, arch: Architecture, rng=None) -> EvaluationResult:
        return self.evaluate_partial(arch, self.trainer.epochs, rng)

    def evaluate_at(self, arch: Architecture, epochs: int,
                    rng=None) -> EvaluationResult:
        """Fresh train to ``epochs`` (the fidelity-aware backend ask)."""
        return self.evaluate_partial(arch, epochs, rng)

    def evaluate_partial(self, arch: Architecture, epochs: int, rng=None,
                         state: dict | None = None) -> EvaluationResult:
        """Train ``arch`` up to ``epochs`` *total* epochs.

        With ``state`` (a prior result's ``metadata["continuation"]``),
        training continues from that snapshot; ``epochs`` still counts
        from zero, so continuing a 5-epoch state to ``epochs=20`` runs 15
        more. The returned duration charges only the epochs run by *this
        call* — the incremental cost a budget scheduler accounts for.
        """
        epochs = int(epochs)
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        start = time.perf_counter()
        if state is None:
            gen = as_generator(rng)
            net = build_network(self.space, arch, rng=gen)
            optimizer = Adam(learning_rate=self.trainer.learning_rate)
            history = History()
            done = 0
        else:
            arch = self.space.validate(arch)
            if tuple(state["architecture"]) != arch:
                raise ValueError(
                    f"continuation state is for architecture "
                    f"{tuple(state['architecture'])}, not {arch}")
            done = int(state["epochs"])
            if epochs <= done:
                raise ValueError(
                    f"continuation target ({epochs} epochs) must exceed "
                    f"the {done} already trained")
            net = network_from_spec(state["network"], state["weights"],
                                    source="partial-training continuation")
            params = [p for p, _ in net.parameters_and_gradients()]
            optimizer = Adam(learning_rate=self.trainer.learning_rate)
            optimizer.restore_state(params, state["optimizer"])
            history = History(
                train_loss=list(state["history"]["train_loss"]),
                val_loss=list(state["history"]["val_loss"]),
                val_r2=list(state["history"]["val_r2"]),
                learning_rates=list(state["history"]["learning_rates"]))
            gen = generator_from_state(state["rng"])
        with obs.scope("nas/evaluate/partial"):
            self.trainer.fit(net, self.x_train, self.y_train,
                             self.x_val, self.y_val, rng=gen,
                             optimizer=optimizer, history=history,
                             n_epochs=epochs - done)
        wall = time.perf_counter() - start
        if obs.enabled():
            obs.counter_add("nas/evaluations")
            obs.counter_add("nas/partial_epochs", epochs - done)
            obs.gauge_set("nas/evaluation_wall_s", wall)
        params = [p for p, _ in net.parameters_and_gradients()]
        continuation = {
            "architecture": list(arch),
            "network": network_spec(net),
            "weights": [np.array(w) for w in net.get_weights()],
            "optimizer": optimizer.capture_state(params),
            "rng": generator_state(gen),
            "history": {"train_loss": list(history.train_loss),
                        "val_loss": list(history.val_loss),
                        "val_r2": list(history.val_r2),
                        "learning_rates": list(history.learning_rates)},
            "epochs": epochs,
        }
        if self.cost_model is not None:
            # Deterministic mean cost for just this call's epochs: a noise
            # draw here would advance the captured RNG position and break
            # the bitwise-continuation contract.
            duration = self.cost_model.training_seconds(
                arch, None, epochs=epochs - done)
        else:
            duration = wall
        return EvaluationResult(
            architecture=tuple(arch), reward=history.final_val_r2,
            duration=duration, n_parameters=net.n_parameters,
            metadata={"fidelity": "partial", "epochs": epochs,
                      "epochs_this_call": epochs - done,
                      "wall_seconds": wall, "continuation": continuation})
