"""Tabular + surrogate NAS benchmark backend (docs/NAS_BENCHMARK.md).

The paper's headline cost is the search itself: tens of thousands of
candidate LSTMs, each paying a full 20-epoch training. Following
NAS-Bench-NLP's tabular archive of RNN-cell evaluations and the
Surrogate NAS Benchmarks line of work (PAPERS.md), this module collapses
that cost with a precomputed benchmark:

* :func:`build_archive` sweeps a search space through the
  :class:`~repro.nas.surrogate.ArchitecturePerformanceModel` (or any
  :class:`~repro.nas.evaluation.Evaluator`, e.g. real short trainings)
  and writes a versioned, pickle-free ``.npz`` artifact of
  ``(architecture encoding -> reward, cost, training curve)`` records —
  sharing the header/atomic-write machinery of
  :mod:`repro.serve.artifact`;
* :class:`BenchmarkEvaluator` answers asks from the table, falling back
  to a surrogate fitted on the archive (ridge or k-NN over the one-hot
  architecture feature vector) for off-table points — so any searcher
  runs a full campaign in seconds instead of hours.

Determinism contract
--------------------
For an architecture **in the table**, :meth:`BenchmarkEvaluator.evaluate`
draws the identical per-evaluation noise stream (one quality draw, one
cost draw) that :class:`~repro.nas.evaluation.SurrogateEvaluator` draws,
on top of the archived noise-free quality/mean-cost — so a campaign
served from the archive is **bitwise identical** to the campaign that
would have paid per-candidate simulated training, in both in-loop and
backend evaluation modes (tests/test_nas_benchmark.py). Off-table
predictions are deterministic functions of the archive alone: two
evaluators loaded from the same file predict identically.

Campaign checkpoints (docs/CHECKPOINTING.md) treat the backend as just
another stream: the archive's SHA-256 content digest is recorded in the
v2 campaign schema via :meth:`BenchmarkEvaluator.checkpoint_identity`,
and a resume against a different archive fails with a diagnosis instead
of silently continuing a different experiment.

This enables the Li & Talwalkar-style reproducibility studies the
always-pay-training searchers make infeasible: :func:`run_seed_sweep`
repeats a campaign across seeds and emits a versioned report
(``repro benchmark sweep``, validated in CI).
"""

from __future__ import annotations

import hashlib
import statistics
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.nas.evaluation import EvaluationResult, Evaluator
from repro.nas.space.ops import Operation
from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.nas.surrogate import ArchitecturePerformanceModel
from repro.serve.artifact import load_npz_artifact, read_npz_artifact_header, \
    write_npz_artifact
from repro.utils.rng import as_generator, as_seed_sequence, child_sequence

__all__ = ["ARCHIVE_FORMAT", "ARCHIVE_VERSION", "SWEEP_FORMAT",
           "SWEEP_VERSION", "ArchitectureArchive", "BenchmarkEvaluator",
           "CurveUnavailableError", "build_archive", "load_archive",
           "read_archive_header", "run_benchmark_campaign",
           "run_seed_sweep", "validate_sweep_report"]


class CurveUnavailableError(ValueError):
    """A fidelity-truncated ask hit an archive built without per-epoch
    curves (``build_archive(..., with_curves=False)``). Typed so
    multi-fidelity schedulers can distinguish "this archive cannot answer
    low-fidelity asks" from a plain missing-architecture ``KeyError``."""

#: Format tag of a benchmark archive artifact.
ARCHIVE_FORMAT = "repro-nas-benchmark"

#: Current archive schema version; loaders accept exactly what they can
#: decode (see repro.serve.artifact).
ARCHIVE_VERSION = 1

#: Reserved array name carrying the JSON header inside the ``.npz``.
_HEADER_KEY = "__benchmark__"

_DESCRIBE = "a NAS benchmark archive"

#: Hard cap on exhaustive sweeps — asking for the paper's full 8.6M-point
#: space by accident should fail fast, not thrash for hours.
_EXHAUSTIVE_LIMIT = 200_000

#: Format tag / version of the multi-seed sweep report.
SWEEP_FORMAT = "repro-nas-sweep-report"
SWEEP_VERSION = 1


# ---------------------------------------------------------------------------
# Space (de)serialization — the archive must be self-describing
# ---------------------------------------------------------------------------

def _space_config(space: StackedLSTMSpace) -> dict:
    return {"n_layers": space.n_layers, "input_dim": space.input_dim,
            "output_dim": space.output_dim,
            "max_skip_depth": space.max_skip_depth,
            "operations": [[op.kind, op.units] for op in space.operations]}


def _space_from_config(config: dict) -> StackedLSTMSpace:
    ops = tuple(Operation(str(kind), int(units))
                for kind, units in config["operations"])
    return StackedLSTMSpace(
        int(config["n_layers"]), input_dim=int(config["input_dim"]),
        output_dim=int(config["output_dim"]), operations=ops,
        max_skip_depth=int(config["max_skip_depth"]))


def _content_digest(encodings: np.ndarray, rewards: np.ndarray,
                    costs: np.ndarray, curves: np.ndarray) -> str:
    """SHA-256 over the record arrays (shape+dtype+bytes): the archive's
    identity for checkpoint compatibility checks."""
    h = hashlib.sha256()
    for arr in (encodings, rewards, costs, curves):
        arr = np.ascontiguousarray(arr)
        h.update(str(arr.dtype).encode())
        h.update(np.asarray(arr.shape, dtype=np.int64).tobytes())
        h.update(arr.tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# The archive
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArchitectureArchive:
    """In-memory view of one benchmark archive.

    ``rewards`` are **noise-free** expected qualities at ``epochs``
    epochs, ``costs`` noise-free mean single-node training seconds —
    per-evaluation noise is re-applied at ask time from the caller's RNG
    stream (see module docstring). ``curves[i, e-1]`` is record ``i``'s
    expected quality after ``e`` epochs.
    """

    space: StackedLSTMSpace
    encodings: np.ndarray         # (n, n_variable_nodes) int64
    rewards: np.ndarray           # (n,) float64
    costs: np.ndarray             # (n,) float64
    curves: np.ndarray            # (n, epochs) float64
    epochs: int
    noise: dict                   # {"noise_std", "time_noise_sigma"}
    digest: str
    metadata: dict = field(default_factory=dict)

    @property
    def n_records(self) -> int:
        return int(self.encodings.shape[0])

    def index(self) -> dict[tuple, int]:
        """Encoding -> row lookup table."""
        return {tuple(int(v) for v in row): i
                for i, row in enumerate(self.encodings)}

    @property
    def has_curves(self) -> bool:
        """False when built with ``with_curves=False`` (the curves array
        is ``(n, 0)`` and low-fidelity asks cannot be answered)."""
        return self.curves.shape[1] > 0

    def curve(self, arch: Architecture) -> np.ndarray:
        """The training curve recorded for an in-table architecture.

        Raises :class:`CurveUnavailableError` when the archive was built
        without curves, and ``KeyError`` when the architecture is simply
        not in the table.
        """
        if not self.has_curves:
            raise CurveUnavailableError(
                f"archive was built without per-epoch curves "
                f"(with_curves=False); rebuild with curves to answer "
                f"fidelity-truncated asks")
        key = tuple(int(v) for v in arch)
        for i, row in enumerate(self.encodings):
            if tuple(int(v) for v in row) == key:
                return self.curves[i]
        raise KeyError(f"architecture {key} is not in the archive")


def build_archive(space: StackedLSTMSpace, model, path, *,
                  architectures=None, n_samples: int | None = None,
                  rng=None, epochs: int = 20, with_curves: bool = True,
                  metadata: dict | None = None):
    """Sweep ``space`` through ``model`` and write a benchmark archive.

    Parameters
    ----------
    model:
        An :class:`ArchitecturePerformanceModel` (records its noise-free
        ``quality``/``training_seconds`` plus the per-epoch curve), or any
        :class:`~repro.nas.evaluation.Evaluator` — e.g. real short
        trainings — whose measured reward/cost are recorded verbatim
        (noise parameters zero: the benchmark replays the archived values
        exactly).
    architectures:
        Explicit encodings to record. Default: exhaustive enumeration of
        the space (requires ``space.size`` <= 200k) unless ``n_samples``
        asks for that many *distinct* uniform samples instead.
    rng:
        Seeds sampling and (Evaluator mode) the per-record task streams.
    epochs:
        Training budget of the recorded qualities and curve length.
    with_curves:
        False skips the per-epoch curves (smaller/faster builds); the
        resulting archive answers full-budget asks only — fidelity-
        truncated asks raise :class:`CurveUnavailableError`.

    Returns the path the archive actually lives at.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    gen = as_generator(rng)
    if architectures is not None:
        if n_samples is not None:
            raise ValueError("pass either architectures= or n_samples=, "
                             "not both")
        archs = [space.validate(a) for a in architectures]
        if not archs:
            raise ValueError("architectures is empty")
    elif n_samples is not None:
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        if n_samples > space.size:
            raise ValueError(f"n_samples {n_samples} exceeds the space "
                             f"size {space.size}")
        seen: set[int] = set()
        archs = []
        while len(archs) < n_samples:
            arch = space.random_architecture(gen)
            rank = space.index_of(arch)
            if rank not in seen:
                seen.add(rank)
                archs.append(arch)
    else:
        if space.size > _EXHAUSTIVE_LIMIT:
            raise ValueError(
                f"space has {space.size} architectures; exhaustive sweeps "
                f"are capped at {_EXHAUSTIVE_LIMIT} — pass n_samples= or "
                f"architectures=")
        archs = [space.from_index(i) for i in range(space.size)]

    n = len(archs)
    encodings = np.asarray(archs, dtype=np.int64)
    rewards = np.empty(n, dtype=np.float64)
    costs = np.empty(n, dtype=np.float64)
    curves = np.empty((n, epochs if with_curves else 0), dtype=np.float64)

    with obs.scope("nas/benchmark/build"):
        if isinstance(model, ArchitecturePerformanceModel):
            fidelity = "surrogate-model"
            noise = {"noise_std": float(model.noise_std),
                     "time_noise_sigma": float(model.time_noise_sigma)}
            for i, arch in enumerate(archs):
                rewards[i] = model.quality(arch, epochs)
                costs[i] = model.training_seconds(arch, rng=None,
                                                  epochs=epochs)
                if with_curves:
                    for e in range(1, epochs + 1):
                        curves[i, e - 1] = model.quality(arch, e)
        elif isinstance(model, Evaluator):
            # Measured-fidelity archive: the recorded values already
            # include whatever noise the evaluation process has, so the
            # benchmark replays them exactly (zero re-applied noise).
            fidelity = "evaluator"
            noise = {"noise_std": 0.0, "time_noise_sigma": 0.0}
            task_root = as_seed_sequence(gen).spawn(1)[0]
            for i, arch in enumerate(archs):
                result = model.evaluate(
                    arch, np.random.default_rng(
                        child_sequence(task_root, i)))
                rewards[i] = result.reward
                costs[i] = result.duration
                if not with_curves:
                    continue
                history = result.metadata.get("history")
                val_r2 = getattr(history, "val_r2", None)
                if val_r2:
                    curve = np.asarray(val_r2, dtype=np.float64)
                    k = min(len(curve), epochs)
                    curves[i, :k] = curve[:k]
                    curves[i, k:] = curve[k - 1]
                else:
                    curves[i, :] = result.reward
        else:
            raise TypeError(
                f"model must be an ArchitecturePerformanceModel or an "
                f"Evaluator, got {type(model).__name__}")

    header = {
        "format": ARCHIVE_FORMAT, "version": ARCHIVE_VERSION,
        "space": _space_config(space),
        "epochs": int(epochs),
        "n_records": n,
        "fidelity": fidelity,
        "noise": noise,
        "digest": _content_digest(encodings, rewards, costs, curves),
        "metadata": dict(metadata or {}),
    }
    arrays = {"arch": encodings, "reward": rewards, "cost": costs,
              "curve": curves}
    target = write_npz_artifact(path, header, arrays, key=_HEADER_KEY)
    if obs.enabled():
        obs.counter_add("nas/benchmark/records_built", n)
    return target


def read_archive_header(path) -> dict:
    """The validated JSON header of an archive, without loading records."""
    from repro.nn.serialization import _npz_path
    with np.load(_npz_path(path)) as archive:
        return read_npz_artifact_header(
            archive, path, key=_HEADER_KEY, expected_format=ARCHIVE_FORMAT,
            supported_versions=(ARCHIVE_VERSION,), describe=_DESCRIBE)


def load_archive(path) -> ArchitectureArchive:
    """Load an archive written by :func:`build_archive`, verifying the
    header (format/version) and the content digest (corruption check)."""
    header, arrays = load_npz_artifact(
        path, key=_HEADER_KEY, expected_format=ARCHIVE_FORMAT,
        supported_versions=(ARCHIVE_VERSION,), describe=_DESCRIBE)
    missing = {"arch", "reward", "cost", "curve"} - set(arrays)
    if missing:
        raise ValueError(f"{path}: archive lacks arrays {sorted(missing)}")
    space = _space_from_config(header["space"])
    encodings = np.asarray(arrays["arch"], dtype=np.int64)
    rewards = np.asarray(arrays["reward"], dtype=np.float64)
    costs = np.asarray(arrays["cost"], dtype=np.float64)
    curves = np.asarray(arrays["curve"], dtype=np.float64)
    if not (len(encodings) == len(rewards) == len(costs) == len(curves)):
        raise ValueError(f"{path}: record arrays disagree on length")
    if encodings.ndim != 2 or \
            encodings.shape[1] != space.n_variable_nodes:
        raise ValueError(
            f"{path}: encodings have shape {encodings.shape}, expected "
            f"(n, {space.n_variable_nodes}) for {space!r}")
    digest = _content_digest(encodings, rewards, costs, curves)
    if digest != header.get("digest"):
        raise ValueError(
            f"{path}: content digest mismatch (file corrupt or arrays "
            f"edited without rewriting the header)")
    return ArchitectureArchive(
        space=space, encodings=encodings, rewards=rewards, costs=costs,
        curves=curves, epochs=int(header["epochs"]),
        noise=dict(header["noise"]), digest=digest,
        metadata=dict(header.get("metadata", {})))


# ---------------------------------------------------------------------------
# The benchmark evaluation backend
# ---------------------------------------------------------------------------

class BenchmarkEvaluator(Evaluator):
    """Answer evaluations from a benchmark archive (table, else surrogate).

    In-table asks replay the archived noise-free quality/mean cost with
    the caller's per-evaluation noise draws applied on top — bitwise what
    :class:`~repro.nas.evaluation.SurrogateEvaluator` would have returned
    (see module docstring). Off-table asks fall back to a surrogate
    fitted once on the archive:

    * ``surrogate="ridge"`` (default) — closed-form ridge regression over
      the one-hot architecture feature vector (one indicator per
      (variable node, choice) plus a bias), fitted separately for reward
      and cost; exactly recovers any linear-in-choices landscape.
    * ``surrogate="knn"`` — mean of the ``knn_k`` nearest table records
      by Hamming distance over the encoding (stable tie-break by record
      order).

    Both fits are deterministic functions of the archive: no RNG, so two
    evaluators loaded from the same file predict identically. Obs
    counters ``nas/benchmark/table_hit`` / ``nas/benchmark/
    surrogate_miss`` meter the two paths.

    Picklable (plain arrays + dicts), so it rides the
    :class:`~repro.hpc.parallel.ParallelEvaluator` pool unchanged.
    """

    def __init__(self, archive, *, surrogate: str = "ridge",
                 ridge_lambda: float = 1e-6, knn_k: int = 8) -> None:
        if not isinstance(archive, ArchitectureArchive):
            archive = load_archive(archive)
        super().__init__(archive.space)
        if surrogate not in ("ridge", "knn"):
            raise ValueError(f"surrogate must be 'ridge' or 'knn', "
                             f"got {surrogate!r}")
        if ridge_lambda <= 0:
            raise ValueError(f"ridge_lambda must be positive, "
                             f"got {ridge_lambda}")
        if knn_k < 1:
            raise ValueError(f"knn_k must be >= 1, got {knn_k}")
        self.archive = archive
        self.epochs = archive.epochs
        self.surrogate = surrogate
        self.ridge_lambda = float(ridge_lambda)
        self.knn_k = int(knn_k)
        self._table = archive.index()
        self._fit: tuple[np.ndarray, np.ndarray] | None = None

    # -- identity (campaign checkpoints) --------------------------------
    @property
    def digest(self) -> str:
        return self.archive.digest

    def checkpoint_identity(self) -> dict:
        """What the v2 campaign checkpoint records about this backend: a
        resume must present the same archive (by content digest)."""
        return {"kind": "nas-benchmark", "digest": self.archive.digest,
                "epochs": self.epochs, "surrogate": self.surrogate}

    # -- surrogate fallback ----------------------------------------------
    def _one_hot(self, encodings: np.ndarray) -> np.ndarray:
        cards = self.space.cardinalities
        offsets = np.concatenate(([0], np.cumsum(cards)[:-1]))
        n = encodings.shape[0]
        x = np.zeros((n, int(sum(cards)) + 1), dtype=np.float64)
        x[:, -1] = 1.0                        # bias column
        rows = np.arange(n)
        for j, off in enumerate(offsets):
            x[rows, off + encodings[:, j]] = 1.0
        return x

    def _ridge_weights(self) -> tuple[np.ndarray, np.ndarray]:
        if self._fit is None:
            x = self._one_hot(self.archive.encodings)
            gram = x.T @ x + self.ridge_lambda * np.eye(x.shape[1])
            w_reward = np.linalg.solve(gram, x.T @ self.archive.rewards)
            w_cost = np.linalg.solve(gram, x.T @ self.archive.costs)
            self._fit = (w_reward, w_cost)
        return self._fit

    def _predict(self, arch: tuple) -> tuple[float, float]:
        """Deterministic (quality, mean cost) for an off-table point."""
        if self.surrogate == "ridge":
            w_reward, w_cost = self._ridge_weights()
            x = self._one_hot(np.asarray([arch], dtype=np.int64))[0]
            return float(x @ w_reward), float(x @ w_cost)
        distances = np.count_nonzero(
            self.archive.encodings != np.asarray(arch, dtype=np.int64),
            axis=1)
        k = min(self.knn_k, self.archive.n_records)
        nearest = np.argsort(distances, kind="stable")[:k]
        return (float(np.mean(self.archive.rewards[nearest])),
                float(np.mean(self.archive.costs[nearest])))

    # -- the Evaluator protocol ------------------------------------------
    def evaluate(self, arch: Architecture, rng=None) -> EvaluationResult:
        gen = as_generator(rng)
        arch = self.space.validate(arch)
        with obs.scope("nas/evaluate/benchmark"):
            idx = self._table.get(arch)
            if idx is not None:
                quality = float(self.archive.rewards[idx])
                mean_cost = float(self.archive.costs[idx])
                source = "table"
            else:
                quality, mean_cost = self._predict(arch)
                source = "surrogate"
        # Exactly SurrogateEvaluator's two per-evaluation draws, in order
        # — quality noise, then lognormal cost noise — so the caller's
        # stream advances identically and in-table results are bitwise
        # equal to the simulated-training path.
        noise_std = float(self.archive.noise["noise_std"])
        sigma = float(self.archive.noise["time_noise_sigma"])
        reward = float(quality + gen.normal(0.0, noise_std))
        cost_noise = np.exp(gen.normal(0.0, sigma) - 0.5 * sigma ** 2)
        duration = float(mean_cost * cost_noise)
        if obs.enabled():
            obs.counter_add("nas/evaluations")
            obs.counter_add(f"nas/benchmark/"
                            f"{'table_hit' if source == 'table' else 'surrogate_miss'}")
            obs.counter_add("nas/simulated_seconds", duration)
        return EvaluationResult(
            architecture=arch, reward=reward, duration=duration,
            n_parameters=self.space.count_parameters(arch),
            metadata={"fidelity": "benchmark", "source": source,
                      "epochs": self.epochs})

    def evaluate_at(self, arch: Architecture, epochs: int,
                    rng=None) -> EvaluationResult:
        """Fidelity-truncated ask, answered from the archived per-epoch
        curves (multi-fidelity rungs).

        In-table asks at ``epochs`` replay ``curves[i, epochs-1]`` — the
        noise-free quality the performance model reports at that budget —
        with the cost prorated to ``epochs``, then apply the same two
        noise draws as :meth:`evaluate`; the result is bitwise what
        :meth:`SurrogateEvaluator.evaluate_at
        <repro.nas.evaluation.SurrogateEvaluator.evaluate_at>` returns.
        Off-table asks shift the surrogate's full-budget prediction by
        the table-mean truncation offset. Archives built with
        ``with_curves=False`` raise :class:`CurveUnavailableError`.
        """
        epochs = int(epochs)
        if not 1 <= epochs <= self.epochs:
            raise ValueError(
                f"epochs must be in [1, {self.epochs}], got {epochs}")
        if epochs == self.epochs:
            return self.evaluate(arch, rng)
        if not self.archive.has_curves:
            raise CurveUnavailableError(
                f"archive {self.archive.digest[:12]} was built without "
                f"per-epoch curves (with_curves=False) and cannot answer "
                f"a {epochs}-epoch ask; rebuild the archive with curves")
        gen = as_generator(rng)
        arch = self.space.validate(arch)
        with obs.scope("nas/evaluate/benchmark"):
            idx = self._table.get(arch)
            if idx is not None:
                quality = float(self.archive.curves[idx, epochs - 1])
                mean_cost = float(self.archive.costs[idx]) \
                    * (epochs / self.epochs)
                source = "table"
            else:
                full_quality, full_cost = self._predict(arch)
                quality = full_quality + self._truncation_offset(epochs)
                mean_cost = full_cost * (epochs / self.epochs)
                source = "surrogate"
        noise_std = float(self.archive.noise["noise_std"])
        sigma = float(self.archive.noise["time_noise_sigma"])
        reward = float(quality + gen.normal(0.0, noise_std))
        cost_noise = np.exp(gen.normal(0.0, sigma) - 0.5 * sigma ** 2)
        duration = float(mean_cost * cost_noise)
        if obs.enabled():
            obs.counter_add("nas/evaluations")
            obs.counter_add(f"nas/benchmark/"
                            f"{'table_hit' if source == 'table' else 'surrogate_miss'}")
            obs.counter_add("nas/simulated_seconds", duration)
        return EvaluationResult(
            architecture=arch, reward=reward, duration=duration,
            n_parameters=self.space.count_parameters(arch),
            metadata={"fidelity": "benchmark", "source": source,
                      "epochs": epochs})

    def _truncation_offset(self, epochs: int) -> float:
        """Table-mean quality drop of truncating training to ``epochs``
        — the deterministic fidelity correction for off-table asks."""
        return float(np.mean(self.archive.curves[:, epochs - 1]
                             - self.archive.rewards))


# ---------------------------------------------------------------------------
# Campaigns and multi-seed sweeps
# ---------------------------------------------------------------------------

def _make_algorithm(name: str, space: StackedLSTMSpace, seed: int):
    from repro.nas.algorithms import AgingEvolution, DistributedRL, \
        GeneticSearch, RandomSearch
    if name == "rs":
        return RandomSearch(space, rng=seed)
    if name == "ae":
        return AgingEvolution(space, rng=seed,
                              population_size=min(20, space.size),
                              sample_size=5)
    if name == "ga":
        return GeneticSearch(space, rng=seed,
                             population_size=min(20, space.size),
                             tournament_size=4)
    if name == "rl":
        return DistributedRL(space, rng=seed, n_agents=2,
                             workers_per_agent=2)
    raise ValueError(
        f"unknown algorithm {name!r}: use 'rs', 'ae', 'ga' or 'rl'")


def run_benchmark_campaign(evaluator: Evaluator, *, algorithm: str = "rs",
                           n_evaluations: int = 200, seed: int = 0) -> dict:
    """One fixed-budget campaign against ``evaluator`` (ask/tell loop for
    rs/ae; round loop for rl), returning a plain result dict.

    Per-evaluation RNG streams are order-stable children of ``seed``
    (:func:`repro.utils.rng.child_sequence`), so a campaign is a pure
    function of ``(archive, algorithm, seed)``.
    """
    if n_evaluations < 1:
        raise ValueError(
            f"n_evaluations must be >= 1, got {n_evaluations}")
    search = _make_algorithm(algorithm, evaluator.space, seed)
    task_root = child_sequence(as_seed_sequence(seed), 0)
    hits_before, misses_before = _benchmark_counters()
    start = time.perf_counter()
    n_done = 0
    with obs.scope("nas/benchmark/campaign"):
        if search.asynchronous:
            while n_done < n_evaluations:
                arch = search.ask()
                result = evaluator.evaluate(
                    arch, np.random.default_rng(
                        child_sequence(task_root, n_done)))
                search.tell(arch, result.reward)
                n_done += 1
        else:
            while n_done < n_evaluations:
                batches = search.propose_round()
                rewards = []
                for batch in batches:
                    row = []
                    for arch in batch:
                        result = evaluator.evaluate(
                            arch, np.random.default_rng(
                                child_sequence(task_root, n_done)))
                        row.append(result.reward)
                        n_done += 1
                    rewards.append(row)
                search.finish_round(batches, rewards)
    wall = time.perf_counter() - start
    hits, misses = _benchmark_counters()
    return {
        "algorithm": algorithm, "seed": int(seed),
        "n_evaluations": n_done,
        "best_reward": float(search.best_reward),
        "best_architecture": (list(search.best_architecture)
                              if search.best_architecture is not None
                              else None),
        "table_hits": hits - hits_before,
        "surrogate_misses": misses - misses_before,
        "wall_seconds": wall,
    }


def _benchmark_counters() -> tuple[int, int]:
    if not obs.enabled():
        return 0, 0
    counters = obs.get_registry().counters
    hit = counters.get("nas/benchmark/table_hit")
    miss = counters.get("nas/benchmark/surrogate_miss")
    return (int(hit.value) if hit is not None else 0,
            int(miss.value) if miss is not None else 0)


def run_seed_sweep(evaluator: Evaluator, *, algorithm: str = "rs",
                   n_evaluations: int = 50, n_seeds: int = 10,
                   base_seed: int = 0) -> dict:
    """Repeat a campaign across ``n_seeds`` seeds — the Li & Talwalkar
    reproducibility study a tabular benchmark makes affordable — and
    return a versioned report (see :func:`validate_sweep_report`)."""
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
    campaigns = [run_benchmark_campaign(
        evaluator, algorithm=algorithm, n_evaluations=n_evaluations,
        seed=base_seed + i) for i in range(n_seeds)]
    best = [c["best_reward"] for c in campaigns]
    report = {
        "format": SWEEP_FORMAT, "version": SWEEP_VERSION,
        "algorithm": algorithm,
        "n_evaluations": int(n_evaluations),
        "n_seeds": int(n_seeds), "base_seed": int(base_seed),
        "archive_digest": getattr(evaluator, "digest", None),
        "campaigns": campaigns,
        "best_reward": {
            "mean": statistics.fmean(best),
            "std": statistics.pstdev(best) if len(best) > 1 else 0.0,
            "min": min(best), "max": max(best),
            "median": statistics.median(best),
        },
        "total_wall_seconds": sum(c["wall_seconds"] for c in campaigns),
    }
    validate_sweep_report(report)
    return report


def validate_sweep_report(report) -> None:
    """Schema-check a sweep report; raises ValueError on the first
    violation (the CI ``benchmark-smoke`` job gates on this)."""
    if not isinstance(report, dict):
        raise ValueError("sweep report must be a dict")
    if report.get("format") != SWEEP_FORMAT:
        raise ValueError(f"not a sweep report "
                         f"(format {report.get('format')!r})")
    if report.get("version") != SWEEP_VERSION:
        raise ValueError(f"unsupported sweep report version "
                         f"{report.get('version')!r}")
    for key in ("algorithm", "n_evaluations", "n_seeds", "base_seed",
                "campaigns", "best_reward", "total_wall_seconds"):
        if key not in report:
            raise ValueError(f"sweep report lacks {key!r}")
    campaigns = report["campaigns"]
    if not isinstance(campaigns, list) or \
            len(campaigns) != report["n_seeds"]:
        raise ValueError(
            f"expected {report['n_seeds']} campaigns, "
            f"got {len(campaigns) if isinstance(campaigns, list) else campaigns!r}")
    for i, c in enumerate(campaigns):
        for key in ("seed", "n_evaluations", "best_reward",
                    "best_architecture", "table_hits", "surrogate_misses",
                    "wall_seconds"):
            if key not in c:
                raise ValueError(f"campaign {i} lacks {key!r}")
        if int(c["n_evaluations"]) < int(report["n_evaluations"]):
            raise ValueError(
                f"campaign {i} completed {c['n_evaluations']} < "
                f"{report['n_evaluations']} evaluations")
        if not np.isfinite(c["best_reward"]):
            raise ValueError(f"campaign {i} best_reward is not finite")
    stats = report["best_reward"]
    for key in ("mean", "std", "min", "max", "median"):
        if key not in stats or not np.isfinite(stats[key]):
            raise ValueError(f"best_reward.{key} missing or not finite")
    if not stats["min"] <= stats["median"] <= stats["max"]:
        raise ValueError("best_reward statistics are inconsistent")
