"""Multi-fidelity budget allocation: successive halving and Hyperband.

The paper trains every sampled architecture to the full 20-epoch budget.
Li & Talwalkar (PAPERS.md) show that *budget schedulers* — train many
candidates briefly, promote only the promising ones to longer budgets —
buy the same final quality for a fraction of the training epochs. This
module adds that scheduling layer between the searchers and the
evaluators:

* :class:`SuccessiveHalving` — one bracket: start ``n`` candidates at
  ``min_epochs``, keep the best ``1/eta`` fraction at each rung, multiply
  the budget by ``eta``, until ``max_epochs``;
* :class:`Hyperband` — a portfolio of successive-halving brackets
  trading off exploration (many candidates, short budgets) against
  exploitation (few candidates, long budgets).

Worked example (``max_epochs=20``, ``eta=4``): ``s_max = floor(log_4 20)
= 2``, so three brackets. Bracket ``s=2`` runs 16 candidates at 1 epoch,
promotes the best 4 to 5 epochs, then the best 1 to 20 epochs — 16·1 +
4·5 + 1·20 = 56 fresh training epochs (36 incremental, when partial
trainings continue from their rung-k weights) to full-train the bracket
winner. Brackets ``s=1`` (6 @ 5 → 1 @ 20) and ``s=0`` (3 @ 20) complete
the portfolio. Full-budget random search would pay 20 epochs for every
candidate.

Determinism contract
--------------------
Candidate ``j`` of bracket ``b`` is sampled from stream ``(seed, 0, b,
j)`` and *evaluated* — at every rung — under lifetime task stream
``(seed, 1, b, j)`` (:func:`repro.utils.rng.child_sequence` children, so
position-keyed and order-stable). Every evaluation is therefore a pure
function of ``(architecture, stream, rung epochs)``: results are bitwise
identical across serial and pooled backends at any worker count, and a
campaign killed mid-rung resumes — from the JSON checkpoint this module
writes through :func:`repro.nas.checkpoint.atomic_write_json` — to the
exact trajectory of an uninterrupted run (tests/test_multifidelity.py).

Reusing one lifetime stream per candidate mirrors partial-training
continuation: a fresh ``evaluate_at(arch, r_k)`` under that stream equals
``evaluate_partial`` continuation through the earlier rungs bitwise (see
:class:`~repro.nas.evaluation.PartialTrainingEvaluator`), so the pooled
fresh-training path and the in-process continuation path agree exactly.

Rungs dispatch through :class:`~repro.hpc.parallel.EvaluationBackend`:
every pending member of a rung is submitted before the first gather, so
a pool of any size is saturated — the rung is the speculation window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.nas.checkpoint import atomic_write_json, load_checkpoint
from repro.nas.evaluation import Evaluator, evaluator_identity
from repro.utils.rng import as_seed_sequence, child_sequence

__all__ = ["MULTIFIDELITY_FORMAT", "MULTIFIDELITY_VERSION", "Rung",
           "Bracket", "SuccessiveHalving", "Hyperband",
           "scheduler_from_config", "run_multifidelity_campaign",
           "resume_multifidelity_campaign"]

#: Format tag / version of a multi-fidelity campaign checkpoint.
MULTIFIDELITY_FORMAT = "repro-multifidelity-checkpoint"
MULTIFIDELITY_VERSION = 1


@dataclass(frozen=True)
class Rung:
    """One budget level of a bracket: ``n_candidates`` evaluated at
    ``epochs`` total training epochs."""

    epochs: int
    n_candidates: int


@dataclass(frozen=True)
class Bracket:
    """A successive-halving run: rungs of increasing budget."""

    index: int
    rungs: tuple[Rung, ...]

    @property
    def n_evaluations(self) -> int:
        return sum(r.n_candidates for r in self.rungs)


def _check_budgets(min_epochs: int, max_epochs: int, eta: int) -> None:
    if not isinstance(eta, int) or eta < 2:
        raise ValueError(f"eta must be an int >= 2, got {eta!r}")
    if min_epochs < 1:
        raise ValueError(f"min_epochs must be >= 1, got {min_epochs}")
    if max_epochs < min_epochs:
        raise ValueError(
            f"max_epochs ({max_epochs}) must be >= min_epochs "
            f"({min_epochs})")


class SuccessiveHalving:
    """One bracket: geometric budget growth, 1/eta survival per rung."""

    algorithm = "sh"

    def __init__(self, *, n_candidates: int, min_epochs: int = 1,
                 max_epochs: int = 20, eta: int = 4) -> None:
        _check_budgets(min_epochs, max_epochs, eta)
        if n_candidates < 1:
            raise ValueError(
                f"n_candidates must be >= 1, got {n_candidates}")
        self.n_candidates = int(n_candidates)
        self.min_epochs = int(min_epochs)
        self.max_epochs = int(max_epochs)
        self.eta = int(eta)

    def config(self) -> dict:
        return {"algorithm": self.algorithm,
                "n_candidates": self.n_candidates,
                "min_epochs": self.min_epochs,
                "max_epochs": self.max_epochs, "eta": self.eta}

    def brackets(self) -> list[Bracket]:
        rungs: list[Rung] = []
        epochs, n = self.min_epochs, self.n_candidates
        k = 0
        while True:
            # Once a single survivor remains, jump straight to the full
            # budget: the bracket winner is always trained to max_epochs.
            if max(1, n) == 1:
                rungs.append(Rung(epochs=self.max_epochs, n_candidates=1))
                break
            rungs.append(Rung(epochs=min(epochs, self.max_epochs),
                              n_candidates=n))
            if epochs >= self.max_epochs:
                break
            k += 1
            epochs = self.min_epochs * self.eta ** k
            n = self.n_candidates // self.eta ** k
        return [Bracket(index=0, rungs=tuple(rungs))]


class Hyperband:
    """A portfolio of successive-halving brackets (Li et al. 2018).

    ``s_max = floor(log_eta(max_epochs / min_epochs))``; bracket ``s``
    (from ``s_max`` down to 0) starts ``ceil((s_max+1)/(s+1) · eta^s) ·
    candidate_multiplier`` candidates at ``max(min_epochs, max_epochs ·
    eta^-s)`` epochs. ``brackets`` limits the portfolio to the most
    exploratory ``brackets`` members; ``candidate_multiplier`` scales
    every bracket's width (more samples per budget profile).
    """

    algorithm = "hyperband"

    def __init__(self, *, min_epochs: int = 1, max_epochs: int = 20,
                 eta: int = 4, brackets: int | None = None,
                 candidate_multiplier: int = 1) -> None:
        _check_budgets(min_epochs, max_epochs, eta)
        if brackets is not None and brackets < 1:
            raise ValueError(f"brackets must be >= 1, got {brackets}")
        if candidate_multiplier < 1:
            raise ValueError(f"candidate_multiplier must be >= 1, "
                             f"got {candidate_multiplier}")
        self.min_epochs = int(min_epochs)
        self.max_epochs = int(max_epochs)
        self.eta = int(eta)
        self.n_brackets = brackets
        self.candidate_multiplier = int(candidate_multiplier)

    def config(self) -> dict:
        return {"algorithm": self.algorithm,
                "min_epochs": self.min_epochs,
                "max_epochs": self.max_epochs, "eta": self.eta,
                "brackets": self.n_brackets,
                "candidate_multiplier": self.candidate_multiplier}

    def brackets(self) -> list[Bracket]:
        s_max = int(math.floor(
            math.log(self.max_epochs / self.min_epochs, self.eta)))
        out: list[Bracket] = []
        for s in range(s_max, -1, -1):
            n = math.ceil((s_max + 1) / (s + 1) * self.eta ** s) \
                * self.candidate_multiplier
            r0 = max(self.min_epochs,
                     int(self.max_epochs * self.eta ** (-s)))
            inner = SuccessiveHalving(n_candidates=n, min_epochs=r0,
                                      max_epochs=self.max_epochs,
                                      eta=self.eta)
            out.append(Bracket(index=s, rungs=inner.brackets()[0].rungs))
        if self.n_brackets is not None:
            out = out[:self.n_brackets]
        return out


def scheduler_from_config(config: dict):
    """Rebuild the scheduler a checkpoint's ``scheduler`` entry captured."""
    algorithm = config.get("algorithm")
    if algorithm == "sh":
        return SuccessiveHalving(
            n_candidates=int(config["n_candidates"]),
            min_epochs=int(config["min_epochs"]),
            max_epochs=int(config["max_epochs"]), eta=int(config["eta"]))
    if algorithm == "hyperband":
        return Hyperband(
            min_epochs=int(config["min_epochs"]),
            max_epochs=int(config["max_epochs"]), eta=int(config["eta"]),
            brackets=config["brackets"],
            candidate_multiplier=int(config["candidate_multiplier"]))
    raise ValueError(f"unknown scheduler algorithm {algorithm!r}")


# ---------------------------------------------------------------------------
# The campaign runner
# ---------------------------------------------------------------------------

def _key(bracket: int, rung: int, slot: int) -> str:
    return f"{bracket}:{rung}:{slot}"


def _check_resume(state: dict, scheduler, evaluator: Evaluator,
                  seed: int) -> None:
    if state.get("format") != MULTIFIDELITY_FORMAT:
        raise ValueError("resume state is not a multi-fidelity campaign "
                         "checkpoint")
    if int(state.get("version", 0)) > MULTIFIDELITY_VERSION:
        raise ValueError(
            f"checkpoint version {state.get('version')} is newer than "
            f"supported ({MULTIFIDELITY_VERSION})")
    saved = state["scheduler"]
    if saved != scheduler.config():
        raise ValueError(
            f"checkpointed scheduler {saved} does not match this "
            f"invocation's {scheduler.config()}: resuming would continue "
            f"a different experiment (same --eta/--min-epochs/--brackets "
            f"required)")
    if int(state["seed"]) != int(seed):
        raise ValueError(
            f"checkpoint was written with seed {state['seed']}, not "
            f"{seed}: resuming would continue a different experiment")
    saved_identity = state.get("evaluator")
    if saved_identity is not None:
        identity = evaluator_identity(evaluator)
        if identity != saved_identity:
            raise ValueError(
                f"checkpoint was written against evaluator "
                f"{saved_identity!r} but this invocation provides "
                f"{identity!r}; resuming would continue a different "
                f"experiment")


def run_multifidelity_campaign(scheduler, evaluator: Evaluator, *,
                               seed: int = 0, workers: int | None = None,
                               checkpoint=None,
                               stop_after_evaluations: int | None = None,
                               resume_state: dict | None = None) -> dict:
    """Run the scheduler's brackets against ``evaluator``.

    Parameters
    ----------
    scheduler:
        A :class:`SuccessiveHalving` or :class:`Hyperband` instance.
    workers:
        ``None`` — in-process evaluation, threading partial-training
        continuation state when the evaluator supports
        ``evaluate_partial``; ``0`` — the serial submit/gather backend;
        ``n >= 1`` — the ``n``-worker process pool. All three are
        bitwise-identical.
    checkpoint:
        Path to write an atomic campaign checkpoint after every completed
        evaluation (and at campaign end).
    stop_after_evaluations:
        Stop (deterministically, mid-rung if needed) once this many *new*
        evaluations completed — the differential suites' and CI's
        interrupt injection.
    resume_state:
        A checkpoint dict from :func:`~repro.nas.checkpoint.
        load_checkpoint`; completed evaluations are not re-run, and the
        scheduler config / seed / evaluator identity must match.

    Returns a report dict: best architecture/reward, evaluation and epoch
    totals (``epochs_incremental`` charges only the continuation delta at
    each promotion; ``epochs_fresh`` the train-from-scratch equivalent),
    and a per-bracket rung log.
    """
    from repro.hpc.parallel import evaluation_backend

    if stop_after_evaluations is not None and stop_after_evaluations < 1:
        raise ValueError(f"stop_after_evaluations must be >= 1, "
                         f"got {stop_after_evaluations}")
    if resume_state is not None:
        _check_resume(resume_state, scheduler, evaluator, seed)

    brackets = scheduler.brackets()
    space = evaluator.space
    root = as_seed_sequence(seed)
    sample_root = child_sequence(root, 0)
    task_root = child_sequence(root, 1)

    done: dict[str, dict] = {}
    results: list[dict] = []
    if resume_state is not None:
        for rec in resume_state["results"]:
            done[_key(rec["bracket"], rec["rung"], rec["slot"])] = rec
            results.append(rec)

    # Epoch accounting replays deterministically from the results list —
    # restored records and fresh ones go through the same bookkeeping.
    prev_epochs: dict[str, int] = {}
    totals = {"incremental": 0, "fresh": 0}
    # The campaign's answer is the best *full-budget* evaluation — a
    # noisy 1-epoch reward is not evidence an architecture is best. The
    # any-fidelity incumbent is only a fallback for campaigns stopped
    # before any candidate reached max_epochs.
    best = {"reward": -float("inf"), "architecture": None}
    best_any = {"reward": -float("inf"), "architecture": None}

    def account(rec: dict) -> None:
        ck = f"{rec['bracket']}:{rec['slot']}"
        already = prev_epochs.get(ck, 0)
        totals["incremental"] += rec["epochs"] - already
        totals["fresh"] += rec["epochs"]
        prev_epochs[ck] = rec["epochs"]
        if rec["reward"] > best_any["reward"]:
            best_any["reward"] = rec["reward"]
            best_any["architecture"] = tuple(rec["architecture"])
        if rec["epochs"] >= scheduler.max_epochs and \
                rec["reward"] > best["reward"]:
            best["reward"] = rec["reward"]
            best["architecture"] = tuple(rec["architecture"])

    for rec in results:
        account(rec)
    n_new = 0
    stopped = False
    bracket_log: list[dict] = []

    def payload() -> dict:
        return {"format": MULTIFIDELITY_FORMAT,
                "version": MULTIFIDELITY_VERSION,
                "scheduler": scheduler.config(), "seed": int(seed),
                "evaluator": evaluator_identity(evaluator),
                "results": results,
                "n_evaluations": len(results),
                "epochs_incremental": totals["incremental"],
                "epochs_fresh": totals["fresh"]}

    def record(rec: dict) -> None:
        nonlocal n_new
        done[_key(rec["bracket"], rec["rung"], rec["slot"])] = rec
        results.append(rec)
        account(rec)
        n_new += 1
        if obs.enabled():
            obs.counter_add("multifidelity/evaluations")
            obs.counter_add("multifidelity/epochs_trained",
                            rec["epochs_this_call"])
        if checkpoint is not None:
            atomic_write_json(checkpoint, payload())

    backend = evaluation_backend(evaluator, workers)
    partial = backend is None and hasattr(evaluator, "evaluate_partial")

    try:
        with obs.scope("multifidelity/campaign"):
            for b_i, bracket in enumerate(brackets):
                if stopped:
                    break
                bracket_sample = child_sequence(sample_root, b_i)
                bracket_tasks = child_sequence(task_root, b_i)
                members = [
                    (slot, space.validate(space.random_architecture(
                        np.random.default_rng(
                            child_sequence(bracket_sample, slot)))))
                    for slot in range(bracket.rungs[0].n_candidates)]
                # slot -> continuation state (in-process partial training).
                states: dict[int, dict] = {}
                rung_log: list[dict] = []
                for r_i, rung in enumerate(bracket.rungs):
                    if stopped:
                        break
                    members = members[:rung.n_candidates]
                    pending = [(slot, arch) for slot, arch in members
                               if _key(b_i, r_i, slot) not in done]
                    if backend is not None:
                        # Saturate the pool: the whole rung goes out
                        # before the first gather.
                        handles = [
                            (slot, arch, backend.submit(
                                arch, child_sequence(bracket_tasks, slot),
                                epochs=rung.epochs))
                            for slot, arch in pending]
                        for slot, arch, handle in handles:
                            if stopped:
                                break
                            result = backend.gather(handle)
                            record({"bracket": b_i, "rung": r_i,
                                    "slot": slot,
                                    "architecture": list(arch),
                                    "epochs": rung.epochs,
                                    "epochs_this_call": rung.epochs,
                                    "reward": float(result.reward),
                                    "duration": float(result.duration)})
                            if stop_after_evaluations is not None and \
                                    n_new >= stop_after_evaluations:
                                stopped = True
                    else:
                        for slot, arch in pending:
                            if stopped:
                                break
                            rng = np.random.default_rng(
                                child_sequence(bracket_tasks, slot))
                            if partial:
                                result = evaluator.evaluate_partial(
                                    arch, rung.epochs, rng,
                                    state=states.get(slot))
                                states[slot] = \
                                    result.metadata["continuation"]
                                delta = \
                                    result.metadata["epochs_this_call"]
                            else:
                                result = evaluator.evaluate_at(
                                    arch, rung.epochs, rng)
                                delta = rung.epochs
                            record({"bracket": b_i, "rung": r_i,
                                    "slot": slot,
                                    "architecture": list(arch),
                                    "epochs": rung.epochs,
                                    "epochs_this_call": delta,
                                    "reward": float(result.reward),
                                    "duration": float(result.duration)})
                            if stop_after_evaluations is not None and \
                                    n_new >= stop_after_evaluations:
                                stopped = True
                    if stopped or any(_key(b_i, r_i, slot) not in done
                                      for slot, _ in members):
                        stopped = True
                        break
                    rewards = {slot: done[_key(b_i, r_i, slot)]["reward"]
                               for slot, _ in members}
                    rung_log.append({
                        "epochs": rung.epochs,
                        "n_candidates": len(members),
                        "best_reward": max(rewards.values())})
                    if obs.enabled():
                        obs.counter_add("multifidelity/rungs_completed")
                    if r_i + 1 < len(bracket.rungs):
                        keep = bracket.rungs[r_i + 1].n_candidates
                        # Stable sort: reward ties promote the earlier
                        # slot, deterministically.
                        members = sorted(
                            members,
                            key=lambda m: -rewards[m[0]])[:keep]
                        if obs.enabled():
                            obs.counter_add("multifidelity/promotions",
                                            len(members))
                if not stopped:
                    bracket_log.append({"index": bracket.index,
                                        "rungs": rung_log})
                    if obs.enabled():
                        obs.counter_add("multifidelity/brackets_completed")
    finally:
        if backend is not None:
            backend.close()

    if checkpoint is not None:
        atomic_write_json(checkpoint, payload())
    winner = best if best["architecture"] is not None else best_any
    return {
        "algorithm": scheduler.config()["algorithm"],
        "scheduler": scheduler.config(),
        "seed": int(seed),
        "completed": not stopped,
        "n_evaluations": len(results),
        "epochs_incremental": totals["incremental"],
        "epochs_fresh": totals["fresh"],
        "best_reward": (winner["reward"]
                        if winner["architecture"] is not None else None),
        "best_architecture": (list(winner["architecture"])
                              if winner["architecture"] is not None
                              else None),
        "best_is_full_budget": best["architecture"] is not None,
        "brackets": bracket_log,
    }


def resume_multifidelity_campaign(source, evaluator: Evaluator, *,
                                  scheduler=None,
                                  workers: int | None = None,
                                  checkpoint=None,
                                  stop_after_evaluations: int | None = None
                                  ) -> dict:
    """Resume a campaign from a checkpoint file (or a loaded dict).

    The scheduler is rebuilt from the checkpoint unless one is passed
    explicitly — in which case its config must match (mismatched
    ``--eta``/``--min-epochs`` refuse with a "different experiment"
    diagnosis, exactly like the executor campaign checkpoints).
    """
    state = source if isinstance(source, dict) else load_checkpoint(source)
    if state.get("format") != MULTIFIDELITY_FORMAT:
        raise ValueError(f"{source}: not a multi-fidelity campaign "
                         f"checkpoint")
    if scheduler is None:
        scheduler = scheduler_from_config(state["scheduler"])
    return run_multifidelity_campaign(
        scheduler, evaluator, seed=int(state["seed"]), workers=workers,
        checkpoint=checkpoint,
        stop_after_evaluations=stop_after_evaluations,
        resume_state=state)
