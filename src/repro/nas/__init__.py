"""Neural architecture search (DeepHyper-style) for stacked LSTMs.

Subpackages:

* :mod:`repro.nas.space` — the directed-acyclic-graph search space of
  stacked LSTM architectures (paper Sec. III-A);
* :mod:`repro.nas.algorithms` — aging evolution, distributed PPO
  reinforcement learning, and random search (paper Sec. III-B);
* :mod:`repro.nas.evaluation` — real-training and surrogate evaluators;
* :mod:`repro.nas.surrogate` — the calibrated architecture quality/cost
  model that stands in for single-node Theta trainings at scale.
"""

from repro.nas.space import Architecture, Operation, StackedLSTMSpace
from repro.nas.space.builder import build_network
from repro.nas.algorithms import (
    AgingEvolution,
    DistributedRL,
    RandomSearch,
    SearchAlgorithm,
)
from repro.nas.evaluation import (
    EvaluationResult,
    Evaluator,
    PacedEvaluator,
    RealTrainingEvaluator,
    SurrogateEvaluator,
)
from repro.nas.surrogate import ArchitecturePerformanceModel
from repro.nas.checkpoint import (
    CheckpointPolicy,
    load_checkpoint,
    load_search,
    restore_search,
    save_search,
    search_state,
)

__all__ = [
    "Architecture",
    "Operation",
    "StackedLSTMSpace",
    "build_network",
    "SearchAlgorithm",
    "AgingEvolution",
    "DistributedRL",
    "RandomSearch",
    "EvaluationResult",
    "Evaluator",
    "PacedEvaluator",
    "RealTrainingEvaluator",
    "SurrogateEvaluator",
    "ArchitecturePerformanceModel",
    "search_state",
    "save_search",
    "restore_search",
    "load_search",
    "load_checkpoint",
    "CheckpointPolicy",
]
