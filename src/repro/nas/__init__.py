"""Neural architecture search (DeepHyper-style) for stacked LSTMs.

Subpackages:

* :mod:`repro.nas.space` — the directed-acyclic-graph search space of
  stacked LSTM architectures (paper Sec. III-A);
* :mod:`repro.nas.algorithms` — aging evolution, distributed PPO
  reinforcement learning, and random search (paper Sec. III-B);
* :mod:`repro.nas.evaluation` — real-training and surrogate evaluators;
* :mod:`repro.nas.surrogate` — the calibrated architecture quality/cost
  model that stands in for single-node Theta trainings at scale;
* :mod:`repro.nas.benchmark` — tabular NAS benchmark archives
  (precomputed evaluation tables + surrogate-fit fallback,
  docs/NAS_BENCHMARK.md);
* :mod:`repro.nas.multifidelity` — successive-halving / Hyperband budget
  schedulers over partial-training fidelities (docs/SEARCH.md).
"""

from repro.nas.space import (
    Architecture,
    HyperparameterGrid,
    Hyperparameters,
    JointArchitectureSpace,
    Operation,
    StackedLSTMSpace,
)
from repro.nas.space.builder import build_network
from repro.nas.algorithms import (
    AgingEvolution,
    DistributedRL,
    GeneticSearch,
    RandomSearch,
    SearchAlgorithm,
)
from repro.nas.evaluation import (
    EvaluationResult,
    Evaluator,
    JointSurrogateEvaluator,
    PacedEvaluator,
    PartialTrainingEvaluator,
    RealTrainingEvaluator,
    SurrogateEvaluator,
    evaluator_identity,
)
from repro.nas.multifidelity import (
    Hyperband,
    SuccessiveHalving,
    resume_multifidelity_campaign,
    run_multifidelity_campaign,
    scheduler_from_config,
)
from repro.nas.surrogate import ArchitecturePerformanceModel
from repro.nas.benchmark import (
    ARCHIVE_FORMAT,
    ARCHIVE_VERSION,
    ArchitectureArchive,
    BenchmarkEvaluator,
    CurveUnavailableError,
    build_archive,
    load_archive,
    read_archive_header,
    run_benchmark_campaign,
    run_seed_sweep,
    validate_sweep_report,
)
from repro.nas.checkpoint import (
    CheckpointPolicy,
    load_checkpoint,
    load_search,
    restore_search,
    save_search,
    search_state,
)

__all__ = [
    "Architecture",
    "Operation",
    "StackedLSTMSpace",
    "Hyperparameters",
    "HyperparameterGrid",
    "JointArchitectureSpace",
    "build_network",
    "SearchAlgorithm",
    "AgingEvolution",
    "DistributedRL",
    "GeneticSearch",
    "RandomSearch",
    "EvaluationResult",
    "Evaluator",
    "PacedEvaluator",
    "RealTrainingEvaluator",
    "SurrogateEvaluator",
    "JointSurrogateEvaluator",
    "PartialTrainingEvaluator",
    "evaluator_identity",
    "ArchitecturePerformanceModel",
    "SuccessiveHalving",
    "Hyperband",
    "run_multifidelity_campaign",
    "resume_multifidelity_campaign",
    "scheduler_from_config",
    "ARCHIVE_FORMAT",
    "ARCHIVE_VERSION",
    "ArchitectureArchive",
    "BenchmarkEvaluator",
    "CurveUnavailableError",
    "build_archive",
    "load_archive",
    "read_archive_header",
    "run_benchmark_campaign",
    "run_seed_sweep",
    "validate_sweep_report",
    "search_state",
    "save_search",
    "restore_search",
    "load_search",
    "load_checkpoint",
    "CheckpointPolicy",
]
