"""Neural architecture search (DeepHyper-style) for stacked LSTMs.

Subpackages:

* :mod:`repro.nas.space` — the directed-acyclic-graph search space of
  stacked LSTM architectures (paper Sec. III-A);
* :mod:`repro.nas.algorithms` — aging evolution, distributed PPO
  reinforcement learning, and random search (paper Sec. III-B);
* :mod:`repro.nas.evaluation` — real-training and surrogate evaluators;
* :mod:`repro.nas.surrogate` — the calibrated architecture quality/cost
  model that stands in for single-node Theta trainings at scale;
* :mod:`repro.nas.benchmark` — tabular NAS benchmark archives
  (precomputed evaluation tables + surrogate-fit fallback,
  docs/NAS_BENCHMARK.md).
"""

from repro.nas.space import Architecture, Operation, StackedLSTMSpace
from repro.nas.space.builder import build_network
from repro.nas.algorithms import (
    AgingEvolution,
    DistributedRL,
    RandomSearch,
    SearchAlgorithm,
)
from repro.nas.evaluation import (
    EvaluationResult,
    Evaluator,
    PacedEvaluator,
    RealTrainingEvaluator,
    SurrogateEvaluator,
)
from repro.nas.surrogate import ArchitecturePerformanceModel
from repro.nas.benchmark import (
    ARCHIVE_FORMAT,
    ARCHIVE_VERSION,
    ArchitectureArchive,
    BenchmarkEvaluator,
    build_archive,
    load_archive,
    read_archive_header,
    run_benchmark_campaign,
    run_seed_sweep,
    validate_sweep_report,
)
from repro.nas.checkpoint import (
    CheckpointPolicy,
    load_checkpoint,
    load_search,
    restore_search,
    save_search,
    search_state,
)

__all__ = [
    "Architecture",
    "Operation",
    "StackedLSTMSpace",
    "build_network",
    "SearchAlgorithm",
    "AgingEvolution",
    "DistributedRL",
    "RandomSearch",
    "EvaluationResult",
    "Evaluator",
    "PacedEvaluator",
    "RealTrainingEvaluator",
    "SurrogateEvaluator",
    "ArchitecturePerformanceModel",
    "ARCHIVE_FORMAT",
    "ARCHIVE_VERSION",
    "ArchitectureArchive",
    "BenchmarkEvaluator",
    "build_archive",
    "load_archive",
    "read_archive_header",
    "run_benchmark_campaign",
    "run_seed_sweep",
    "validate_sweep_report",
    "search_state",
    "save_search",
    "restore_search",
    "load_search",
    "load_checkpoint",
    "CheckpointPolicy",
]
