"""Joint architecture + training-hyperparameter search space.

Pawar et al. (PAPERS.md) search a geophysical surrogate's architecture
*and* its training hyperparameters with one genetic algorithm. This
module extends a :class:`~repro.nas.space.search_space.StackedLSTMSpace`
encoding with three trailing hyperparameter genes — learning rate,
input window length, and POD rank — each an index into a small discrete
grid, so the joint space keeps the same mixed-radix integer-tuple
protocol (``cardinalities`` / ``validate`` / ``random_architecture`` /
``mutate`` / ``index_of``) every searcher already speaks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.utils.rng import as_generator

__all__ = ["Hyperparameters", "HyperparameterGrid", "JointArchitectureSpace"]


@dataclass(frozen=True)
class Hyperparameters:
    """Decoded trailing genes of a joint encoding."""

    learning_rate: float
    window: int
    pod_rank: int


class HyperparameterGrid:
    """Discrete grids the three hyperparameter genes index into.

    Defaults bracket the paper's fixed protocol (lr 1e-3, window 8,
    rank 5–6) with a log-spaced lr sweep and symmetric window/rank
    ranges, mirroring the GA sweep of Pawar et al.
    """

    def __init__(self, *,
                 learning_rates: tuple[float, ...] = (
                     1e-4, 3e-4, 1e-3, 3e-3, 1e-2),
                 windows: tuple[int, ...] = (4, 6, 8, 10, 12),
                 pod_ranks: tuple[int, ...] = (2, 4, 6, 8, 10)) -> None:
        self.learning_rates = tuple(float(v) for v in learning_rates)
        self.windows = tuple(int(v) for v in windows)
        self.pod_ranks = tuple(int(v) for v in pod_ranks)
        for name, values in (("learning_rates", self.learning_rates),
                             ("windows", self.windows),
                             ("pod_ranks", self.pod_ranks)):
            if not values:
                raise ValueError(f"{name} must be non-empty")
            if any(v <= 0 for v in values):
                raise ValueError(f"{name} must be positive, got {values}")
            if len(set(values)) != len(values):
                raise ValueError(f"{name} has duplicate entries: {values}")

    @property
    def cardinalities(self) -> tuple[int, int, int]:
        return (len(self.learning_rates), len(self.windows),
                len(self.pod_ranks))

    def decode(self, genes) -> Hyperparameters:
        """Map three grid-index genes to concrete hyperparameter values."""
        lr_i, w_i, r_i = (int(g) for g in genes)
        return Hyperparameters(learning_rate=self.learning_rates[lr_i],
                               window=self.windows[w_i],
                               pod_rank=self.pod_ranks[r_i])

    def config(self) -> dict:
        """JSON round-trip for checkpoint identity."""
        return {"learning_rates": list(self.learning_rates),
                "windows": list(self.windows),
                "pod_ranks": list(self.pod_ranks)}

    @classmethod
    def from_config(cls, config: dict) -> "HyperparameterGrid":
        return cls(learning_rates=tuple(config["learning_rates"]),
                   windows=tuple(config["windows"]),
                   pod_ranks=tuple(config["pod_ranks"]))

    def __eq__(self, other) -> bool:
        return isinstance(other, HyperparameterGrid) \
            and self.config() == other.config()

    def __repr__(self) -> str:
        return (f"HyperparameterGrid(lrs={len(self.learning_rates)}, "
                f"windows={len(self.windows)}, "
                f"ranks={len(self.pod_ranks)})")


class JointArchitectureSpace:
    """A stacked-LSTM space with three hyperparameter genes appended.

    The encoding is ``arch_genes + (lr_index, window_index, rank_index)``;
    everything a searcher needs (:attr:`cardinalities`, :meth:`validate`,
    :meth:`random_architecture`, :meth:`mutate`, mixed-radix ranking)
    mirrors :class:`~repro.nas.space.search_space.StackedLSTMSpace`, so
    :class:`~repro.nas.algorithms.genetic.GeneticSearch` (and in fact any
    existing searcher) runs on it unchanged.
    """

    N_HYPER = 3

    def __init__(self, arch_space: StackedLSTMSpace,
                 grid: HyperparameterGrid | None = None) -> None:
        self.arch_space = arch_space
        self.grid = grid if grid is not None else HyperparameterGrid()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def cardinalities(self) -> tuple[int, ...]:
        return self.arch_space.cardinalities + self.grid.cardinalities

    @property
    def n_variable_nodes(self) -> int:
        return self.arch_space.n_variable_nodes + self.N_HYPER

    @property
    def size(self) -> int:
        total = 1
        for c in self.cardinalities:
            total *= c
        return total

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def validate(self, encoding) -> tuple[int, ...]:
        encoding = tuple(int(v) for v in encoding)
        cards = self.cardinalities
        if len(encoding) != len(cards):
            raise ValueError(
                f"joint encoding length {len(encoding)} != expected "
                f"{len(cards)} (architecture {len(self.arch_space.cardinalities)}"
                f" + {self.N_HYPER} hyperparameter genes)")
        for pos, (value, card) in enumerate(zip(encoding, cards)):
            if not 0 <= value < card:
                raise ValueError(
                    f"position {pos}: value {value} out of range [0, {card})")
        return encoding

    def split(self, encoding) -> tuple[Architecture, Hyperparameters]:
        """Decompose a joint encoding into (architecture, hyperparameters)."""
        encoding = self.validate(encoding)
        return (encoding[:-self.N_HYPER],
                self.grid.decode(encoding[-self.N_HYPER:]))

    def architecture_of(self, encoding) -> Architecture:
        return self.split(encoding)[0]

    def hyperparameters_of(self, encoding) -> Hyperparameters:
        return self.split(encoding)[1]

    def index_of(self, encoding) -> int:
        encoding = self.validate(encoding)
        rank = 0
        for value, card in zip(encoding, self.cardinalities):
            rank = rank * card + value
        return rank

    def from_index(self, rank: int):
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        values = []
        for card in reversed(self.cardinalities):
            values.append(rank % card)
            rank //= card
        return tuple(reversed(values))

    # ------------------------------------------------------------------
    # Sampling and mutation
    # ------------------------------------------------------------------
    def random_architecture(self, rng=None):
        gen = as_generator(rng)
        return tuple(int(gen.integers(card)) for card in self.cardinalities)

    def mutate(self, encoding, rng=None):
        """Re-draw one uniformly chosen gene to a different value —
        the same single-node mutation the architecture space uses, over
        the extended encoding (hyperparameter genes mutate too)."""
        encoding = self.validate(encoding)
        gen = as_generator(rng)
        pos = int(gen.integers(len(encoding)))
        card = self.cardinalities[pos]
        offset = int(gen.integers(1, card))
        child = list(encoding)
        child[pos] = (encoding[pos] + offset) % card
        return tuple(child)

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def count_parameters(self, encoding) -> int:
        """Parameter count of the realized network (hyperparameter genes
        do not change the architecture's weight count)."""
        arch, _ = self.split(encoding)
        return self.arch_space.count_parameters(arch)

    def config(self) -> dict:
        return {"grid": self.grid.config()}

    def __repr__(self) -> str:
        return (f"JointArchitectureSpace({self.arch_space!r}, "
                f"{self.grid!r}, size={self.size})")
