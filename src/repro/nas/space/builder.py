"""Realize an architecture encoding as an executable Network."""

from __future__ import annotations

from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.nn.layers import (
    AddLayer,
    DenseLayer,
    GRULayer,
    LSTMLayer,
    SimpleRNNLayer,
)
from repro.nn.model import Network

__all__ = ["build_network", "describe_architecture"]

_RECURRENT_LAYERS = {"lstm": LSTMLayer, "gru": GRULayer,
                     "rnn": SimpleRNNLayer}


def build_network(space: StackedLSTMSpace, arch: Architecture,
                  rng=None) -> Network:
    """Build the DAG network for an encoding.

    The construction mirrors :meth:`StackedLSTMSpace.walk` exactly: LSTM
    variable nodes, linear dense projections for skip connections, add+ReLU
    merges, and the constant LSTM(output_dim) head.
    """
    net = Network(input_dim=space.input_dim, rng=rng)
    for spec in space.walk(arch):
        kind = spec["type"]
        if kind == "dense":
            net.add_node(spec["name"], DenseLayer(spec["units"],
                                                  activation=None),
                         [spec["input"]])
        elif kind == "add":
            net.add_node(spec["name"], AddLayer("relu"), spec["inputs"])
        elif kind == "recurrent":
            layer_cls = _RECURRENT_LAYERS[spec["kind"]]
            net.add_node(spec["name"], layer_cls(spec["units"]),
                         [spec["input"]])
        elif kind == "output_lstm":
            net.add_node(spec["name"], LSTMLayer(spec["units"]),
                         [spec["input"]])
        else:  # pragma: no cover - walk() only emits the kinds above
            raise ValueError(f"unknown spec type {kind!r}")
    net.set_output("output")
    return net


def describe_architecture(space: StackedLSTMSpace,
                          arch: Architecture) -> str:
    """Human-readable description (the textual analogue of paper Fig. 4)."""
    ops = space.layer_ops(arch)
    lines = [f"Architecture {space.index_of(arch)} "
             f"(params={space.count_parameters(arch)})"]
    lines.append("  layer ops: " + " -> ".join(str(op) for op in ops)
                 + f" -> LSTM({space.output_dim}) [output]")
    skips = space.active_skips(arch)
    if skips:
        names = {0: "input"}
        names.update({k: f"node{k}" for k in range(1, space.n_layers + 1)})
        for slot in skips:
            lines.append(f"  skip: {names[slot.source]} -> node{slot.target} "
                         "(dense projection + add + ReLU)")
    else:
        lines.append("  no active skip connections")
    return "\n".join(lines)
