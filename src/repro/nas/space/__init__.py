"""Stacked-LSTM DAG search space."""

from repro.nas.space.ops import Operation, default_operations, hybrid_operations
from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.nas.space.builder import build_network, describe_architecture
from repro.nas.space.joint import (HyperparameterGrid, Hyperparameters,
                                   JointArchitectureSpace)

__all__ = [
    "Operation",
    "default_operations",
    "hybrid_operations",
    "Architecture",
    "StackedLSTMSpace",
    "build_network",
    "describe_architecture",
    "Hyperparameters",
    "HyperparameterGrid",
    "JointArchitectureSpace",
]
