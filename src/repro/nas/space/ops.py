"""Operation catalog for the variable LSTM nodes.

The paper lists [Identity, LSTM(16), LSTM(32), LSTM(64), LSTM(80),
LSTM(96)] but reports a total space of 8,605,184 = 7^5 x 2^9
architectures, which implies seven operations per LSTM variable node in
the actual runs; we insert LSTM(48) to complete the geometric ladder (see
DESIGN.md Sec. 4). The catalog is a plain parameter — experiments that
want the 6-op list can pass it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Operation", "default_operations"]


#: Recurrent cell kinds and their parameter-count gate multipliers
#: (params = mult * ((in + units) * units + units)).
RECURRENT_KINDS = {"lstm": 4, "gru": 3, "rnn": 1}


@dataclass(frozen=True)
class Operation:
    """One candidate operation at a variable node.

    ``kind`` is ``"identity"`` (layer skipped entirely) or a recurrent
    cell: ``"lstm"`` (the paper's space), ``"gru"`` or ``"rnn"`` (the
    hybrid-cell extension the paper's future work motivates), each with
    ``units`` hidden neurons.
    """

    kind: str
    units: int = 0

    def __post_init__(self) -> None:
        if self.kind != "identity" and self.kind not in RECURRENT_KINDS:
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if self.kind in RECURRENT_KINDS and self.units <= 0:
            raise ValueError(
                f"{self.kind} units must be positive, got {self.units}")
        if self.kind == "identity" and self.units != 0:
            raise ValueError("identity op takes no units")

    @property
    def is_identity(self) -> bool:
        return self.kind == "identity"

    @property
    def gate_multiplier(self) -> int:
        """Parameter-count multiplier of the cell's gate block."""
        return RECURRENT_KINDS[self.kind]

    def __str__(self) -> str:
        return "Identity" if self.is_identity else \
            f"{self.kind.upper()}({self.units})"


def default_operations() -> tuple[Operation, ...]:
    """The 7-operation catalog reproducing the paper's space size."""
    return (Operation("identity"),
            Operation("lstm", 16),
            Operation("lstm", 32),
            Operation("lstm", 48),
            Operation("lstm", 64),
            Operation("lstm", 80),
            Operation("lstm", 96))


def hybrid_operations() -> tuple[Operation, ...]:
    """Extended catalog mixing cell types (LSTM / GRU / SimpleRNN) — the
    hybrid-memory-structure search the paper's related work (Ororbia et
    al.) explores and its future work proposes."""
    return (Operation("identity"),
            Operation("lstm", 32), Operation("lstm", 64),
            Operation("lstm", 96),
            Operation("gru", 32), Operation("gru", 64),
            Operation("gru", 96),
            Operation("rnn", 32), Operation("rnn", 64))
