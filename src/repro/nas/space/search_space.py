"""The stacked-LSTM search space (paper Sec. III-A).

An architecture is a fixed-length sequence of integers — one entry per
*variable node* of the DeepHyper DAG:

* ``n_layers`` **LSTM variable nodes**, each choosing an operation from the
  catalog (Identity or LSTM(u));
* **skip-connection variable nodes**: before variable node ``k`` (k >= 2)
  there is one binary node per candidate *source anchor* beyond the
  immediate predecessor, up to ``max_skip_depth`` anchors back. Anchors are
  the network input and each variable node's output. With the paper's
  ``n_layers = 5`` and ``max_skip_depth = 3`` this yields
  1 + 2 + 3 + 3 = 9 skip nodes, and the total space size
  7^5 * 2^9 = 8,605,184 matches the paper exactly.

Mutation (used by aging evolution) follows the paper: sample one variable
node uniformly, then choose a different value for it uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nas.space.ops import Operation, default_operations
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["Architecture", "StackedLSTMSpace"]


#: An architecture encoding — tuple of ints, hashable so populations and
#: uniqueness counters can use it as a dict/set key.
Architecture = tuple


@dataclass(frozen=True)
class _SkipSlot:
    """One skip-connection variable node: target layer k takes an optional
    connection from the anchor ``source`` (0 = network input, j = output of
    variable node j)."""

    target: int
    source: int


class StackedLSTMSpace:
    """Search space over stacked LSTM DAGs.

    Parameters
    ----------
    n_layers:
        m — number of LSTM variable nodes (paper: 5).
    input_dim / output_dim:
        Feature dims of the sequence input and output. The output is
        produced by a constant LSTM(output_dim) node (paper Fig. 2:
        "constant LSTM(5) node to match the output dimension of five").
    operations:
        Candidate ops at each LSTM variable node.
    max_skip_depth:
        How many anchors back a skip connection may reach (see module
        docstring).
    """

    def __init__(self, n_layers: int = 5, *, input_dim: int = 5,
                 output_dim: int = 5,
                 operations: tuple[Operation, ...] | None = None,
                 max_skip_depth: int = 3) -> None:
        self.n_layers = check_positive_int(n_layers, name="n_layers")
        self.input_dim = check_positive_int(input_dim, name="input_dim")
        self.output_dim = check_positive_int(output_dim, name="output_dim")
        self.operations = tuple(operations) if operations is not None \
            else default_operations()
        if len(self.operations) < 2:
            raise ValueError("need at least two candidate operations")
        if not isinstance(max_skip_depth, int) or max_skip_depth < 0:
            raise ValueError(
                f"max_skip_depth must be a non-negative int, got "
                f"{max_skip_depth!r}")
        # Depth 0 disables skip connections entirely (ablation variant).
        self.max_skip_depth = max_skip_depth
        self._skip_slots = self._enumerate_skip_slots()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _enumerate_skip_slots(self) -> tuple[_SkipSlot, ...]:
        slots: list[_SkipSlot] = []
        for k in range(2, self.n_layers + 1):
            # Anchors available to layer k: input (0) and outputs of
            # layers 1..k-1. The immediate predecessor (k-1) is always
            # wired; candidates are k-2, k-3, ... (nearest first), at most
            # max_skip_depth of them.
            candidates = list(range(k - 2, -1, -1))[: self.max_skip_depth]
            slots.extend(_SkipSlot(target=k, source=s) for s in candidates)
        return tuple(slots)

    @property
    def skip_slots(self) -> tuple[_SkipSlot, ...]:
        return self._skip_slots

    @property
    def n_skip_nodes(self) -> int:
        return len(self._skip_slots)

    @property
    def n_variable_nodes(self) -> int:
        return self.n_layers + self.n_skip_nodes

    @property
    def cardinalities(self) -> tuple[int, ...]:
        """Choice count of each variable node, in encoding order
        (layer ops first, then skip bits)."""
        return (len(self.operations),) * self.n_layers + (2,) * self.n_skip_nodes

    @property
    def size(self) -> int:
        """Total number of encodable architectures."""
        total = 1
        for c in self.cardinalities:
            total *= c
        return total

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def validate(self, arch: Architecture) -> tuple[int, ...]:
        """Check an encoding and return it as a canonical tuple of ints."""
        arch = tuple(int(v) for v in arch)
        cards = self.cardinalities
        if len(arch) != len(cards):
            raise ValueError(
                f"architecture length {len(arch)} != expected {len(cards)}")
        for pos, (value, card) in enumerate(zip(arch, cards)):
            if not 0 <= value < card:
                raise ValueError(
                    f"position {pos}: value {value} out of range [0, {card})")
        return arch

    def layer_ops(self, arch: Architecture) -> tuple[Operation, ...]:
        """The operation chosen at each LSTM variable node."""
        arch = self.validate(arch)
        return tuple(self.operations[v] for v in arch[: self.n_layers])

    def active_skips(self, arch: Architecture) -> tuple[_SkipSlot, ...]:
        """Skip slots whose binary choice is 'identity' (connected)."""
        arch = self.validate(arch)
        bits = arch[self.n_layers:]
        return tuple(slot for slot, bit in zip(self._skip_slots, bits) if bit)

    def index_of(self, arch: Architecture) -> int:
        """Mixed-radix rank of an encoding in [0, size) — handy for
        uniqueness bookkeeping and hashing-free storage."""
        arch = self.validate(arch)
        rank = 0
        for value, card in zip(arch, self.cardinalities):
            rank = rank * card + value
        return rank

    def from_index(self, rank: int) -> Architecture:
        """Inverse of :meth:`index_of`."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        values = []
        for card in reversed(self.cardinalities):
            values.append(rank % card)
            rank //= card
        return tuple(reversed(values))

    # ------------------------------------------------------------------
    # Sampling and mutation
    # ------------------------------------------------------------------
    def random_architecture(self, rng=None) -> Architecture:
        """Uniform sample over the whole space."""
        gen = as_generator(rng)
        return tuple(int(gen.integers(card)) for card in self.cardinalities)

    def mutate(self, arch: Architecture, rng=None) -> Architecture:
        """AE's mutation: re-draw one uniformly chosen variable node to a
        *different* value (paper Sec. III-B1)."""
        arch = self.validate(arch)
        gen = as_generator(rng)
        pos = int(gen.integers(len(arch)))
        card = self.cardinalities[pos]
        # Choose uniformly among the other card-1 values.
        offset = int(gen.integers(1, card))
        new_value = (arch[pos] + offset) % card
        child = list(arch)
        child[pos] = new_value
        return tuple(child)

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def count_parameters(self, arch: Architecture) -> int:
        """Trainable parameter count of the realized network without
        building it (drives the surrogate cost model)."""
        total = 0
        for spec in self.walk(arch):
            if spec["type"] in ("recurrent", "output_lstm"):
                in_dim, units = spec["in_dim"], spec["units"]
                mult = spec.get("gate_multiplier", 4)
                total += mult * ((in_dim + units) * units + units)
            elif spec["type"] == "dense":
                total += spec["in_dim"] * spec["units"] + spec["units"]
        return total

    def walk(self, arch: Architecture):
        """Yield realized-layer specs in construction order.

        Shared by the network builder and the parameter counter so the two
        can never disagree. Specs are dicts with ``type`` in
        {"recurrent", "dense", "add", "output_lstm"} plus wiring info:

        * anchors are labelled ``a0`` (input) .. ``a{n_layers}``;
        * identity ops collapse an anchor onto its predecessor's tensor.
        """
        arch = self.validate(arch)
        ops = self.layer_ops(arch)
        skips_by_target: dict[int, list[int]] = {}
        for slot in self.active_skips(arch):
            skips_by_target.setdefault(slot.target, []).append(slot.source)

        # anchor_tensor[j] = name of the tensor anchor j resolves to.
        anchor_tensor = {0: "input"}
        anchor_dim = {0: self.input_dim}
        current, current_dim = "input", self.input_dim

        for k in range(1, self.n_layers + 1):
            op = ops[k - 1]
            # Resolve incoming skip connections for this node first: each
            # projects its source anchor to the current width via a linear
            # dense layer, then merges with the main path through
            # add + ReLU (paper Sec. III-A / Sec. IV).
            sources = skips_by_target.get(k, [])
            merge_inputs = [current]
            for src in sorted(sources):
                src_tensor = anchor_tensor[src]
                if src_tensor == current:
                    # Identity ops can collapse a "skip" onto the main
                    # path; adding a tensor to itself is pointless, skip it.
                    continue
                proj = {"type": "dense", "name": f"proj_{src}_to_{k}",
                        "in_dim": anchor_dim[src], "units": current_dim,
                        "input": src_tensor}
                yield proj
                merge_inputs.append(proj["name"])
            if len(merge_inputs) > 1:
                add = {"type": "add", "name": f"add_{k}",
                       "inputs": tuple(merge_inputs), "dim": current_dim}
                yield add
                current = add["name"]
            if op.is_identity:
                anchor_tensor[k] = current
                anchor_dim[k] = current_dim
                continue
            lstm = {"type": "recurrent", "kind": op.kind,
                    "gate_multiplier": op.gate_multiplier,
                    "name": f"{op.kind}_{k}",
                    "in_dim": current_dim, "units": op.units,
                    "input": current}
            yield lstm
            current, current_dim = lstm["name"], op.units
            anchor_tensor[k] = current
            anchor_dim[k] = current_dim

        yield {"type": "output_lstm", "name": "output",
               "in_dim": current_dim, "units": self.output_dim,
               "input": current}

    def __repr__(self) -> str:
        return (f"StackedLSTMSpace(n_layers={self.n_layers}, "
                f"ops={len(self.operations)}, "
                f"skips={self.n_skip_nodes}, size={self.size})")
