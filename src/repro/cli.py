"""Command-line entry point: regenerate any paper table or figure, run
the core microbenchmark suite, or drive a NAS search directly.

Usage::

    python -m repro list
    python -m repro fig3 [--preset quick|full]
    python -m repro table3 --preset full
    python -m repro all --preset quick
    python -m repro bench --quick            # writes BENCH_core.json
    python -m repro bench --quick --compare OLD.json   # perf gate
    python -m repro bench --obs --jsonl run.obs.jsonl
    python -m repro search --algorithm rs --workers 4  # pooled search
    python -m repro benchmark build --space small --out archive.npz
    python -m repro benchmark sweep --archive archive.npz --report sweep.json
    python -m repro search --benchmark archive.npz --algorithm rs
    python -m repro serve --registry reg --train-demo v1
    python -m repro serve --registry reg --loadgen --report slo.json
    python -m repro serve --registry reg --router --workers 4 --loadgen
    python -m repro pipeline run --state pipe --registry reg --weeks 144
    python -m repro pipeline status --state pipe --registry reg --json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

__all__ = ["main", "EXPERIMENTS", "SUBCOMMANDS"]


def _lazy(module: str) -> Callable[[str], object]:
    """Import the experiment module only when invoked (fast `list`)."""
    def run(preset: str) -> object:
        import importlib
        return importlib.import_module(module).main(preset)
    return run


EXPERIMENTS: dict[str, tuple[str, Callable[[str], object]]] = {
    "fig3": ("search trajectories AE/RL/RS, 128 nodes",
             _lazy("repro.experiments.fig3_trajectories")),
    "fig4": ("best AE-discovered architecture",
             _lazy("repro.experiments.fig4_best_architecture")),
    "fig5": ("post-training convergence + coefficient forecasts",
             _lazy("repro.experiments.fig5_posttraining")),
    "fig6": ("field forecast for the week of 2015-06-14",
             _lazy("repro.experiments.fig6_field_forecast")),
    "fig7": ("temporal probes in the Eastern Pacific",
             _lazy("repro.experiments.fig7_probes")),
    "fig8": ("unique high-performing architectures vs scale",
             _lazy("repro.experiments.fig8_scaling_architectures")),
    "fig9": ("10-seed variability of AE and RL",
             _lazy("repro.experiments.fig9_variability")),
    "table1": ("weekly Eastern-Pacific RMSE breakdown",
               _lazy("repro.experiments.table1_rmse")),
    "table2": ("R^2 of all forecasting methods",
               _lazy("repro.experiments.table2_baselines")),
    "table3": ("node utilization and evaluation counts",
               _lazy("repro.experiments.table3_scaling")),
}


def bench_main(argv: list[str]) -> int:
    """``repro bench`` — run the microbenchmark suite, write the perf
    trajectory JSON, optionally with observability enabled."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the core hot paths (recurrent cells, Trainer "
                    "epoch, POD basis, random-search slice) and write the "
                    "perf trajectory file (see docs/OBSERVABILITY.md).")
    parser.add_argument("--quick", action="store_true",
                        help="small workload sizes (single-core, < 2 min)")
    parser.add_argument("--reps", type=int, default=None, metavar="N",
                        help="timed repetitions per benchmark "
                             "(default: 3 quick, 5 full)")
    parser.add_argument("--out", default="BENCH_core.json", metavar="PATH",
                        help="output JSON path (default: BENCH_core.json)")
    parser.add_argument("--filter", default=None, metavar="SUBSTR",
                        help="only run benchmarks whose name contains this")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list benchmark names and exit")
    parser.add_argument("--obs", action="store_true",
                        help="enable the observability registry during the "
                             "run and print its summary table")
    parser.add_argument("--jsonl", default=None, metavar="PATH",
                        help="with --obs: export the registry as JSONL")
    parser.add_argument("--workers", type=int, default=4, metavar="N",
                        help="largest pool size of the serial-vs-pool "
                             "throughput benchmarks; 0 skips them "
                             "(default: 4)")
    parser.add_argument("--compare", default=None, metavar="OLD.json",
                        help="after the run, print a delta table against "
                             "this baseline and exit 1 on any >20%% "
                             "regression")
    args = parser.parse_args(argv)

    from repro import obs
    from repro.bench import default_suite, run_suite

    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    # Validate the baseline up front: a malformed or zero-mean file
    # should fail with a diagnosis *before* minutes of timing, and with
    # a typed exit code rather than a traceback after them.
    baseline = None
    if args.compare is not None:
        from repro.bench import load_bench_file
        try:
            baseline = load_bench_file(args.compare)
        except (OSError, ValueError) as exc:
            print(f"error: --compare baseline rejected: {exc}",
                  file=sys.stderr)
            return 2
    suite = default_suite(quick=args.quick, max_workers=args.workers)
    if args.filter is not None:
        suite = [b for b in suite if args.filter in b.name]
        if not suite:
            print(f"no benchmark matches --filter {args.filter!r}")
            return 2
    if args.list_only:
        for bench in suite:
            print(bench.name)
        return 0

    reps = args.reps if args.reps is not None else (3 if args.quick else 5)
    if reps < 1:
        parser.error(f"--reps must be >= 1, got {reps}")
    if args.obs:
        obs.enable()
    print(f"running {len(suite)} benchmarks "
          f"({'quick' if args.quick else 'full'} sizes, reps={reps})")
    # 0.25 s warmup floor: measure at steady-state CPU frequency, not
    # mid-ramp (matters for the first few ms-scale cell benchmarks).
    results = run_suite(suite, reps=reps, warmup_s=0.25,
                        out_path=args.out, progress=print)
    print(f"wrote {args.out}")
    if args.obs:
        print()
        print(obs.summary())
        if args.jsonl is not None:
            obs.export_jsonl(args.jsonl)
            print(f"wrote {args.jsonl}")
    if baseline is not None:
        from repro.bench import compare_bench
        new = {name: r.as_json() for name, r in results.items()}
        comparison = compare_bench(baseline, new)
        print()
        print(f"comparison against {args.compare}:")
        print(comparison.table())
        if not comparison.ok:
            return 1
    return 0


def _multifidelity_search(args, evaluator, resume_state) -> int:
    """``repro search --algo sh|hyperband`` — budget-scheduled search."""
    from repro.nas.multifidelity import (Hyperband, SuccessiveHalving,
                                         resume_multifidelity_campaign,
                                         run_multifidelity_campaign,
                                         scheduler_from_config)

    max_epochs = int(getattr(evaluator, "epochs", 20))
    try:
        if resume_state is not None:
            # Explicit flags must agree with the checkpoint: overlay them
            # on the saved config and let the resume check refuse any
            # difference ("resuming would continue a different
            # experiment").
            config = dict(resume_state["scheduler"])
            if args.min_epochs is not None:
                config["min_epochs"] = args.min_epochs
            if args.eta is not None:
                config["eta"] = args.eta
            if config["algorithm"] == "sh" and args.candidates is not None:
                config["n_candidates"] = args.candidates
            if config["algorithm"] == "hyperband":
                if args.brackets is not None:
                    config["brackets"] = args.brackets
                if args.multiplier is not None:
                    config["candidate_multiplier"] = args.multiplier
            scheduler = scheduler_from_config(config)
            print(f"resuming {config['algorithm']} campaign from "
                  f"{args.resume} ({resume_state['n_evaluations']} "
                  f"evaluations done)")
            report = resume_multifidelity_campaign(
                resume_state, evaluator, scheduler=scheduler,
                workers=args.workers, checkpoint=args.checkpoint,
                stop_after_evaluations=args.stop_after)
        else:
            min_epochs = 1 if args.min_epochs is None else args.min_epochs
            eta = 4 if args.eta is None else args.eta
            if args.algorithm == "sh":
                scheduler = SuccessiveHalving(
                    n_candidates=(64 if args.candidates is None
                                  else args.candidates),
                    min_epochs=min_epochs, max_epochs=max_epochs, eta=eta)
            else:
                scheduler = Hyperband(
                    min_epochs=min_epochs, max_epochs=max_epochs, eta=eta,
                    brackets=args.brackets,
                    candidate_multiplier=(1 if args.multiplier is None
                                          else args.multiplier))
            ladder = "; ".join(
                " -> ".join(f"{r.n_candidates}@{r.epochs}ep"
                            for r in bracket.rungs)
                for bracket in scheduler.brackets())
            print(f"search: {args.algorithm} (eta={eta}, "
                  f"min_epochs={min_epochs}, max_epochs={max_epochs})")
            print(f"brackets: {ladder}")
            report = run_multifidelity_campaign(
                scheduler, evaluator, seed=args.seed,
                workers=args.workers, checkpoint=args.checkpoint,
                stop_after_evaluations=args.stop_after)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.checkpoint is not None:
        print(f"checkpoint written to {args.checkpoint}")
    print(f"completed:             {report['completed']}")
    print(f"evaluations:           {report['n_evaluations']}")
    print(f"epochs (incremental):  {report['epochs_incremental']}")
    print(f"epochs (fresh equiv.): {report['epochs_fresh']}")
    if report["best_reward"] is not None:
        print(f"best reward:           {report['best_reward']:.4f}")
        print(f"best architecture:     {report['best_architecture']}")
    return 0


def search_main(argv: list[str]) -> int:
    """``repro search`` — run one NAS search on the simulated cluster,
    optionally evaluating on a real process pool (``--workers``)."""
    parser = argparse.ArgumentParser(
        prog="repro search",
        description="Run an architecture search (surrogate fidelity) on "
                    "the simulated Theta partition and print the paper's "
                    "scaling metrics.")
    parser.add_argument("--algorithm",
                        choices=("ae", "rs", "rl", "ga", "sh", "hyperband"),
                        default="ae",
                        help="aging evolution, random search, distributed "
                             "PPO, genetic joint arch/hyperparameter "
                             "search, successive halving, or Hyperband "
                             "(default: ae)")
    parser.add_argument("--nodes", type=int, default=16, metavar="N",
                        help="simulated partition size (default: 16)")
    parser.add_argument("--wall", type=float, default=3600.0, metavar="S",
                        help="simulated wall-clock budget in seconds "
                             "(default: 3600)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="evaluation processes: omit for in-loop "
                             "evaluation, 0 for the serial backend, N>=1 "
                             "for a pool of N workers (identical results "
                             "either way)")
    parser.add_argument("--seed", type=int, default=0, metavar="S",
                        help="master seed of the run (default: 0)")
    parser.add_argument("--benchmark", default=None, metavar="ARCHIVE.npz",
                        help="evaluate from a tabular NAS benchmark "
                             "archive (repro benchmark build) instead of "
                             "the live surrogate; the search space is "
                             "taken from the archive")
    parser.add_argument("--agents", type=int, default=2, metavar="N",
                        help="PPO masters for --algorithm rl (default: 2)")
    parser.add_argument("--obs", action="store_true",
                        help="enable observability and print its summary "
                             "(includes the parallel/* pool metrics)")
    parser.add_argument("--walltime", type=float, default=None, metavar="S",
                        help="simulated allocation budget for THIS "
                             "invocation; the campaign stops (checkpoint "
                             "it with --checkpoint) once the clock "
                             "advances this far, even if --wall remains")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="write a resumable campaign checkpoint "
                             "(atomically) at walltime expiry / completion")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="S", dest="checkpoint_every",
                        help="also checkpoint every S simulated seconds "
                             "(requires --checkpoint)")
    parser.add_argument("--resume", default=None, metavar="PATH",
                        help="continue a campaign from a checkpoint file; "
                             "--algorithm/--nodes/--wall/--agents are "
                             "taken from the file (pass the original "
                             "--seed so the surrogate matches)")
    parser.add_argument("--min-epochs", type=int, default=None,
                        metavar="R", dest="min_epochs",
                        help="sh/hyperband: smallest training budget per "
                             "candidate (default: 1)")
    parser.add_argument("--eta", type=int, default=None, metavar="E",
                        help="sh/hyperband: budget growth / survival "
                             "factor per rung (default: 4)")
    parser.add_argument("--brackets", type=int, default=None, metavar="B",
                        help="hyperband: run only the B most exploratory "
                             "brackets (default: all)")
    parser.add_argument("--candidates", type=int, default=None,
                        metavar="N",
                        help="sh: bracket width — candidates at the first "
                             "rung (default: 64)")
    parser.add_argument("--multiplier", type=int, default=None,
                        metavar="M",
                        help="hyperband: scale every bracket's width by M "
                             "(default: 1)")
    parser.add_argument("--stop-after", type=int, default=None,
                        metavar="N", dest="stop_after",
                        help="sh/hyperband: stop after N new evaluations "
                             "(deterministic mid-rung interrupt; resume "
                             "with --resume)")
    args = parser.parse_args(argv)
    if args.nodes < 1:
        parser.error(f"--nodes must be >= 1, got {args.nodes}")
    if args.wall <= 0:
        parser.error(f"--wall must be positive, got {args.wall}")
    if args.walltime is not None and args.walltime <= 0:
        parser.error(f"--walltime must be positive, got {args.walltime}")
    if args.checkpoint_every is not None and args.checkpoint is None:
        parser.error("--checkpoint-every requires --checkpoint")

    from repro import obs
    from repro.hpc import ThetaPartition, rl_node_allocation, \
        resume_search, run_search
    from repro.nas import (
        AgingEvolution,
        ArchitecturePerformanceModel,
        CheckpointPolicy,
        DistributedRL,
        GeneticSearch,
        JointArchitectureSpace,
        JointSurrogateEvaluator,
        RandomSearch,
        SurrogateEvaluator,
        load_checkpoint,
    )
    from repro.nas.checkpoint import CAMPAIGN_FORMAT
    from repro.nas.multifidelity import MULTIFIDELITY_FORMAT
    from repro.nas.space.ops import default_operations
    from repro.nas.space.search_space import StackedLSTMSpace

    mf_flags = any(v is not None for v in (
        args.min_epochs, args.eta, args.brackets, args.candidates,
        args.multiplier, args.stop_after))

    resume_state = None
    if args.resume is not None:
        try:
            resume_state = load_checkpoint(args.resume)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read --resume checkpoint: {exc}",
                  file=sys.stderr)
            return 2

    multifidelity = (
        resume_state.get("format") == MULTIFIDELITY_FORMAT
        if resume_state is not None
        else args.algorithm in ("sh", "hyperband"))
    genetic = (
        resume_state.get("format") == CAMPAIGN_FORMAT
        and resume_state.get("algorithm", {}).get("algorithm")
        == "GeneticSearch"
        if resume_state is not None
        else args.algorithm == "ga")
    if mf_flags and not multifidelity:
        parser.error("--min-epochs/--eta/--brackets/--candidates/"
                     "--multiplier/--stop-after require --algorithm "
                     "sh or hyperband")

    if args.benchmark is not None:
        from repro.nas import BenchmarkEvaluator
        try:
            evaluator = BenchmarkEvaluator(args.benchmark)
        except (OSError, ValueError) as exc:
            print(f"error: --benchmark archive rejected: {exc}",
                  file=sys.stderr)
            return 2
        space = evaluator.space
        print(f"benchmark archive: {args.benchmark} "
              f"({evaluator.archive.n_records} records, "
              f"digest {evaluator.digest[:12]})")
    else:
        space = StackedLSTMSpace(n_layers=5, input_dim=5, output_dim=5,
                                 operations=default_operations())
        if genetic and not multifidelity:
            # The GA searches architecture and training protocol jointly.
            space = JointArchitectureSpace(space)
            evaluator = JointSurrogateEvaluator(
                space, ArchitecturePerformanceModel(space.arch_space,
                                                    seed=args.seed))
        else:
            evaluator = SurrogateEvaluator(
                space, ArchitecturePerformanceModel(space, seed=args.seed))
    if args.obs:
        obs.enable()

    if multifidelity:
        code = _multifidelity_search(args, evaluator, resume_state)
        if code == 0 and args.obs:
            print()
            print(obs.summary())
        return code

    checkpoint = None
    if args.checkpoint is not None:
        checkpoint = CheckpointPolicy(args.checkpoint,
                                      every_seconds=args.checkpoint_every)

    if args.resume is not None:
        print(f"resuming campaign from {args.resume}")
        algorithm, tracker = resume_search(
            resume_state, space, evaluator, workers=args.workers,
            walltime=args.walltime, checkpoint=checkpoint)
    else:
        if args.algorithm == "ae":
            algorithm = AgingEvolution(space, rng=args.seed)
        elif args.algorithm == "rs":
            algorithm = RandomSearch(space, rng=args.seed)
        elif args.algorithm == "ga":
            algorithm = GeneticSearch(space, rng=args.seed,
                                      population_size=min(20, space.size),
                                      tournament_size=4)
        else:
            alloc = rl_node_allocation(args.nodes, args.agents)
            algorithm = DistributedRL(
                space, rng=args.seed, n_agents=args.agents,
                workers_per_agent=alloc.workers_per_agent)
        partition = ThetaPartition(n_nodes=args.nodes,
                                   wall_seconds=args.wall)
        mode = "in-loop" if args.workers is None else (
            "serial backend" if args.workers == 0
            else f"{args.workers}-worker pool")
        print(f"search: {args.algorithm} on {args.nodes} simulated nodes, "
              f"{args.wall:g}s simulated wall, evaluation: {mode}")
        tracker = run_search(algorithm, evaluator, partition,
                             rng=args.seed, workers=args.workers,
                             walltime=args.walltime, checkpoint=checkpoint)
    if args.checkpoint is not None:
        print(f"checkpoint written to {args.checkpoint}")
    print(f"evaluations completed: {tracker.n_evaluations}")
    print(f"failures:              {tracker.n_failures}")
    print(f"node utilization:      {tracker.node_utilization():.3f}")
    print(f"best reward:           {algorithm.best_reward:.4f}")
    if algorithm.best_architecture is not None:
        print(f"best architecture:     {algorithm.best_architecture}")
    if args.obs:
        print()
        print(obs.summary())
    return 0


def _benchmark_space(name: str, seed: int):
    """Named search spaces of ``repro benchmark build``."""
    from repro.nas.space.ops import Operation, default_operations
    from repro.nas.space.search_space import StackedLSTMSpace
    if name == "small":
        # 512 architectures: exhaustively archivable in < 1 s, matched to
        # the test/smoke space so campaigns are 100% table hits.
        return StackedLSTMSpace(
            3, input_dim=3, output_dim=3,
            operations=(Operation("identity"), Operation("lstm", 4),
                        Operation("lstm", 8), Operation("lstm", 12)),
            max_skip_depth=3)
    return StackedLSTMSpace(n_layers=5, input_dim=5, output_dim=5,
                            operations=default_operations())


def benchmark_main(argv: list[str]) -> int:
    """``repro benchmark`` — build, inspect and sweep tabular NAS
    benchmark archives (docs/NAS_BENCHMARK.md)."""
    parser = argparse.ArgumentParser(
        prog="repro benchmark",
        description="Tabular NAS benchmark backend: precompute an archive "
                    "of architecture evaluations, inspect it, or run "
                    "multi-seed search sweeps against it.")
    sub = parser.add_subparsers(dest="action", required=True)

    build = sub.add_parser(
        "build", help="sweep a space through the performance model and "
                      "write an archive")
    build.add_argument("--space", choices=("small", "paper"),
                       default="small",
                       help="search space: 'small' (512 archs, exhaustive) "
                            "or 'paper' (8.6M archs, requires --samples)")
    build.add_argument("--samples", type=int, default=None, metavar="N",
                       help="archive N distinct uniform samples instead of "
                            "the whole space")
    build.add_argument("--seed", type=int, default=0, metavar="S",
                       help="seeds the performance model and any sampling "
                            "(default: 0)")
    build.add_argument("--epochs", type=int, default=20, metavar="E",
                       help="training budget of the recorded evaluations "
                            "(default: 20)")
    build.add_argument("--out", default="nas-benchmark.npz", metavar="PATH",
                       help="archive path (default: nas-benchmark.npz)")

    info = sub.add_parser("info", help="print an archive's header")
    info.add_argument("archive", help="archive path")

    sweep = sub.add_parser(
        "sweep", help="repeat a search campaign across seeds against an "
                      "archive and report best-reward statistics")
    sweep.add_argument("--archive", required=True, metavar="PATH",
                       help="archive to evaluate from")
    sweep.add_argument("--algorithm", choices=("rs", "ae", "rl"),
                       default="rs",
                       help="search algorithm per campaign (default: rs)")
    sweep.add_argument("--evaluations", type=int, default=200, metavar="N",
                       help="evaluation budget per campaign (default: 200)")
    sweep.add_argument("--seeds", type=int, default=10, metavar="K",
                       help="number of campaigns (default: 10)")
    sweep.add_argument("--base-seed", type=int, default=0, metavar="S",
                       dest="base_seed",
                       help="campaign i uses seed S+i (default: 0)")
    sweep.add_argument("--surrogate", choices=("ridge", "knn"),
                       default="ridge",
                       help="off-table fallback model (default: ridge)")
    sweep.add_argument("--report", default=None, metavar="PATH",
                       help="write the sweep report JSON here")
    sweep.add_argument("--obs", action="store_true",
                       help="enable observability and print its summary "
                            "(includes the nas/benchmark/* hit counters)")
    args = parser.parse_args(argv)

    if args.action == "build":
        from repro.nas import ArchitecturePerformanceModel, build_archive
        space = _benchmark_space(args.space, args.seed)
        model = ArchitecturePerformanceModel(space, seed=args.seed)
        n = args.samples if args.samples is not None else space.size
        print(f"building archive: {args.space} space "
              f"({space.size} architectures, recording {n})...")
        try:
            path = build_archive(space, model, args.out,
                                 n_samples=args.samples, rng=args.seed,
                                 epochs=args.epochs,
                                 metadata={"space_preset": args.space,
                                           "model_seed": args.seed})
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {path}")
        return 0

    if args.action == "info":
        from repro.nas import read_archive_header
        try:
            header = read_archive_header(args.archive)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        cfg = header["space"]
        print(f"archive:   {args.archive}")
        print(f"format:    {header['format']} v{header['version']}")
        print(f"records:   {header['n_records']} "
              f"({header['fidelity']} fidelity, "
              f"{header['epochs']} epochs)")
        print(f"space:     {cfg['n_layers']} layers, "
              f"{len(cfg['operations'])} ops, "
              f"skip depth {cfg['max_skip_depth']}")
        print(f"noise:     {header['noise']}")
        print(f"digest:    {header['digest']}")
        if header.get("metadata"):
            print(f"metadata:  {header['metadata']}")
        return 0

    from repro import obs
    from repro.nas import BenchmarkEvaluator, run_seed_sweep
    if args.evaluations < 1:
        parser.error(f"--evaluations must be >= 1, got {args.evaluations}")
    if args.seeds < 1:
        parser.error(f"--seeds must be >= 1, got {args.seeds}")
    if args.obs:
        obs.enable()
    try:
        evaluator = BenchmarkEvaluator(args.archive,
                                       surrogate=args.surrogate)
    except (OSError, ValueError) as exc:
        print(f"error: --archive rejected: {exc}", file=sys.stderr)
        return 2
    print(f"sweep: {args.seeds} x {args.algorithm} campaigns, "
          f"{args.evaluations} evaluations each, from {args.archive} "
          f"({evaluator.archive.n_records} records)")
    report = run_seed_sweep(evaluator, algorithm=args.algorithm,
                            n_evaluations=args.evaluations,
                            n_seeds=args.seeds, base_seed=args.base_seed)
    stats = report["best_reward"]
    hits = sum(c["table_hits"] for c in report["campaigns"])
    misses = sum(c["surrogate_misses"] for c in report["campaigns"])
    print(f"best reward: mean {stats['mean']:.4f} "
          f"+- {stats['std']:.4f} "
          f"(min {stats['min']:.4f}, max {stats['max']:.4f})")
    if hits or misses:
        print(f"table hits:  {hits}, surrogate misses: {misses}")
    print(f"total wall:  {report['total_wall_seconds']:.3f}s")
    if args.report is not None:
        import json as _json
        with open(args.report, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2)
        print(f"wrote {args.report}")
    if args.obs:
        print()
        print(obs.summary())
    return 0


def _train_demo_emulator(seed: int):
    """Tiny synthetic emulator for the serve demo / smoke paths: coarse
    grid, short archive, two epochs — trains in seconds."""
    from repro.baselines.manual_lstm import build_manual_lstm
    from repro.data import LatLonGrid, SSTDataset, WeeklyCalendar
    from repro.data.sst import SyntheticSST
    from repro.forecast import PODLSTMEmulator
    from repro.nn.training import Trainer

    dataset = SSTDataset(
        generator=SyntheticSST(grid=LatLonGrid(degrees=12.0), seed=seed),
        calendar=WeeklyCalendar(n_snapshots=140))
    snapshots = dataset.training_snapshots()
    emulator = PODLSTMEmulator(n_modes=4, window=6,
                               trainer=Trainer(epochs=2, batch_size=32))
    network = build_manual_lstm(16, 1, input_dim=4, output_dim=4, rng=seed)
    emulator.fit(snapshots, network=network, rng=seed)
    return emulator


def serve_main(argv: list[str]) -> int:
    """``repro serve`` — manage an emulator bundle registry and run the
    micro-batching forecast engine under a load test."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Inference serving: publish emulator bundles to a "
                    "model registry, promote versions, and drive the "
                    "micro-batching forecast engine with a closed-loop "
                    "load generator (see docs/SERVING.md).")
    parser.add_argument("--registry", default="serve-registry",
                        metavar="DIR",
                        help="model registry directory "
                             "(default: serve-registry)")
    parser.add_argument("--train-demo", default=None, metavar="NAME",
                        dest="train_demo",
                        help="train a tiny synthetic demo emulator, "
                             "publish it as NAME and promote it to active")
    parser.add_argument("--promote", default=None, metavar="NAME",
                        help="atomically point ACTIVE at an existing "
                             "version")
    parser.add_argument("--status", action="store_true",
                        help="list registry versions and the active "
                             "pointer")
    parser.add_argument("--loadgen", action="store_true",
                        help="serve the selected version through the "
                             "engine and run the closed-loop load "
                             "generator; prints the SLO report")
    parser.add_argument("--router", action="store_true",
                        help="serve through the sharded multi-process "
                             "router instead of one in-process engine; "
                             "with --loadgen the load runs against the "
                             "router socket, otherwise the router stays "
                             "up until Ctrl-C")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="with --router: engine worker processes "
                             "(default: 2)")
    parser.add_argument("--client-processes", action="store_true",
                        dest="client_processes",
                        help="with --router --loadgen: run each "
                             "closed-loop client as its own OS process")
    parser.add_argument("--version", default=None, metavar="NAME",
                        help="version to serve (default: the active one)")
    parser.add_argument("--clients", type=int, default=4, metavar="N",
                        help="concurrent closed-loop clients (default: 4)")
    parser.add_argument("--requests", type=int, default=50, metavar="N",
                        help="requests per client (default: 50)")
    parser.add_argument("--max-batch", type=int, default=8, metavar="N",
                        dest="max_batch",
                        help="most requests coalesced per forward pass "
                             "(default: 8)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="with --loadgen: write the SLO report JSON "
                             "here")
    parser.add_argument("--seed", type=int, default=0, metavar="S",
                        help="seed of the demo training data and the "
                             "load-generator request pool (default: 0)")
    parser.add_argument("--obs", action="store_true",
                        help="enable observability and print its summary "
                             "(includes the serve/* metrics)")
    args = parser.parse_args(argv)
    if args.clients < 1:
        parser.error(f"--clients must be >= 1, got {args.clients}")
    if args.requests < 1:
        parser.error(f"--requests must be >= 1, got {args.requests}")
    if args.max_batch < 1:
        parser.error(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.client_processes and not args.router:
        parser.error("--client-processes requires --router")

    import numpy as np

    from repro import obs
    from repro.serve import ForecastEngine, ModelRegistry, run_loadgen

    if args.obs:
        obs.enable()
    registry = ModelRegistry(args.registry)

    acted = False
    if args.train_demo is not None:
        print(f"training demo emulator (seed {args.seed})...")
        emulator = _train_demo_emulator(args.seed)
        path = registry.publish(args.train_demo, emulator,
                                metadata={"source": "serve --train-demo",
                                          "seed": args.seed},
                                activate=True)
        print(f"published and promoted {args.train_demo!r} -> {path}")
        acted = True
    if args.promote is not None:
        registry.promote(args.promote)
        print(f"promoted {args.promote!r} to active")
        acted = True

    if args.status or not (acted or args.loadgen or args.router):
        print(registry.report())
        acted = True

    if args.router:
        from repro.serve import WorkerConfig
        from repro.serve.loadgen import run_router_loadgen
        from repro.serve.router import ForecastRouter
        name, emulator = registry.load(args.version)
        if args.version is not None and name != registry.active():
            parser.error("--router serves the ACTIVE version; promote "
                         f"{args.version!r} first (--promote)")
        window = emulator.pipeline.window
        n_modes = emulator.pipeline.n_modes
        worker_config = WorkerConfig(max_batch=args.max_batch)
        with ForecastRouter(args.registry, n_workers=args.workers,
                            worker_config=worker_config) as router:
            host, port = router.address
            print(f"router serving version {name!r} on {host}:{port} "
                  f"with {args.workers} workers "
                  f"(max_batch={args.max_batch})")
            if args.loadgen:
                pool_size = max(1, min(args.clients * args.requests, 128))
                rng = np.random.default_rng(args.seed)
                windows = rng.uniform(-1.0, 1.0,
                                      size=(pool_size, window, n_modes))
                mode = "process" if args.client_processes else "thread"
                print(f"load: {args.clients} {mode} clients x "
                      f"{args.requests} requests")
                report = run_router_loadgen(
                    (host, port), windows, clients=args.clients,
                    requests_per_client=args.requests,
                    processes=args.client_processes)
                print(report.table())
                if args.report is not None:
                    report.dump(args.report)
                    print(f"wrote {args.report}")
            else:
                print("serving until Ctrl-C...")
                try:
                    while True:
                        time.sleep(1.0)
                except KeyboardInterrupt:
                    print("shutting down")
    elif args.loadgen:
        name, emulator = registry.load(args.version)
        window = emulator.pipeline.window
        n_modes = emulator.pipeline.n_modes
        # Request pool in scaled coefficient space; smaller than the run
        # so repeats exercise the response cache.
        pool_size = max(1, min(args.clients * args.requests, 128))
        rng = np.random.default_rng(args.seed)
        windows = rng.uniform(-1.0, 1.0, size=(pool_size, window, n_modes))
        print(f"serving version {name!r} (window={window}, "
              f"n_modes={n_modes}), load: {args.clients} clients x "
              f"{args.requests} requests, max_batch={args.max_batch}")
        with ForecastEngine(emulator, version=name,
                            max_batch=args.max_batch) as engine:
            report = run_loadgen(engine, windows, clients=args.clients,
                                 requests_per_client=args.requests)
        print(report.table())
        if args.report is not None:
            report.dump(args.report)
            print(f"wrote {args.report}")

    if args.obs:
        print()
        print(obs.summary())
    return 0


def pipeline_main(argv: list[str]) -> int:
    """``repro pipeline`` — run or inspect the continuous-learning
    pipeline (docs/PIPELINE.md)."""
    parser = argparse.ArgumentParser(
        prog="repro pipeline",
        description="Continuous learning: ingest weekly SST batches into "
                    "an incremental POD basis, retrain the emulator on a "
                    "rolling window and auto-promote improvements into a "
                    "model registry (see docs/PIPELINE.md).")
    sub = parser.add_subparsers(dest="action", required=True)

    run = sub.add_parser(
        "run", help="ingest batches (resumes from --state if it exists)")
    run.add_argument("--state", required=True, metavar="PATH",
                     help="durable pipeline state artifact (.npz); if it "
                          "already exists the pipeline RESUMES from it and "
                          "all feed/protocol flags below are ignored")
    run.add_argument("--registry", required=True, metavar="DIR",
                     help="model registry directory receiving promotions")
    run.add_argument("--max-batches", type=int, default=None, metavar="N",
                     dest="max_batches",
                     help="stop after N batches (default: drain a bounded "
                          "feed; required for an unbounded one)")
    run.add_argument("--obs", action="store_true",
                     help="enable observability and print its summary "
                          "(includes the pipeline/* metrics)")
    feed = run.add_argument_group("feed (fresh pipelines only)")
    feed.add_argument("--degrees", type=float, default=12.0,
                      help="grid resolution in degrees (default: 12)")
    feed.add_argument("--feed-seed", type=int, default=0, metavar="S",
                      dest="feed_seed",
                      help="snapshot stream seed (default: 0)")
    feed.add_argument("--batch-weeks", type=int, default=4, metavar="W",
                      dest="batch_weeks",
                      help="snapshots per arriving batch (default: 4)")
    feed.add_argument("--weeks", type=int, default=None, metavar="N",
                      help="stream length; omit for an unbounded feed "
                           "(then --max-batches is required)")
    feed.add_argument("--scenario", default="none",
                      choices=("none", "enso_shift", "trend_acceleration"),
                      help="climate drift scenario (default: none)")
    feed.add_argument("--onset", type=int, default=430, metavar="WEEK",
                      help="drift onset week (default: 430)")
    feed.add_argument("--ramp", type=int, default=104, metavar="WEEKS",
                      help="drift ramp-in length (default: 104)")
    feed.add_argument("--strength", type=float, default=1.0,
                      help="drift strength multiplier (default: 1.0)")
    proto = run.add_argument_group("retraining protocol (fresh only)")
    proto.add_argument("--n-modes", type=int, default=4, metavar="N",
                       dest="n_modes",
                       help="emulator POD rank (default: 4)")
    proto.add_argument("--pod-rank", type=int, default=8, metavar="R",
                       dest="pod_rank",
                       help="incremental factorization rank (default: 8)")
    proto.add_argument("--window", type=int, default=4, metavar="K",
                       help="forecast window length (default: 4)")
    proto.add_argument("--retrain-every", type=int, default=4, metavar="B",
                       dest="retrain_every",
                       help="batches between retrains (default: 4)")
    proto.add_argument("--train-weeks", type=int, default=96, metavar="W",
                       dest="train_weeks",
                       help="trailing training window (default: 96)")
    proto.add_argument("--val-weeks", type=int, default=24, metavar="W",
                       dest="val_weeks",
                       help="held-out validation window (default: 24)")
    proto.add_argument("--epochs", type=int, default=2,
                       help="training epochs per retrain (default: 2)")
    proto.add_argument("--batch-size", type=int, default=32, metavar="N",
                       dest="batch_size",
                       help="training batch size (default: 32)")
    proto.add_argument("--learning-rate", type=float, default=0.003,
                       metavar="LR", dest="learning_rate",
                       help="Adam learning rate (default: 0.003)")
    proto.add_argument("--units", type=int, default=16, metavar="N",
                       help="LSTM width of the retrained stack "
                            "(default: 16)")
    proto.add_argument("--seed", type=int, default=0, metavar="S",
                       help="retrain RNG stream root (default: 0)")
    proto.add_argument("--forgetting", type=float, default=1.0,
                       metavar="F",
                       help="incremental-POD forgetting factor in (0, 1] "
                            "(default: 1.0)")

    status = sub.add_parser(
        "status", help="print stream position, counters, the registry "
                       "listing and the promotion decision history")
    status.add_argument("--state", required=True, metavar="PATH",
                        help="pipeline state artifact to inspect")
    status.add_argument("--registry", required=True, metavar="DIR",
                        help="model registry the pipeline publishes to")
    status.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable status document "
                             "instead of the human-readable report")
    args = parser.parse_args(argv)

    from repro import obs
    from repro.pipeline import ContinuousPipeline, FeedConfig, \
        PipelineConfig
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry(args.registry)

    if args.action == "status":
        try:
            pipeline = ContinuousPipeline.resume(args.state, registry)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.as_json:
            import json as _json
            print(_json.dumps(pipeline.status(), indent=2))
        else:
            print(pipeline.report())
        return 0

    if getattr(args, "obs", False):
        obs.enable()
    try:
        feed_config = FeedConfig(
            degrees=args.degrees, seed=args.feed_seed,
            batch_weeks=args.batch_weeks, n_weeks=args.weeks,
            scenario=args.scenario, scenario_onset_week=args.onset,
            scenario_ramp_weeks=args.ramp,
            scenario_strength=args.strength)
        config = PipelineConfig(
            n_modes=args.n_modes, pod_rank=args.pod_rank,
            window=args.window, retrain_every=args.retrain_every,
            train_weeks=args.train_weeks, val_weeks=args.val_weeks,
            epochs=args.epochs, batch_size=args.batch_size,
            learning_rate=args.learning_rate, lstm_units=args.units,
            seed=args.seed, forgetting=args.forgetting)
        from pathlib import Path as _Path
        state_path = _Path(args.state)
        if state_path.exists() or state_path.with_suffix(".npz").exists():
            pipeline = ContinuousPipeline.resume(args.state, registry)
            print(f"resuming pipeline from {args.state} "
                  f"(batch {pipeline.state.next_batch})")
        else:
            pipeline = ContinuousPipeline(args.state, registry,
                                          feed_config, config)
            print(f"starting fresh pipeline at {args.state}")
        decisions = pipeline.run(max_batches=args.max_batches)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    state = pipeline.state
    print(f"ingested through batch {state.next_batch} "
          f"({state.snapshots_ingested} weeks, basis version "
          f"{state.pod.basis_version})")
    for d in decisions:
        outcome = "promoted" if d.promoted else "rejected"
        print(f"  retrain {d.retrain_index}: {d.version} "
              f"rmse {d.candidate_rmse:.6f} -> {outcome} ({d.reason})")
    active = registry.active()
    print(f"active version: {active if active is not None else '(none)'}")
    if getattr(args, "obs", False):
        print()
        print(obs.summary())
    return 0


#: Non-experiment subcommands: name -> entry point taking its own argv.
SUBCOMMANDS: dict[str, Callable[[list[str]], int]] = {
    "bench": bench_main,
    "search": search_main,
    "benchmark": benchmark_main,
    "serve": serve_main,
    "pipeline": pipeline_main,
}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the SC 2020 POD-LSTM "
                    "NAS paper on the synthetic archive.",
        epilog="Additional subcommands: 'repro bench' runs the core "
               "microbenchmark suite and writes BENCH_core.json; "
               "'repro search' runs one NAS search, optionally on a "
               "process pool via --workers; 'repro benchmark' builds and "
               "sweeps tabular NAS benchmark archives; 'repro serve' "
               "publishes emulator bundles and load-tests the "
               "micro-batching forecast engine; 'repro pipeline' runs "
               "the continuous-learning ingest/retrain/promote loop "
               "(see their --help).")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list"]
                        + sorted(SUBCOMMANDS),
                        help="experiment id, 'all', 'list', or a "
                             "subcommand: " + ", ".join(
                                 repr(s) for s in sorted(SUBCOMMANDS)))
    parser.add_argument("--preset", choices=("quick", "full"),
                        default="quick",
                        help="training/search budgets (default: quick)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"{name:8s} {description}")
        return 0

    targets = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in targets:
        _, runner = EXPERIMENTS[name]
        runner(args.preset)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
