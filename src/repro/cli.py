"""Command-line entry point: regenerate any paper table or figure, or
run the core microbenchmark suite.

Usage::

    python -m repro list
    python -m repro fig3 [--preset quick|full]
    python -m repro table3 --preset full
    python -m repro all --preset quick
    python -m repro bench --quick            # writes BENCH_core.json
    python -m repro bench --obs --jsonl run.obs.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

__all__ = ["main", "EXPERIMENTS"]


def _lazy(module: str) -> Callable[[str], object]:
    """Import the experiment module only when invoked (fast `list`)."""
    def run(preset: str) -> object:
        import importlib
        return importlib.import_module(module).main(preset)
    return run


EXPERIMENTS: dict[str, tuple[str, Callable[[str], object]]] = {
    "fig3": ("search trajectories AE/RL/RS, 128 nodes",
             _lazy("repro.experiments.fig3_trajectories")),
    "fig4": ("best AE-discovered architecture",
             _lazy("repro.experiments.fig4_best_architecture")),
    "fig5": ("post-training convergence + coefficient forecasts",
             _lazy("repro.experiments.fig5_posttraining")),
    "fig6": ("field forecast for the week of 2015-06-14",
             _lazy("repro.experiments.fig6_field_forecast")),
    "fig7": ("temporal probes in the Eastern Pacific",
             _lazy("repro.experiments.fig7_probes")),
    "fig8": ("unique high-performing architectures vs scale",
             _lazy("repro.experiments.fig8_scaling_architectures")),
    "fig9": ("10-seed variability of AE and RL",
             _lazy("repro.experiments.fig9_variability")),
    "table1": ("weekly Eastern-Pacific RMSE breakdown",
               _lazy("repro.experiments.table1_rmse")),
    "table2": ("R^2 of all forecasting methods",
               _lazy("repro.experiments.table2_baselines")),
    "table3": ("node utilization and evaluation counts",
               _lazy("repro.experiments.table3_scaling")),
}


def bench_main(argv: list[str]) -> int:
    """``repro bench`` — run the microbenchmark suite, write the perf
    trajectory JSON, optionally with observability enabled."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the core hot paths (recurrent cells, Trainer "
                    "epoch, POD basis, random-search slice) and write the "
                    "perf trajectory file (see docs/OBSERVABILITY.md).")
    parser.add_argument("--quick", action="store_true",
                        help="small workload sizes (single-core, < 2 min)")
    parser.add_argument("--reps", type=int, default=None, metavar="N",
                        help="timed repetitions per benchmark "
                             "(default: 3 quick, 5 full)")
    parser.add_argument("--out", default="BENCH_core.json", metavar="PATH",
                        help="output JSON path (default: BENCH_core.json)")
    parser.add_argument("--filter", default=None, metavar="SUBSTR",
                        help="only run benchmarks whose name contains this")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list benchmark names and exit")
    parser.add_argument("--obs", action="store_true",
                        help="enable the observability registry during the "
                             "run and print its summary table")
    parser.add_argument("--jsonl", default=None, metavar="PATH",
                        help="with --obs: export the registry as JSONL")
    args = parser.parse_args(argv)

    from repro import obs
    from repro.bench import default_suite, run_suite

    suite = default_suite(quick=args.quick)
    if args.filter is not None:
        suite = [b for b in suite if args.filter in b.name]
        if not suite:
            print(f"no benchmark matches --filter {args.filter!r}")
            return 2
    if args.list_only:
        for bench in suite:
            print(bench.name)
        return 0

    reps = args.reps if args.reps is not None else (3 if args.quick else 5)
    if reps < 1:
        parser.error(f"--reps must be >= 1, got {reps}")
    if args.obs:
        obs.enable()
    print(f"running {len(suite)} benchmarks "
          f"({'quick' if args.quick else 'full'} sizes, reps={reps})")
    run_suite(suite, reps=reps, out_path=args.out, progress=print)
    print(f"wrote {args.out}")
    if args.obs:
        print()
        print(obs.summary())
        if args.jsonl is not None:
            obs.export_jsonl(args.jsonl)
            print(f"wrote {args.jsonl}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        return bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the SC 2020 POD-LSTM "
                    "NAS paper on the synthetic archive.",
        epilog="Additional subcommand: 'repro bench' runs the core "
               "microbenchmark suite and writes BENCH_core.json "
               "(see 'repro bench --help').")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list",
                                                       "bench"],
                        help="experiment id, 'all', 'list', or 'bench'")
    parser.add_argument("--preset", choices=("quick", "full"),
                        default="quick",
                        help="training/search budgets (default: quick)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"{name:8s} {description}")
        return 0

    targets = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in targets:
        _, runner = EXPERIMENTS[name]
        runner(args.preset)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
