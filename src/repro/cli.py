"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro fig3 [--preset quick|full]
    python -m repro table3 --preset full
    python -m repro all --preset quick
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

__all__ = ["main", "EXPERIMENTS"]


def _lazy(module: str) -> Callable[[str], object]:
    """Import the experiment module only when invoked (fast `list`)."""
    def run(preset: str) -> object:
        import importlib
        return importlib.import_module(module).main(preset)
    return run


EXPERIMENTS: dict[str, tuple[str, Callable[[str], object]]] = {
    "fig3": ("search trajectories AE/RL/RS, 128 nodes",
             _lazy("repro.experiments.fig3_trajectories")),
    "fig4": ("best AE-discovered architecture",
             _lazy("repro.experiments.fig4_best_architecture")),
    "fig5": ("post-training convergence + coefficient forecasts",
             _lazy("repro.experiments.fig5_posttraining")),
    "fig6": ("field forecast for the week of 2015-06-14",
             _lazy("repro.experiments.fig6_field_forecast")),
    "fig7": ("temporal probes in the Eastern Pacific",
             _lazy("repro.experiments.fig7_probes")),
    "fig8": ("unique high-performing architectures vs scale",
             _lazy("repro.experiments.fig8_scaling_architectures")),
    "fig9": ("10-seed variability of AE and RL",
             _lazy("repro.experiments.fig9_variability")),
    "table1": ("weekly Eastern-Pacific RMSE breakdown",
               _lazy("repro.experiments.table1_rmse")),
    "table2": ("R^2 of all forecasting methods",
               _lazy("repro.experiments.table2_baselines")),
    "table3": ("node utilization and evaluation counts",
               _lazy("repro.experiments.table3_scaling")),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the SC 2020 POD-LSTM "
                    "NAS paper on the synthetic archive.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list"],
                        help="experiment id, 'all', or 'list'")
    parser.add_argument("--preset", choices=("quick", "full"),
                        default="quick",
                        help="training/search budgets (default: quick)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"{name:8s} {description}")
        return 0

    targets = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in targets:
        _, runner = EXPERIMENTS[name]
        runner(args.preset)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
