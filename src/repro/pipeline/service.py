"""The continuous-learning service: ingest → fold → retrain → promote.

``ContinuousPipeline`` drives one loop over a replayable
:class:`~repro.pipeline.feed.SnapshotFeed`:

1. **Ingest** the next weekly batch and fold it into the streaming
   :class:`~repro.pod.IncrementalPOD` basis.
2. Every ``retrain_every`` batches (once enough weeks have arrived),
   **retrain** a :class:`~repro.forecast.pod_lstm.PODLSTMEmulator` on
   the trailing training window, projected through the *current*
   incremental basis.
3. **Gate** the candidate on a held-out validation window (lead-1
   physical-field RMSE) against the registry's ACTIVE incumbent, and
   **publish + promote** only on improvement — otherwise record a typed
   rejection (:class:`~repro.pipeline.state.PromotionDecision`) and
   leave ACTIVE untouched.
4. **Persist** the complete pipeline state atomically after every batch
   (:mod:`repro.pipeline.state`).

Determinism contract (pinned in tests/test_pipeline.py): a pipeline
killed after any batch and resumed from its state file reproduces the
*identical* promotion sequence — same version names, same
promote/reject decisions, same RMSE values bit for bit, same final
ACTIVE bundle content — as an uninterrupted run, under every drift
scenario. The three ingredients are the replayable feed, the bitwise
POD state round-trip, and per-retrain RNG streams seeded by
``SeedSequence((seed, 0x504C, retrain_index))`` (independent of how
many times the process restarted).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.baselines.manual_lstm import build_manual_lstm
from repro.forecast.pod_lstm import PODLSTMEmulator
from repro.nn.metrics import rmse
from repro.nn.training import Trainer
from repro.pipeline.feed import FeedConfig, SnapshotFeed
from repro.pipeline.state import (
    PipelineState,
    PromotionDecision,
    load_state,
    save_state,
)
from repro.pod.incremental import IncrementalPOD
from repro.serve.registry import ModelRegistry

__all__ = ["PipelineConfig", "ContinuousPipeline", "field_rmse",
           "emulator_digest", "validate_pipeline_status"]

#: RNG stream tag for retrain seeding ("PL").
_RETRAIN_TAG = 0x504C

STATUS_FORMAT = "repro-pipeline-status"
STATUS_VERSION = 1


@dataclass(frozen=True)
class PipelineConfig:
    """Retraining protocol of one continuous pipeline (JSON-serializable).

    ``pod_rank`` is the rank the incremental factorization retains
    between updates; keep it comfortably above ``n_modes`` (the emulator
    rank) so inter-update truncation does not eat the modes the emulator
    uses. ``train_weeks``/``val_weeks`` are trailing windows measured
    from the current stream position; retraining waits until the stream
    is at least ``train_weeks + val_weeks`` deep. ``val_weeks`` must
    cover at least two forecast windows (``2 * window``).
    """

    n_modes: int = 4            # emulator POD rank
    pod_rank: int = 8           # incremental factorization rank
    window: int = 4             # K (input/forecast length)
    retrain_every: int = 4      # batches between retrains
    train_weeks: int = 96       # trailing training window
    val_weeks: int = 24         # held-out validation window
    epochs: int = 2
    batch_size: int = 32
    learning_rate: float = 0.003
    lstm_units: int = 16
    seed: int = 0               # retrain RNG stream root
    forgetting: float = 1.0     # IncrementalPOD forgetting factor

    def __post_init__(self) -> None:
        if self.pod_rank < self.n_modes:
            raise ValueError(f"pod_rank {self.pod_rank} must be >= "
                             f"n_modes {self.n_modes}")
        if self.retrain_every < 1:
            raise ValueError(
                f"retrain_every must be >= 1, got {self.retrain_every}")
        if self.val_weeks < 2 * self.window:
            raise ValueError(
                f"val_weeks {self.val_weeks} must cover two forecast "
                f"windows (>= {2 * self.window})")
        if self.train_weeks < 2 * self.window + 1:
            raise ValueError(
                f"train_weeks {self.train_weeks} too short to window "
                f"(need >= {2 * self.window + 1})")

    def as_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "PipelineConfig":
        return cls(n_modes=int(data["n_modes"]),
                   pod_rank=int(data["pod_rank"]),
                   window=int(data["window"]),
                   retrain_every=int(data["retrain_every"]),
                   train_weeks=int(data["train_weeks"]),
                   val_weeks=int(data["val_weeks"]),
                   epochs=int(data["epochs"]),
                   batch_size=int(data["batch_size"]),
                   learning_rate=float(data["learning_rate"]),
                   lstm_units=int(data["lstm_units"]),
                   seed=int(data["seed"]),
                   forgetting=float(data["forgetting"]))


# ----------------------------------------------------------------------
# Evaluation helpers
# ----------------------------------------------------------------------
def field_rmse(emulator: PODLSTMEmulator,
               snapshots: np.ndarray) -> float:
    """Lead-1 physical-field RMSE of ``emulator`` over a snapshot series.

    Computed in field space (not coefficient space) so candidates
    trained on *different* POD bases are comparable — the promotion
    gate's whole point.
    """
    times, fields = emulator.forecast_fields(snapshots, horizon=1)
    return rmse(snapshots[:, times], fields)


def emulator_digest(emulator: PODLSTMEmulator) -> str:
    """SHA-256 over an emulator's complete fitted content.

    Hashes the pipeline's fitted state (config JSON + arrays, sorted by
    name) and the network weights — *content*, not serialized file
    bytes, because ``np.savez`` embeds archive timestamps that differ
    between otherwise identical bundles. Two emulators with equal
    digests forecast identically.
    """
    config, arrays = emulator.pipeline.fitted_state()
    digest = hashlib.sha256()
    digest.update(json.dumps(config, sort_keys=True).encode("utf-8"))
    for name in sorted(arrays):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(arrays[name]).tobytes())
    network = emulator.network
    if network is not None:
        for weight in network.get_weights():
            digest.update(np.ascontiguousarray(weight).tobytes())
    return digest.hexdigest()


def validate_pipeline_status(data: dict) -> dict:
    """Schema-check a :meth:`ContinuousPipeline.status` document.

    Raises ``ValueError`` on malformed documents; returns ``data``
    otherwise. The CI pipeline-smoke job runs every ``pipeline status
    --json`` through this.
    """
    if data.get("format") != STATUS_FORMAT:
        raise ValueError(f"not a pipeline status document "
                         f"(format {data.get('format')!r})")
    if data.get("version") != STATUS_VERSION:
        raise ValueError(
            f"unsupported status version {data.get('version')!r}")
    for key in ("feed", "config", "stream", "counters", "basis",
                "active", "decisions"):
        if key not in data:
            raise ValueError(f"status document missing key {key!r}")
    stream = data["stream"]
    for key in ("next_batch", "weeks_ingested"):
        if not isinstance(stream.get(key), int) or stream[key] < 0:
            raise ValueError(f"stream.{key} must be a non-negative int, "
                             f"got {stream.get(key)!r}")
    counters = data["counters"]
    for key in ("basis_updates", "retrains", "promotions", "rejections"):
        if not isinstance(counters.get(key), int) or counters[key] < 0:
            raise ValueError(f"counters.{key} must be a non-negative int, "
                             f"got {counters.get(key)!r}")
    if counters["retrains"] != (counters["promotions"]
                                + counters["rejections"]):
        raise ValueError("retrains must equal promotions + rejections")
    if not isinstance(data["decisions"], list):
        raise ValueError("decisions must be a list")
    for entry in data["decisions"]:
        PromotionDecision.from_json(entry)  # raises on malformed entries
    return data


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class ContinuousPipeline:
    """One continuous-learning loop bound to a state file and a registry.

    Parameters
    ----------
    state_path:
        Where the durable state artifact lives (``.npz`` suffix
        normalized). If it exists, the pipeline **resumes** from it —
        and refuses configs that contradict the persisted ones, since a
        changed stream or protocol would silently break the replay
        contract.
    registry:
        The :class:`~repro.serve.registry.ModelRegistry` receiving
        published candidates and promotions.
    feed_config / config:
        Stream identity and retraining protocol for a *fresh* pipeline;
        both default to their dataclass defaults.
    """

    def __init__(self, state_path, registry: ModelRegistry,
                 feed_config: FeedConfig | None = None,
                 config: PipelineConfig | None = None) -> None:
        self.state_path = Path(state_path)
        self.registry = registry
        feed_config = feed_config or FeedConfig()
        config = config or PipelineConfig()
        existing = self._existing_state_path()
        if existing is not None:
            state = load_state(existing)
            persisted_feed = FeedConfig.from_json(state.feed_config)
            persisted_config = PipelineConfig.from_json(
                state.pipeline_config)
            if persisted_feed != feed_config:
                raise ValueError(
                    f"state file {existing} was written for feed "
                    f"{persisted_feed}, not {feed_config}; refusing to "
                    f"resume a different stream")
            if persisted_config != config:
                raise ValueError(
                    f"state file {existing} was written for pipeline "
                    f"config {persisted_config}, not {config}; refusing "
                    f"to resume a different protocol")
            self.state = state
        else:
            self.state = PipelineState(
                feed_config=feed_config.as_json(),
                pipeline_config=config.as_json(),
                next_batch=0, snapshots_ingested=0, basis_updates=0,
                retrains=0, promotions=0, rejections=0, decisions=[],
                pod=IncrementalPOD(config.pod_rank,
                                   forgetting=config.forgetting))
        self.feed = SnapshotFeed(feed_config)
        self.config = config

    @classmethod
    def resume(cls, state_path, registry: ModelRegistry
               ) -> "ContinuousPipeline":
        """Reattach to an existing state file, taking both the feed and
        the pipeline config from it (the ``repro pipeline`` CLI path)."""
        path = Path(state_path)
        existing = path if path.exists() else path.with_suffix(".npz")
        if not existing.exists():
            raise FileNotFoundError(
                f"no pipeline state at {state_path} (run the pipeline "
                f"first)")
        state = load_state(existing)
        return cls(path, registry,
                   feed_config=FeedConfig.from_json(state.feed_config),
                   config=PipelineConfig.from_json(state.pipeline_config))

    def _existing_state_path(self) -> Path | None:
        for candidate in (self.state_path,
                          self.state_path.with_suffix(".npz")):
            if candidate.exists():
                return candidate
        return None

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run(self, max_batches: int | None = None) -> list[PromotionDecision]:
        """Ingest up to ``max_batches`` batches (all remaining when
        ``None``; the feed must then be bounded). Returns the decisions
        made *during this call*.

        State is persisted atomically after every batch, so killing the
        process at any point loses at most the batch in flight — and
        replaying that batch after restart is bit-identical.
        """
        if max_batches is None and self.feed.config.n_weeks is None:
            raise ValueError(
                "max_batches is required on an unbounded feed")
        made: list[PromotionDecision] = []
        processed = 0
        with obs.scope("pipeline/run"):
            while max_batches is None or processed < max_batches:
                batch = self.state.next_batch
                indices, block = self.feed.batch(batch)
                if indices.size == 0:
                    break
                self._ingest(block)
                decision = None
                if self._should_retrain(batch):
                    decision = self._retrain(batch)
                    self.state.decisions.append(decision)
                    made.append(decision)
                self.state.next_batch = batch + 1
                save_state(self.state_path, self.state)
                processed += 1
        return made

    def _ingest(self, block: np.ndarray) -> None:
        with obs.scope("pipeline/ingest"):
            self.state.pod.partial_fit(block)
        self.state.snapshots_ingested += block.shape[1]
        self.state.basis_updates += 1
        obs.counter_add("pipeline/snapshots_ingested", block.shape[1])
        obs.counter_add("pipeline/basis_updates")

    def _should_retrain(self, batch: int) -> bool:
        cfg = self.config
        if (batch + 1) % cfg.retrain_every != 0:
            return False
        return (self.state.snapshots_ingested
                >= cfg.train_weeks + cfg.val_weeks)

    # ------------------------------------------------------------------
    # Retrain + promotion gate
    # ------------------------------------------------------------------
    def _retrain(self, batch: int) -> PromotionDecision:
        cfg = self.config
        retrain_index = self.state.retrains
        week_end = self.state.snapshots_ingested
        val_start = week_end - cfg.val_weeks
        train_start = val_start - cfg.train_weeks
        train_snaps = self.feed.snapshots(
            np.arange(train_start, val_start))
        val_snaps = self.feed.snapshots(np.arange(val_start, week_end))

        # One RNG stream per retrain index: resume-independent.
        rng = np.random.default_rng(
            np.random.SeedSequence((cfg.seed, _RETRAIN_TAG, retrain_index)))
        basis = self.state.pod.basis(cfg.n_modes)
        emulator = PODLSTMEmulator(
            n_modes=cfg.n_modes, window=cfg.window,
            trainer=Trainer(epochs=cfg.epochs, batch_size=cfg.batch_size,
                            learning_rate=cfg.learning_rate))
        network = build_manual_lstm(cfg.lstm_units, 1,
                                    input_dim=cfg.n_modes,
                                    output_dim=cfg.n_modes, rng=rng)
        with obs.scope("pipeline/retrain"):
            emulator.fit(train_snaps, network=network, basis=basis, rng=rng)
        self.state.retrains += 1
        obs.counter_add("pipeline/retrains")

        candidate_rmse = field_rmse(emulator, val_snaps)
        obs.gauge_set("pipeline/candidate_rmse", candidate_rmse)
        active_name = self.registry.active()
        active_rmse = None
        if active_name is not None:
            _, incumbent = self.registry.load(active_name)
            active_rmse = field_rmse(incumbent, val_snaps)
            obs.gauge_set("pipeline/active_rmse", active_rmse)

        version = f"r{retrain_index:04d}"
        if active_rmse is None:
            promoted, reason = True, "no-active"
        elif candidate_rmse < active_rmse:
            promoted, reason = True, "improved"
        else:
            promoted, reason = False, "not-improved"

        if promoted:
            self.registry.publish(
                version, emulator,
                metadata={"pipeline": {
                    "retrain_index": retrain_index,
                    "batch_index": batch,
                    "week_end": week_end,
                    "basis_version": self.state.pod.basis_version,
                    "candidate_rmse": candidate_rmse,
                    "active_rmse": active_rmse,
                }},
                activate=True,
                note=f"pipeline retrain {retrain_index} ({reason})")
            self.state.promotions += 1
            obs.counter_add("pipeline/promotions")
        else:
            self.state.rejections += 1
            obs.counter_add("pipeline/rejections")

        return PromotionDecision(
            retrain_index=retrain_index, batch_index=batch,
            week_end=week_end, version=version,
            candidate_rmse=candidate_rmse, active_rmse=active_rmse,
            promoted=promoted, reason=reason)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """A JSON-serializable status document (see
        :func:`validate_pipeline_status` for the schema)."""
        state = self.state
        return {
            "format": STATUS_FORMAT,
            "version": STATUS_VERSION,
            "feed": dict(state.feed_config),
            "config": dict(state.pipeline_config),
            "stream": {
                "next_batch": state.next_batch,
                "weeks_ingested": state.snapshots_ingested,
            },
            "counters": {
                "basis_updates": state.basis_updates,
                "retrains": state.retrains,
                "promotions": state.promotions,
                "rejections": state.rejections,
            },
            "basis": {
                "rank": state.pod.n_modes,
                "version": state.pod.basis_version,
                "n_seen": state.pod.n_seen,
            },
            "active": self.registry.active(),
            "decisions": [d.as_json() for d in state.decisions],
        }

    def report(self) -> str:
        """Human-readable status: stream position, counters, the shared
        registry listing (:meth:`~repro.serve.registry.ModelRegistry.report`)
        and the decision history."""
        state = self.state
        lines = [
            f"pipeline {self.state_path}",
            f"  stream: batch {state.next_batch}, "
            f"{state.snapshots_ingested} weeks ingested",
            f"  basis: rank {state.pod.n_modes}, "
            f"version {state.pod.basis_version}",
            f"  retrains: {state.retrains} "
            f"({state.promotions} promoted, {state.rejections} rejected)",
            self.registry.report(),
        ]
        for d in state.decisions:
            outcome = "promote" if d.promoted else "reject"
            active = "-" if d.active_rmse is None \
                else f"{d.active_rmse:.6f}"
            lines.append(
                f"  [{d.retrain_index}] week {d.week_end}: {d.version} "
                f"rmse {d.candidate_rmse:.6f} vs active {active} "
                f"-> {outcome} ({d.reason})")
        return "\n".join(lines)
