"""repro.pipeline — the continuous-learning service (docs/PIPELINE.md).

Streaming SST ingestion → incremental POD → rolling retrain →
validation-gated auto-promotion into the model registry, with durable,
deterministically-resumable state.
"""

from repro.pipeline.feed import FeedConfig, SnapshotFeed
from repro.pipeline.service import (
    ContinuousPipeline,
    PipelineConfig,
    emulator_digest,
    field_rmse,
    validate_pipeline_status,
)
from repro.pipeline.state import (
    STATE_FORMAT,
    STATE_VERSION,
    PipelineState,
    PromotionDecision,
    load_state,
    save_state,
)

__all__ = [
    "FeedConfig", "SnapshotFeed",
    "PipelineConfig", "ContinuousPipeline",
    "PipelineState", "PromotionDecision", "save_state", "load_state",
    "STATE_FORMAT", "STATE_VERSION",
    "field_rmse", "emulator_digest", "validate_pipeline_status",
]
