"""Replayable weekly snapshot feed over the synthetic SST archive.

A :class:`SnapshotFeed` models snapshots "arriving" from an observing
system: the stream is chunked into fixed-size weekly batches, addressed
by batch index. Because :class:`~repro.data.sst.SyntheticSST` is
random-access bit-reproducible, the feed is **replayable** — batch ``b``
has identical bytes whether it is read during live ingestion, re-read
after a crash, or regenerated months later from the same
:class:`FeedConfig`. That property is what lets the continuous pipeline
(:mod:`repro.pipeline.service`) persist only a cursor (plus the POD
factorization) instead of raw data, and still resume deterministically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterator

import numpy as np

from repro.data.grid import LatLonGrid
from repro.data.sst import DRIFT_SCENARIOS, SSTConfig, SyntheticSST

__all__ = ["FeedConfig", "SnapshotFeed"]


@dataclass(frozen=True)
class FeedConfig:
    """Complete identity of a snapshot stream (JSON-serializable).

    Two feeds built from equal configs produce bitwise-identical batches
    for every index — the config is therefore pinned inside the durable
    pipeline state, and resume refuses a mismatching stream.
    """

    degrees: float = 12.0        # grid resolution (must divide 180)
    seed: int = 0                # generator seed
    batch_weeks: int = 4         # snapshots per arrival
    n_weeks: int | None = None   # stream end (exclusive); None = unbounded
    scenario: str = "none"       # drift scenario (repro.data.sst)
    scenario_onset_week: int = 430
    scenario_ramp_weeks: int = 104
    scenario_strength: float = 1.0

    def __post_init__(self) -> None:
        if self.batch_weeks < 1:
            raise ValueError(
                f"batch_weeks must be >= 1, got {self.batch_weeks}")
        if self.n_weeks is not None and self.n_weeks < 1:
            raise ValueError(f"n_weeks must be >= 1, got {self.n_weeks}")
        if self.scenario not in DRIFT_SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}; "
                             f"expected one of {DRIFT_SCENARIOS}")

    def as_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "FeedConfig":
        n_weeks = data["n_weeks"]
        return cls(degrees=float(data["degrees"]), seed=int(data["seed"]),
                   batch_weeks=int(data["batch_weeks"]),
                   n_weeks=None if n_weeks is None else int(n_weeks),
                   scenario=str(data["scenario"]),
                   scenario_onset_week=int(data["scenario_onset_week"]),
                   scenario_ramp_weeks=int(data["scenario_ramp_weeks"]),
                   scenario_strength=float(data["scenario_strength"]))


class SnapshotFeed:
    """Batched random access over one configured snapshot stream."""

    def __init__(self, config: FeedConfig) -> None:
        self.config = config
        sst_config = SSTConfig(
            scenario=config.scenario,
            scenario_onset_week=config.scenario_onset_week,
            scenario_ramp_weeks=config.scenario_ramp_weeks,
            scenario_strength=config.scenario_strength)
        self.generator = SyntheticSST(
            grid=LatLonGrid(degrees=config.degrees), seed=config.seed,
            config=sst_config)

    # ------------------------------------------------------------------
    @property
    def n_batches(self) -> int | None:
        """Total batches in the stream (``None`` when unbounded). The
        final batch may be short."""
        if self.config.n_weeks is None:
            return None
        return -(-self.config.n_weeks // self.config.batch_weeks)

    def batch_indices(self, batch: int) -> np.ndarray:
        """Week indices of batch ``batch`` (empty past the stream end)."""
        if batch < 0:
            raise ValueError(f"batch must be >= 0, got {batch}")
        start = batch * self.config.batch_weeks
        stop = start + self.config.batch_weeks
        if self.config.n_weeks is not None:
            stop = min(stop, self.config.n_weeks)
        return np.arange(start, max(start, stop), dtype=np.int64)

    def batch(self, batch: int) -> tuple[np.ndarray, np.ndarray]:
        """``(week_indices, snapshots)`` of one batch; snapshots are
        ocean-only columns of shape ``(N_h, len(week_indices))``."""
        idx = self.batch_indices(batch)
        if idx.size == 0:
            return idx, np.empty((self.generator.n_ocean, 0))
        return idx, self.generator.snapshots(idx)

    def batches(self, start: int = 0) -> Iterator[tuple[int, np.ndarray,
                                                        np.ndarray]]:
        """Yield ``(batch_index, week_indices, snapshots)`` from batch
        ``start`` to the stream end (forever when unbounded)."""
        b = start
        while True:
            idx, block = self.batch(b)
            if idx.size == 0:
                return
            yield b, idx, block
            b += 1

    def snapshots(self, indices) -> np.ndarray:
        """Arbitrary week columns (training/validation window assembly)."""
        return self.generator.snapshots(indices)
