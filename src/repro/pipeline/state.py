"""Durable pipeline state: one atomic ``.npz`` artifact per pipeline.

The continuous-learning service persists its **complete** progress after
every ingested batch through the shared artifact layer
(:mod:`repro.serve.artifact`): the stream cursor, the counters, every
typed promotion decision made so far, and the exact
:class:`~repro.pod.IncrementalPOD` factorization (float64, bitwise).
Because the snapshot feed is replayable and the POD state round-trips
exactly, a pipeline killed at any batch boundary and restarted from this
file reproduces the identical promotion sequence an uninterrupted run
produces (pinned in tests/test_pipeline.py).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.pod.incremental import IncrementalPOD
from repro.serve.artifact import load_npz_artifact, write_npz_artifact

__all__ = ["STATE_FORMAT", "STATE_VERSION", "PromotionDecision",
           "PipelineState", "save_state", "load_state"]

STATE_FORMAT = "repro-pipeline-state"
STATE_VERSION = 1

_HEADER_KEY = "__pipeline_state__"

#: Reasons a retrain can conclude with.
DECISION_REASONS = ("no-active", "improved", "not-improved")


@dataclass(frozen=True)
class PromotionDecision:
    """The typed record of one retrain's promote-or-reject outcome.

    The pipeline's determinism contract is defined over the *sequence* of
    these records (plus the registry contents), never over wall-clock
    audit bytes.
    """

    retrain_index: int          # 0-based retrain counter
    batch_index: int            # feed batch that triggered the retrain
    week_end: int               # stream position (exclusive) at retrain
    version: str                # candidate version name (r%04d)
    candidate_rmse: float       # lead-1 field RMSE on the validation window
    active_rmse: float | None   # incumbent's RMSE (None if no ACTIVE)
    promoted: bool
    reason: str                 # one of DECISION_REASONS

    def __post_init__(self) -> None:
        if self.reason not in DECISION_REASONS:
            raise ValueError(f"unknown decision reason {self.reason!r}; "
                             f"expected one of {DECISION_REASONS}")

    def as_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "PromotionDecision":
        active = data["active_rmse"]
        return cls(retrain_index=int(data["retrain_index"]),
                   batch_index=int(data["batch_index"]),
                   week_end=int(data["week_end"]),
                   version=str(data["version"]),
                   candidate_rmse=float(data["candidate_rmse"]),
                   active_rmse=None if active is None else float(active),
                   promoted=bool(data["promoted"]),
                   reason=str(data["reason"]))


@dataclass
class PipelineState:
    """Everything a restarted pipeline needs to continue bit-identically."""

    feed_config: dict           # FeedConfig.as_json()
    pipeline_config: dict       # PipelineConfig.as_json()
    next_batch: int             # first batch NOT yet ingested
    snapshots_ingested: int
    basis_updates: int
    retrains: int
    promotions: int
    rejections: int
    decisions: list[PromotionDecision]
    pod: IncrementalPOD


def save_state(path, state: PipelineState):
    """Atomically persist ``state`` (tmp + fsync + rename, via
    :func:`repro.serve.artifact.write_npz_artifact`). Returns the path
    the artifact lives at."""
    pod_config, pod_arrays = state.pod.state()
    header = {
        "format": STATE_FORMAT,
        "version": STATE_VERSION,
        "feed_config": state.feed_config,
        "pipeline_config": state.pipeline_config,
        "next_batch": state.next_batch,
        "snapshots_ingested": state.snapshots_ingested,
        "basis_updates": state.basis_updates,
        "retrains": state.retrains,
        "promotions": state.promotions,
        "rejections": state.rejections,
        "decisions": [d.as_json() for d in state.decisions],
        "pod": pod_config,
    }
    return write_npz_artifact(path, header, pod_arrays, key=_HEADER_KEY)


def load_state(path) -> PipelineState:
    """Load a :func:`save_state` artifact back, POD arrays bitwise."""
    header, arrays = load_npz_artifact(
        path, key=_HEADER_KEY, expected_format=STATE_FORMAT,
        supported_versions=(STATE_VERSION,),
        describe="a pipeline state artifact")
    return PipelineState(
        feed_config=header["feed_config"],
        pipeline_config=header["pipeline_config"],
        next_batch=int(header["next_batch"]),
        snapshots_ingested=int(header["snapshots_ingested"]),
        basis_updates=int(header["basis_updates"]),
        retrains=int(header["retrains"]),
        promotions=int(header["promotions"]),
        rejections=int(header["rejections"]),
        decisions=[PromotionDecision.from_json(d)
                   for d in header["decisions"]],
        pod=IncrementalPOD.from_state(header["pod"], arrays))
