"""Shared, lazily built experiment state.

Several experiments need the same expensive artifacts — the dataset, the
test snapshot matrix, a searched best architecture, the post-trained
NAS-POD-LSTM emulator, and the comparator models. ``ReproductionContext``
builds each once on first use and caches it; ``get_context`` memoizes
contexts per preset so a pytest session shares them across benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.comparators import SimulatedCESM, SimulatedHYCOM
from repro.data import SSTDataset, load_sst_dataset
from repro.forecast import PODLSTMEmulator
from repro.forecast.posttraining import posttrain_architecture
from repro.nas import (
    AgingEvolution,
    ArchitecturePerformanceModel,
    StackedLSTMSpace,
    SurrogateEvaluator,
)
__all__ = ["ExperimentPreset", "ReproductionContext", "get_context"]


@dataclass(frozen=True)
class ExperimentPreset:
    """Knobs that trade fidelity for wall time.

    ``quick`` keeps the full data geometry but shrinks training budgets;
    ``full`` matches the paper-equivalent budgets (see EXPERIMENTS.md for
    the epoch-budget equivalence argument).
    """

    name: str
    degrees: float = 4.0
    seed: int = 0
    posttrain_epochs: int = 250
    search_evaluations: int = 3000
    forest_estimators: int = 100
    boosting_rounds: int = 100
    wall_seconds: float = 3 * 3600.0


QUICK = ExperimentPreset(name="quick", posttrain_epochs=60,
                         search_evaluations=1200, forest_estimators=20,
                         boosting_rounds=40, wall_seconds=1800.0)
FULL = ExperimentPreset(name="full")

_PRESETS = {"quick": QUICK, "full": FULL}


class ReproductionContext:
    """Lazily built shared artifacts for the experiment suite."""

    def __init__(self, preset: ExperimentPreset) -> None:
        self.preset = preset
        self._dataset: SSTDataset | None = None
        self._test_snapshots: np.ndarray | None = None
        self._space: StackedLSTMSpace | None = None
        self._perf_model: ArchitecturePerformanceModel | None = None
        self._best_architecture: tuple | None = None
        self._emulator: PODLSTMEmulator | None = None
        self._cesm: SimulatedCESM | None = None
        self._hycom: SimulatedHYCOM | None = None

    # ------------------------------------------------------------------
    @property
    def dataset(self) -> SSTDataset:
        if self._dataset is None:
            self._dataset = load_sst_dataset(degrees=self.preset.degrees,
                                             seed=self.preset.seed)
        return self._dataset

    def test_snapshots(self) -> np.ndarray:
        """Full test-period snapshot matrix ``(N_h, n_test)``."""
        if self._test_snapshots is None:
            blocks = [block for _, block in
                      self.dataset.test_snapshot_chunks(256)]
            self._test_snapshots = np.concatenate(blocks, axis=1)
        return self._test_snapshots

    @property
    def space(self) -> StackedLSTMSpace:
        if self._space is None:
            self._space = StackedLSTMSpace()
        return self._space

    @property
    def performance_model(self) -> ArchitecturePerformanceModel:
        if self._perf_model is None:
            self._perf_model = ArchitecturePerformanceModel(
                self.space, seed=self.preset.seed)
        return self._perf_model

    # ------------------------------------------------------------------
    def best_architecture(self) -> tuple:
        """Best architecture from a serial aging-evolution search over the
        surrogate (the scale experiments exercise the full cluster; here
        we only need a good architecture for the science results)."""
        if self._best_architecture is None:
            rng = np.random.default_rng(
                np.random.SeedSequence((self.preset.seed, 0xAE)))
            search = AgingEvolution(self.space, rng=rng)
            evaluator = SurrogateEvaluator(self.space, self.performance_model)
            eval_rng = np.random.default_rng(
                np.random.SeedSequence((self.preset.seed, 0xEE)))
            for _ in range(self.preset.search_evaluations):
                arch = search.ask()
                search.tell(arch, evaluator.evaluate(arch, eval_rng).reward)
            self._best_architecture = search.best_architecture
        return self._best_architecture

    def emulator(self) -> PODLSTMEmulator:
        """The post-trained NAS-POD-LSTM (paper Sec. IV-B)."""
        if self._emulator is None:
            self._emulator = posttrain_architecture(
                self.space, self.best_architecture(),
                self.dataset.training_snapshots(),
                epochs=self.preset.posttrain_epochs,
                rng=self.preset.seed)
        return self._emulator

    # ------------------------------------------------------------------
    @property
    def cesm(self) -> SimulatedCESM:
        if self._cesm is None:
            self._cesm = SimulatedCESM(self.dataset.generator,
                                       member_seed=self.preset.seed + 1)
        return self._cesm

    @property
    def hycom(self) -> SimulatedHYCOM:
        if self._hycom is None:
            self._hycom = SimulatedHYCOM(self.dataset.generator)
        return self._hycom


@lru_cache(maxsize=4)
def get_context(preset: str = "quick") -> ReproductionContext:
    """Memoized context per preset name ('quick' or 'full')."""
    try:
        return ReproductionContext(_PRESETS[preset])
    except KeyError:
        raise ValueError(
            f"unknown preset {preset!r}; options: {sorted(_PRESETS)}"
        ) from None
