"""Figure 9: seed-to-seed variability of AE and RL on 128 nodes.

The paper repeats AE and RL ten times with different seeds: AE's reward
and utilization curves have tight two-standard-deviation bands (its
optimum was "not fortuitous"); RL shows oscillatory node utilization
across all seeds and slower reward growth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import get_context
from repro.experiments.reporting import describe_distribution
from repro.hpc import ThetaPartition, rl_node_allocation, run_search
from repro.nas import AgingEvolution, DistributedRL, SurrogateEvaluator

__all__ = ["Fig9Result", "run_fig9", "main"]


@dataclass
class Fig9Result:
    """Per-method arrays over repetitions."""

    final_rewards: dict[str, np.ndarray]     # moving-average reward at end
    utilizations: dict[str, np.ndarray]
    n_evaluations: dict[str, np.ndarray]

    def reward_band(self, method: str) -> tuple[float, float]:
        """(mean, 2*std) of the end-of-search reward."""
        v = self.final_rewards[method]
        return float(v.mean()), float(2.0 * v.std())


def run_fig9(preset: str = "quick", *, n_nodes: int = 128,
             n_repetitions: int = 10, seed: int = 31) -> Fig9Result:
    ctx = get_context(preset)
    partition = ThetaPartition(n_nodes=n_nodes,
                               wall_seconds=ctx.preset.wall_seconds)
    wpa = rl_node_allocation(n_nodes).workers_per_agent
    final_rewards = {"AE": [], "RL": []}
    utilizations = {"AE": [], "RL": []}
    n_evaluations = {"AE": [], "RL": []}
    for rep in range(n_repetitions):
        methods = {
            "AE": AgingEvolution(ctx.space, rng=np.random.default_rng(
                np.random.SeedSequence((seed, rep, 1)))),
            "RL": DistributedRL(ctx.space, rng=np.random.default_rng(
                np.random.SeedSequence((seed, rep, 2))),
                workers_per_agent=wpa),
        }
        for name, algorithm in methods.items():
            evaluator = SurrogateEvaluator(ctx.space, ctx.performance_model)
            tracker = run_search(algorithm, evaluator, partition,
                                 rng=np.random.default_rng(
                                     np.random.SeedSequence((seed, rep, 3))))
            _, rewards = tracker.reward_trajectory(window=100)
            final_rewards[name].append(float(rewards[-1]))
            utilizations[name].append(tracker.node_utilization())
            n_evaluations[name].append(tracker.n_evaluations)
    return Fig9Result(
        final_rewards={k: np.asarray(v) for k, v in final_rewards.items()},
        utilizations={k: np.asarray(v) for k, v in utilizations.items()},
        n_evaluations={k: np.asarray(v) for k, v in n_evaluations.items()})


def main(preset: str = "quick") -> Fig9Result:
    result = run_fig9(preset)
    print("Figure 9 — 10-seed variability on 128 nodes")
    for name in ("AE", "RL"):
        print(describe_distribution(result.final_rewards[name],
                                    label=f"  {name} final reward"))
        print(describe_distribution(result.utilizations[name],
                                    label=f"  {name} utilization"))
    return result


if __name__ == "__main__":
    main()
