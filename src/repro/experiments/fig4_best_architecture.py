"""Figure 4: the best architecture discovered by aging evolution.

The paper displays the best AE architecture from the 128-node search and
remarks on its "unusual nature ... evidenced by multiple skip
connections". Here we report the searched best architecture's structure
(layer operations, skip wiring, parameter count).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import get_context
from repro.nas.space import describe_architecture

__all__ = ["Fig4Result", "run_fig4", "main"]


@dataclass
class Fig4Result:
    architecture: tuple
    description: str
    n_parameters: int
    n_active_layers: int
    n_skip_connections: int


def run_fig4(preset: str = "quick") -> Fig4Result:
    ctx = get_context(preset)
    arch = ctx.best_architecture()
    space = ctx.space
    ops = space.layer_ops(arch)
    return Fig4Result(
        architecture=arch,
        description=describe_architecture(space, arch),
        n_parameters=space.count_parameters(arch),
        n_active_layers=sum(1 for op in ops if not op.is_identity),
        n_skip_connections=len(space.active_skips(arch)),
    )


def main(preset: str = "quick") -> Fig4Result:
    result = run_fig4(preset)
    print("Figure 4 — best AE-discovered architecture")
    print(result.description)
    return result


if __name__ == "__main__":
    main()
