"""Table III: node utilization and evaluation counts at scale.

Paper values (3-hour searches on Theta):

    nodes | util AE / RL / RS      | evals AE / RL / RS
    33    | 0.905 / 0.592 / 0.913  |  2,093 /  1,066 /  1,780
    64    | 0.920 / 0.482 / 0.927  |  4,201 /  2,100 /  3,630
    128   | 0.918 / 0.527 / 0.921  |  8,068 /  4,740 /  7,267
    256   | 0.911 / 0.509 / 0.936  | 18,039 /  9,680 / 15,221
    512   | 0.962 / 0.541 / 0.869  | 33,748 / 16,335 / 26,559

Shape targets: AE/RS utilization > 0.85 at every size, RL ~0.5; AE
evaluates roughly twice as many architectures as RL; counts scale
~linearly with node count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import get_context
from repro.experiments.reporting import format_table
from repro.hpc import ThetaPartition, rl_node_allocation, run_search
from repro.hpc.theta import PAPER_NODE_COUNTS
from repro.nas import AgingEvolution, DistributedRL, RandomSearch, SurrogateEvaluator

__all__ = ["Table3Result", "run_table3", "main", "PAPER_TABLE3"]

PAPER_TABLE3 = {
    33: {"AE": (0.905, 2093), "RL": (0.592, 1066), "RS": (0.913, 1780)},
    64: {"AE": (0.920, 4201), "RL": (0.482, 2100), "RS": (0.927, 3630)},
    128: {"AE": (0.918, 8068), "RL": (0.527, 4740), "RS": (0.921, 7267)},
    256: {"AE": (0.911, 18039), "RL": (0.509, 9680), "RS": (0.936, 15221)},
    512: {"AE": (0.962, 33748), "RL": (0.541, 16335), "RS": (0.869, 26559)},
}


@dataclass
class Table3Result:
    """Per (node count, method): (utilization, evaluation count)."""

    table: dict[int, dict[str, tuple[float, int]]]


def run_table3(preset: str = "quick", *,
               node_counts: tuple[int, ...] = PAPER_NODE_COUNTS,
               seed: int = 11) -> Table3Result:
    ctx = get_context(preset)
    table: dict[int, dict[str, tuple[float, int]]] = {}
    for n_nodes in node_counts:
        partition = ThetaPartition(n_nodes=n_nodes,
                                   wall_seconds=ctx.preset.wall_seconds)
        wpa = rl_node_allocation(n_nodes).workers_per_agent
        methods = {
            "AE": AgingEvolution(ctx.space, rng=np.random.default_rng(
                np.random.SeedSequence((seed, n_nodes, 1)))),
            "RL": DistributedRL(ctx.space, rng=np.random.default_rng(
                np.random.SeedSequence((seed, n_nodes, 2))),
                workers_per_agent=wpa),
            "RS": RandomSearch(ctx.space, rng=np.random.default_rng(
                np.random.SeedSequence((seed, n_nodes, 3)))),
        }
        table[n_nodes] = {}
        for name, algorithm in methods.items():
            evaluator = SurrogateEvaluator(ctx.space, ctx.performance_model)
            tracker = run_search(algorithm, evaluator, partition,
                                 rng=np.random.default_rng(
                                     np.random.SeedSequence(
                                         (seed, n_nodes, 4))))
            table[n_nodes][name] = (tracker.node_utilization(),
                                    tracker.n_evaluations)
    return Table3Result(table=table)


def main(preset: str = "quick") -> Table3Result:
    result = run_table3(preset)
    print("Table III — node utilization and evaluation counts")
    rows = []
    for n_nodes, methods in sorted(result.table.items()):
        row = [n_nodes]
        for name in ("AE", "RL", "RS"):
            util, evals = methods[name]
            row.append(f"{util:.3f}/{evals}")
        rows.append(row)
    print(format_table(["nodes", "AE util/evals", "RL util/evals",
                        "RS util/evals"], rows))
    return result


if __name__ == "__main__":
    main()
