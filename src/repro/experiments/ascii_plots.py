"""Terminal visualization: sparklines and field heatmaps in plain text.

The reproduction environment has no plotting stack, so the figure drivers
render their series and fields as Unicode block art — enough to *see*
Fig. 3's trajectories or Fig. 6's temperature fields in a terminal or a
log file.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "field_heatmap", "trajectory_panel"]

_BLOCKS = " ▁▂▃▄▅▆▇█"
_SHADES = " ░▒▓█"


def sparkline(values, *, width: int = 60,
              value_range: tuple[float, float] | None = None) -> str:
    """One-line block-character rendering of a series.

    ``width`` resamples the series; ``value_range`` fixes the vertical
    scale (so several sparklines can share one scale).
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {v.shape}")
    if v.size == 0:
        return ""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if v.size > width:
        picks = np.linspace(0, v.size - 1, width).round().astype(int)
        v = v[picks]
    lo, hi = value_range if value_range is not None else (v.min(), v.max())
    if hi <= lo:
        return _BLOCKS[4] * v.size
    scaled = np.clip((v - lo) / (hi - lo), 0.0, 1.0)
    idx = (scaled * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def trajectory_panel(trajectories: dict[str, tuple], *,
                     width: int = 60) -> str:
    """Shared-scale sparklines for several named (times, values) series —
    the textual Fig. 3."""
    if not trajectories:
        return "(no trajectories)"
    finite = [np.asarray(v, dtype=np.float64)
              for _, v in trajectories.values()]
    lo = min(float(v.min()) for v in finite if v.size)
    hi = max(float(v.max()) for v in finite if v.size)
    name_width = max(len(name) for name in trajectories)
    lines = [f"scale: {lo:.4f} (blank) .. {hi:.4f} (full)"]
    for name, (_, values) in trajectories.items():
        lines.append(f"{name.rjust(name_width)} |"
                     f"{sparkline(values, width=width, value_range=(lo, hi))}|")
    return "\n".join(lines)


def field_heatmap(field: np.ndarray, *, width: int = 72,
                  flip_lat: bool = True) -> str:
    """Shade-character rendering of a (lat, lon) field; NaN (land) is
    drawn as ``#``. Latitude rows print north-up by default."""
    arr = np.asarray(field, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"field must be 2-D, got shape {arr.shape}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    n_lat, n_lon = arr.shape
    # Terminal cells are ~2x taller than wide; halve the row count.
    height = max(1, round(width * n_lat / n_lon / 2))
    rows = np.linspace(0, n_lat - 1, height).round().astype(int)
    cols = np.linspace(0, n_lon - 1, min(width, n_lon)).round().astype(int)
    sampled = arr[np.ix_(rows, cols)]
    if flip_lat:
        sampled = sampled[::-1]
    finite = sampled[np.isfinite(sampled)]
    if finite.size == 0:
        raise ValueError("field is entirely NaN")
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    lines = []
    for row in sampled:
        chars = []
        for value in row:
            if np.isnan(value):
                chars.append("#")
            else:
                shade = int(np.clip((value - lo) / span, 0, 1)
                            * (len(_SHADES) - 1))
                chars.append(_SHADES[shade])
        lines.append("".join(chars))
    lines.append(f"[{lo:.1f} .. {hi:.1f}; '#' = land]")
    return "\n".join(lines)
