"""Table II: R^2 of all forecasting methods, train and test periods.

Paper values:

    Model          1981-1989   1990-2018
    NAS-POD-LSTM   0.985       0.876
    Linear         0.801       0.172
    XGBoost        0.966       -0.056
    Random Forest  0.823       0.002
    LSTM-40        0.916/0.944 0.742/0.687   (1-layer / 5-layer)
    LSTM-80        0.931/0.948 0.734/0.687
    LSTM-120       0.922/0.956 0.746/0.711
    LSTM-200       0.902/0.963 0.739/0.724

Shape targets: NAS-POD-LSTM best on the training period and best of the
LSTM family throughout; tree ensembles overfit (high train, large test
drop). Known deviation (see EXPERIMENTS.md): on the *synthetic* archive
the linear baseline does not collapse on the test period, because the
synthetic modal dynamics are smoother/closer-to-linear than real SST.

All models share the identical pipeline (POD basis, windowing); R^2 is
uniformly averaged over the five modes (sklearn's multi-output default),
computed in raw coefficient units so the metric is scale-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    DirectNARXForecaster,
    GradientBoostingRegressor,
    LinearRegressor,
    MANUAL_LSTM_WIDTHS,
    RandomForestRegressor,
    build_manual_lstm,
)
from repro.data.windowing import make_windowed_examples, train_validation_split
from repro.experiments.context import get_context
from repro.experiments.reporting import format_table
from repro.nas.space import build_network
from repro.nn.metrics import r2_score
from repro.nn.training import Trainer

__all__ = ["Table2Result", "run_table2", "main", "PAPER_TABLE2"]

#: Paper Table II values (train, test); LSTMs: 1-layer variant.
PAPER_TABLE2 = {
    "NAS-POD-LSTM": (0.985, 0.876),
    "Linear": (0.801, 0.172),
    "XGBoost": (0.966, -0.056),
    "Random Forest": (0.823, 0.002),
    "LSTM-40": (0.916, 0.742),
    "LSTM-80": (0.931, 0.734),
    "LSTM-120": (0.922, 0.746),
    "LSTM-200": (0.902, 0.739),
}


@dataclass
class Table2Result:
    """(train R^2, test R^2) per model name."""

    scores: dict[str, tuple[float, float]]


def _uniform_r2(targets: np.ndarray, predictions: np.ndarray) -> float:
    """Uniform average of per-mode R^2 over (n, K, modes) windows."""
    return float(np.mean([r2_score(targets[:, :, m], predictions[:, :, m])
                          for m in range(targets.shape[2])]))


def _score_network(emulator, raw_train, raw_test) -> tuple[float, float]:
    """Score a fitted emulator's network in raw coefficient units."""
    out = []
    for raw in (raw_train, raw_test):
        examples = make_windowed_examples(raw, emulator.pipeline.window)
        scaled_inputs = np.stack([
            emulator.pipeline.scaler.transform(w.T).T for w in examples.inputs])
        preds = emulator.predict_windows(scaled_inputs)
        n, k, m = preds.shape
        raw_preds = emulator.pipeline.inverse(
            preds.reshape(-1, m).T).T.reshape(n, k, m)
        out.append(_uniform_r2(examples.outputs, raw_preds))
    return tuple(out)


def run_table2(preset: str = "quick", *, lstm_layers: int = 1,
               seed: int = 0) -> Table2Result:
    """Fit and score every Table II model."""
    ctx = get_context(preset)
    p = ctx.preset
    emulator = ctx.emulator()
    train_snaps = ctx.dataset.training_snapshots()
    test_snaps = ctx.test_snapshots()
    raw_train = emulator.pipeline.coefficients(train_snaps)
    raw_test = emulator.pipeline.coefficients(test_snaps)

    scores: dict[str, tuple[float, float]] = {}
    scores["NAS-POD-LSTM"] = _score_network(emulator, raw_train, raw_test)

    # Classical baselines: fireTS-style direct NARX on raw coefficients.
    classical = {
        "Linear": LinearRegressor(),
        "XGBoost": GradientBoostingRegressor(
            n_estimators=p.boosting_rounds, rng=seed),
        "Random Forest": RandomForestRegressor(
            n_estimators=p.forest_estimators, rng=seed),
    }
    window = emulator.pipeline.window
    ex_train = make_windowed_examples(raw_train, window)
    ex_test = make_windowed_examples(raw_test, window)
    for name, regressor in classical.items():
        narx = DirectNARXForecaster(regressor, window).fit(ex_train)
        scores[name] = (
            _uniform_r2(ex_train.outputs, narx.predict(ex_train.inputs)),
            _uniform_r2(ex_test.outputs, narx.predict(ex_test.inputs)))

    # Manual LSTMs share the emulator's pipeline and training protocol.
    scaled_train = emulator.pipeline.transform(train_snaps)
    examples = make_windowed_examples(scaled_train, window)
    tr, va = train_validation_split(examples, rng=seed)
    for width in MANUAL_LSTM_WIDTHS:
        net = build_manual_lstm(width, lstm_layers, rng=seed)
        trainer = Trainer(epochs=p.posttrain_epochs, batch_size=64,
                          learning_rate=0.002)
        trainer.fit(net, tr.inputs, tr.outputs, va.inputs, va.outputs,
                    rng=seed)
        manual = _ManualWrapper(net, emulator.pipeline)
        scores[f"LSTM-{width}"] = _score_network(manual, raw_train, raw_test)
    return Table2Result(scores=scores)


class _ManualWrapper:
    """Adapter giving a bare network the emulator scoring interface."""

    def __init__(self, network, pipeline) -> None:
        self.network = network
        self.pipeline = pipeline

    def predict_windows(self, inputs: np.ndarray) -> np.ndarray:
        return self.network.predict(np.asarray(inputs, dtype=np.float64),
                                    batch_size=256)


def main(preset: str = "quick") -> Table2Result:
    result = run_table2(preset)
    print("Table II — forecast R^2 by model (uniform per-mode average)")
    rows = [[name, train, test, *PAPER_TABLE2.get(name, ("-", "-"))]
            for name, (train, test) in result.scores.items()]
    print(format_table(
        ["model", "train", "test", "paper train", "paper test"], rows))
    return result


if __name__ == "__main__":
    main()
