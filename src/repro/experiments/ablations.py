"""Ablations of the design decisions DESIGN.md Sec. 5 calls out.

Not figures of the paper, but probes of the claims behind its design:

* ``ablate_aging`` — AE's ageing (replace-oldest) vs a classical
  replace-worst GA under noisy evaluations. The paper credits ageing for
  navigating training noise (Sec. IV-A): without it, lucky noisy scores
  become immortal parents.
* ``ablate_sample_size`` — tournament size s (paper fixes s=10).
* ``ablate_skip_connections`` — retrain the discovered architecture with
  its skip connections severed.
* ``ablate_pod_rank`` — Nr sweep: reconstruction-vs-forecastability.
* ``ablate_fidelity_ordering`` — does the surrogate's quality ordering
  survive real training for clearly separated architectures?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.windowing import train_validation_split
from repro.experiments.context import ReproductionContext, get_context
from repro.forecast import PODLSTMEmulator
from repro.nas import AgingEvolution, ArchitecturePerformanceModel, SurrogateEvaluator
from repro.nas.space import StackedLSTMSpace, build_network
from repro.nn.training import Trainer
from repro.pod import fit_pod, projection_error

__all__ = ["ablate_aging", "ablate_sample_size", "ablate_skip_connections",
           "ablate_pod_rank", "ablate_fidelity_ordering"]


def _drive(search, evaluator, n_evals: int, eval_seed: int) -> float:
    """Run a serial ask/tell loop; return the best *true* quality found."""
    rng = np.random.default_rng(eval_seed)
    for _ in range(n_evals):
        arch = search.ask()
        search.tell(arch, evaluator.model.observed_quality(arch, rng))
    return evaluator.model.quality(search.best_architecture)


def ablate_aging(preset: str = "quick", *, n_evals: int = 1500,
                 noise_std: float = 0.02, n_seeds: int = 5
                 ) -> dict[str, list[float]]:
    """Mean true quality found by aging vs non-aging evolution under
    *high* evaluation noise (5x the calibrated level)."""
    ctx = get_context(preset)
    out: dict[str, list[float]] = {"aging": [], "non-aging": []}
    for seed in range(n_seeds):
        model = ArchitecturePerformanceModel(ctx.space, seed=0,
                                             noise_std=noise_std)
        for label, aging in (("aging", True), ("non-aging", False)):
            search = AgingEvolution(
                ctx.space, rng=np.random.default_rng((seed, aging)),
                population_size=60, sample_size=10, aging=aging)
            evaluator = SurrogateEvaluator(ctx.space, model)
            out[label].append(_drive(search, evaluator, n_evals, seed))
    return out


def ablate_sample_size(preset: str = "quick", *, n_evals: int = 1500,
                       sizes: tuple[int, ...] = (2, 10, 50),
                       n_seeds: int = 3) -> dict[int, list[float]]:
    """Best true quality vs tournament sample size (paper: s=10)."""
    ctx = get_context(preset)
    out: dict[int, list[float]] = {s: [] for s in sizes}
    for seed in range(n_seeds):
        model = ArchitecturePerformanceModel(ctx.space, seed=0)
        for s in sizes:
            search = AgingEvolution(
                ctx.space, rng=np.random.default_rng((seed, s)),
                population_size=60, sample_size=s)
            evaluator = SurrogateEvaluator(ctx.space, model)
            out[s].append(_drive(search, evaluator, n_evals, seed))
    return out


def ablate_skip_connections(preset: str = "quick") -> dict[str, float]:
    """Validation R^2 of the discovered architecture with and without its
    skip connections (same layer stack, skips zeroed)."""
    ctx = get_context(preset)
    arch = list(ctx.best_architecture())
    stripped = arch.copy()
    for pos in range(ctx.space.n_layers, len(stripped)):
        stripped[pos] = 0
    snaps = ctx.dataset.training_snapshots()
    epochs = max(10, ctx.preset.posttrain_epochs // 2)
    out = {}
    for label, encoding in (("with skips", tuple(arch)),
                            ("without skips", tuple(stripped))):
        emulator = PODLSTMEmulator(
            trainer=Trainer(epochs=epochs, batch_size=64,
                            learning_rate=0.002))
        emulator.fit(snaps, network=build_network(ctx.space, encoding,
                                                  rng=0), rng=0)
        out[label] = emulator.validation_r2
    return out


@dataclass
class PodRankPoint:
    n_modes: int
    energy_fraction: float
    projection_error: float
    validation_r2: float


def ablate_pod_rank(preset: str = "quick",
                    ranks: tuple[int, ...] = (2, 5, 10)
                    ) -> list[PodRankPoint]:
    """Nr sweep: more modes reconstruct better but the added modes are
    increasingly stochastic (paper Sec. II-B's justification of Nr=5)."""
    ctx = get_context(preset)
    snaps = ctx.dataset.training_snapshots()
    full = fit_pod(snaps, max(ranks))
    epochs = max(10, ctx.preset.posttrain_epochs // 4)
    points = []
    for n_modes in ranks:
        basis = full.truncate(n_modes)
        emulator = PODLSTMEmulator(
            n_modes=n_modes, window=8,
            trainer=Trainer(epochs=epochs, batch_size=64,
                            learning_rate=0.002))
        emulator.fit(snaps, rng=0)
        points.append(PodRankPoint(
            n_modes=n_modes,
            energy_fraction=full.energy_fraction(n_modes),
            projection_error=projection_error(basis, snaps),
            validation_r2=emulator.validation_r2))
    return points


def ablate_fidelity_ordering(preset: str = "quick") -> dict[str, dict]:
    """Train a surrogate-strong and a surrogate-weak architecture for real
    and check the ordering survives the fidelity change."""
    ctx = get_context(preset)
    model = ctx.performance_model
    rng = np.random.default_rng(0)
    candidates = [ctx.space.random_architecture(rng) for _ in range(300)]
    strong = max(candidates, key=model.quality)
    weak = min(candidates, key=model.quality)
    snaps = ctx.dataset.training_snapshots()
    epochs = max(10, ctx.preset.posttrain_epochs // 4)
    out = {}
    for label, arch in (("strong", strong), ("weak", weak)):
        emulator = PODLSTMEmulator(
            trainer=Trainer(epochs=epochs, batch_size=64,
                            learning_rate=0.002))
        emulator.fit(snaps, network=build_network(ctx.space, arch, rng=0),
                     rng=0)
        out[label] = {"surrogate": model.quality(arch),
                      "real": emulator.validation_r2}
    return out
