"""Figure 7: temporal probes at three Eastern-Pacific locations.

The paper plots weekly temperature at (-5, 210), (+5, 250) and (+10, 230)
degrees (lat, lon East) between April 2015 and June 2018 for truth,
HYCOM, CESM and the POD-LSTM — HYCOM and POD-LSTM track the truth while
CESM drifts on its own trajectory. We report per-probe correlation and
RMSE for each system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.assessment import assessment_indices, podlstm_field_forecasts
from repro.experiments.context import get_context
from repro.experiments.reporting import format_table

__all__ = ["PROBES", "Fig7Result", "run_fig7", "main"]

#: The paper's three probe locations: (latitude, longitude East).
PROBES = ((-5.0, 210.0), (5.0, 250.0), (10.0, 230.0))


@dataclass
class Fig7Result:
    indices: np.ndarray
    series: dict[str, dict[tuple[float, float], np.ndarray]]
    rmse: dict[str, dict[tuple[float, float], float]]
    correlation: dict[str, dict[tuple[float, float], float]]


def run_fig7(preset: str = "quick", *, horizon: int = 1,
             max_targets: int = 84) -> Fig7Result:
    ctx = get_context(preset)
    targets = assessment_indices(ctx)
    if targets.size > max_targets:
        step = int(np.ceil(targets.size / max_targets))
        targets = targets[::step]
    generator = ctx.dataset.generator
    stacks = {
        "NOAA (truth)": generator.fields(targets),
        "HYCOM": ctx.hycom.fields(targets),
        "CESM": ctx.cesm.fields(targets),
        "POD-LSTM": podlstm_field_forecasts(ctx, horizon, targets),
    }
    cells = {probe: generator.grid.nearest_index(*probe) for probe in PROBES}
    series: dict[str, dict] = {}
    rmse: dict[str, dict] = {}
    corr: dict[str, dict] = {}
    truth = stacks["NOAA (truth)"]
    for name, stack in stacks.items():
        series[name], rmse[name], corr[name] = {}, {}, {}
        for probe, (i, j) in cells.items():
            s = stack[:, i, j]
            series[name][probe] = s
            t = truth[:, i, j]
            rmse[name][probe] = float(np.sqrt(np.mean((s - t) ** 2)))
            denom = s.std() * t.std()
            corr[name][probe] = (float(np.mean((s - s.mean())
                                               * (t - t.mean())) / denom)
                                 if denom > 0 else 1.0)
    return Fig7Result(indices=targets, series=series, rmse=rmse,
                      correlation=corr)


def main(preset: str = "quick") -> Fig7Result:
    result = run_fig7(preset)
    print("Figure 7 — temporal probes (2015-04 to 2018-06)")
    headers = ["model"] + [f"({lat:+.0f},{lon:.0f}) r/RMSE"
                           for lat, lon in PROBES]
    rows = []
    for name in result.rmse:
        row = [name]
        for probe in PROBES:
            row.append(f"{result.correlation[name][probe]:.2f}/"
                       f"{result.rmse[name][probe]:.2f}")
        rows.append(row)
    print(format_table(headers, rows))
    return result


if __name__ == "__main__":
    main()
