"""Figure 5: post-training convergence and coefficient forecasts.

Top row: convergence of the best architecture retrained for the longer
post-training budget (paper: validation R^2 0.985 after 100 epochs).
Bottom row: POD-coefficient forecasts on the training period (1981-89,
tracked closely) and the test period (1990-2018, errors grow with mode
number), with CESM's coefficients projected onto the NOAA POD modes
matching modes 1-2 but misaligning beyond.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import get_context
from repro.experiments.reporting import format_table
from repro.nn.metrics import r2_score

__all__ = ["Fig5Result", "run_fig5", "main"]


@dataclass
class Fig5Result:
    validation_r2: float
    epoch_r2: list[float]
    train_mode_r2: list[float]       # per-mode forecast R^2, 1981-89
    test_mode_r2: list[float]        # per-mode forecast R^2, 1990-2018
    cesm_mode_correlation: list[float]  # CESM coeffs vs truth coeffs


def _per_mode_forecast_r2(emulator, snapshots) -> list[float]:
    times, pred, actual = emulator.forecast_coefficient_series(snapshots,
                                                               horizon=1)
    return [r2_score(actual[m], pred[m]) for m in range(pred.shape[0])]


def run_fig5(preset: str = "quick") -> Fig5Result:
    ctx = get_context(preset)
    emulator = ctx.emulator()
    train = ctx.dataset.training_snapshots()
    test = ctx.test_snapshots()

    train_r2 = _per_mode_forecast_r2(emulator, train)
    test_r2 = _per_mode_forecast_r2(emulator, test)

    # CESM projected onto the NOAA POD modes over a test slice (the paper
    # compares coefficient trajectories; we report per-mode correlation).
    idx = np.asarray(ctx.dataset.test_indices)[::8][:120]
    truth_coeff = emulator.pipeline.coefficients(ctx.dataset.snapshots(idx))
    cesm_coeff = emulator.pipeline.coefficients(ctx.cesm.snapshots(idx))
    corr = []
    for m in range(truth_coeff.shape[0]):
        t, c = truth_coeff[m], cesm_coeff[m]
        denom = t.std() * c.std()
        corr.append(float(np.mean((t - t.mean()) * (c - c.mean())) / denom)
                    if denom > 0 else 0.0)

    return Fig5Result(
        validation_r2=emulator.validation_r2,
        epoch_r2=list(emulator.history.val_r2),
        train_mode_r2=train_r2,
        test_mode_r2=test_r2,
        cesm_mode_correlation=corr,
    )


def main(preset: str = "quick") -> Fig5Result:
    result = run_fig5(preset)
    print("Figure 5 — post-training results")
    print(f"  final validation R^2: {result.validation_r2:.4f} "
          f"(paper: 0.985)")
    rows = [[f"mode {m + 1}", result.train_mode_r2[m], result.test_mode_r2[m],
             result.cesm_mode_correlation[m]]
            for m in range(len(result.train_mode_r2))]
    print(format_table(
        ["", "train R^2 (1981-89)", "test R^2 (1990-2018)", "CESM corr"],
        rows))
    return result


if __name__ == "__main__":
    main()
