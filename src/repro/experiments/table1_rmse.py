"""Table I: weekly RMSE breakdown in the Eastern Pacific.

Paper values (degrees C, weeks 1-8, April 2015 - June 2018):

    Predicted  0.62 0.63 0.64 0.66 0.63 0.66 0.69 0.65
    CESM       1.88 1.87 1.83 1.85 1.86 1.87 1.86 1.83
    HYCOM      0.99 0.99 1.03 1.04 1.02 1.05 1.03 1.05

Shape to reproduce: Predicted < HYCOM < CESM, all three roughly flat in
lead week (the POD-LSTM always conditions on true history; HYCOM
re-initializes; CESM never initializes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comparators import regional_rmse
from repro.data.grid import EASTERN_PACIFIC
from repro.experiments.assessment import assessment_indices, podlstm_field_forecasts
from repro.experiments.context import get_context
from repro.experiments.reporting import format_table

__all__ = ["Table1Result", "run_table1", "main"]

#: Paper Table I values for the EXPERIMENTS.md comparison.
PAPER_TABLE1 = {
    "Predicted": (0.62, 0.63, 0.64, 0.66, 0.63, 0.66, 0.69, 0.65),
    "CESM": (1.88, 1.87, 1.83, 1.85, 1.86, 1.87, 1.86, 1.83),
    "HYCOM": (0.99, 0.99, 1.03, 1.04, 1.02, 1.05, 1.03, 1.05),
}


@dataclass
class Table1Result:
    """Per-lead-week RMSE (degrees C) per forecast system."""

    weeks: list[int]
    rmse: dict[str, list[float]]


def run_table1(preset: str = "quick", *, max_targets: int = 80,
               n_weeks: int = 8) -> Table1Result:
    """Compute the weekly RMSE breakdown.

    ``max_targets`` subsamples the ~168 assessment weeks to bound runtime
    (RMSE is an average; subsampling changes estimates only marginally).
    """
    ctx = get_context(preset)
    targets = assessment_indices(ctx)
    if targets.size > max_targets:
        step = int(np.ceil(targets.size / max_targets))
        targets = targets[::step]
    generator = ctx.dataset.generator
    truth = generator.fields(targets)
    grid, mask = generator.grid, generator.ocean_mask

    rmse: dict[str, list[float]] = {"Predicted": [], "CESM": [], "HYCOM": []}
    cesm_fields = ctx.cesm.fields(targets)
    hycom_fields = ctx.hycom.fields(targets)
    cesm_rmse = regional_rmse(truth, cesm_fields, grid, EASTERN_PACIFIC, mask)
    hycom_rmse = regional_rmse(truth, hycom_fields, grid, EASTERN_PACIFIC, mask)
    for week in range(1, n_weeks + 1):
        predicted = podlstm_field_forecasts(ctx, week, targets)
        rmse["Predicted"].append(
            regional_rmse(truth, predicted, grid, EASTERN_PACIFIC, mask))
        # CESM never initializes from the window and HYCOM re-initializes
        # each week, so their errors are lead-independent by construction
        # (the paper's rows are flat); reuse the single computed value.
        rmse["CESM"].append(cesm_rmse)
        rmse["HYCOM"].append(hycom_rmse)
    return Table1Result(weeks=list(range(1, n_weeks + 1)), rmse=rmse)


def main(preset: str = "quick") -> Table1Result:
    result = run_table1(preset)
    print("Table I — Eastern Pacific RMSE (deg C) by forecast week")
    headers = ["model"] + [f"wk{w}" for w in result.weeks]
    rows = [[name] + values for name, values in result.rmse.items()]
    print(format_table(headers, rows, float_fmt="{:.2f}"))
    return result


if __name__ == "__main__":
    main()
