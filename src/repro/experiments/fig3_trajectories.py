"""Figure 3: search trajectories of AE, RL and RS on 128 nodes.

Paper findings to reproduce: AE reaches validation R^2 ~0.96 within ~50
minutes; RL explores strongly early and only approaches AE's reward near
the end of the 3 hours; RS plateaus at 0.93-0.94.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ReproductionContext, get_context
from repro.experiments.reporting import format_series
from repro.hpc import ThetaPartition, rl_node_allocation, run_search
from repro.hpc.tracking import SearchTracker
from repro.nas import AgingEvolution, DistributedRL, RandomSearch, SurrogateEvaluator

__all__ = ["Fig3Result", "run_fig3", "main"]


@dataclass
class Fig3Result:
    """Trajectories per method: (times_s, moving-average rewards)."""

    trajectories: dict[str, tuple[np.ndarray, np.ndarray]]
    trackers: dict[str, SearchTracker]

    def reward_at(self, method: str, minutes: float) -> float:
        """Moving-average reward at a wall-clock checkpoint."""
        times, rewards = self.trajectories[method]
        if times.size == 0:
            raise ValueError(f"no evaluations recorded for {method}")
        i = int(np.searchsorted(times, minutes * 60.0))
        return float(rewards[min(i, rewards.size - 1)])


def _make_algorithms(ctx: ReproductionContext, n_nodes: int, seed: int):
    space = ctx.space
    wpa = rl_node_allocation(n_nodes).workers_per_agent
    return {
        "AE": AgingEvolution(space, rng=np.random.default_rng(
            np.random.SeedSequence((seed, 1)))),
        "RL": DistributedRL(space, rng=np.random.default_rng(
            np.random.SeedSequence((seed, 2))), workers_per_agent=wpa),
        "RS": RandomSearch(space, rng=np.random.default_rng(
            np.random.SeedSequence((seed, 3)))),
    }


def run_fig3(preset: str = "quick", *, n_nodes: int = 128,
             seed: int = 7) -> Fig3Result:
    """Simulate the three searches and collect reward trajectories."""
    ctx = get_context(preset)
    partition = ThetaPartition(n_nodes=n_nodes,
                               wall_seconds=ctx.preset.wall_seconds)
    trajectories: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    trackers: dict[str, SearchTracker] = {}
    for name, algorithm in _make_algorithms(ctx, n_nodes, seed).items():
        evaluator = SurrogateEvaluator(ctx.space, ctx.performance_model)
        tracker = run_search(algorithm, evaluator, partition,
                             rng=np.random.default_rng(
                                 np.random.SeedSequence((seed, 4))))
        trajectories[name] = tracker.reward_trajectory(window=100)
        trackers[name] = tracker
    return Fig3Result(trajectories=trajectories, trackers=trackers)


def main(preset: str = "quick") -> Fig3Result:
    from repro.experiments.ascii_plots import trajectory_panel

    result = run_fig3(preset)
    print("Figure 3 — search trajectories (moving-average reward, 128 nodes)")
    for name, (times, rewards) in result.trajectories.items():
        print(format_series(times, rewards, label=f"  {name}"))
    print(trajectory_panel(result.trajectories))
    return result


if __name__ == "__main__":
    main()
