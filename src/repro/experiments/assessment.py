"""Shared helpers for the 2015-2018 assessment window.

Table I and Figs. 6-7 all evaluate inside the HYCOM data-availability
window: April 5, 2015 through June 24, 2018, in the Eastern Pacific.
"""

from __future__ import annotations

import datetime as _dt

import numpy as np

from repro.experiments.context import ReproductionContext

__all__ = ["ASSESSMENT_START", "ASSESSMENT_END", "assessment_indices",
           "podlstm_field_forecasts"]

ASSESSMENT_START = _dt.date(2015, 4, 5)
ASSESSMENT_END = _dt.date(2018, 6, 24)


def assessment_indices(ctx: ReproductionContext) -> np.ndarray:
    """Snapshot indices of the paper's HYCOM comparison window."""
    cal = ctx.dataset.calendar
    return np.asarray(cal.indices_between(ASSESSMENT_START, ASSESSMENT_END))


def podlstm_field_forecasts(ctx: ReproductionContext, horizon: int,
                            target_indices: np.ndarray
                            ) -> np.ndarray:
    """Lead-``horizon`` POD-LSTM field forecasts for given target weeks.

    Returns a stack of shape ``(len(target_indices), n_lat, n_lon)`` with
    NaN land, reconstructed through the POD basis.
    """
    emulator = ctx.emulator()
    window = emulator.pipeline.window
    # The window producing a lead-h forecast of target T starts at
    # T - window - (h - 1); feed the emulator a series covering all of it.
    first = int(target_indices.min()) - window - (horizon - 1)
    # Windowing also extracts the actual output block, so the series must
    # run `window - horizon` steps past the last target.
    last = int(target_indices.max()) + window - horizon
    if first < 0:
        raise ValueError(
            f"target range requires snapshots before index 0 ({first})")
    series_idx = np.arange(first, last + 1)
    snaps = ctx.dataset.snapshots(series_idx)
    times, fields = emulator.forecast_fields(snaps, horizon=horizon)
    absolute = times + first
    generator = ctx.dataset.generator
    out = np.empty((target_indices.size,) + generator.grid.shape)
    lookup = {int(t): i for i, t in enumerate(absolute)}
    for row, target in enumerate(target_indices):
        try:
            col = lookup[int(target)]
        except KeyError:
            raise ValueError(
                f"no lead-{horizon} forecast available for index {target}"
            ) from None
        out[row] = generator.unflatten(fields[:, col])
    return out
