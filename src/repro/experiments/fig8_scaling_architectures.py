"""Figure 8: unique high-performing architectures vs time and node count.

The paper counts distinct architectures with reward R^2 > 0.96:

* (a) AE's cumulative unique count grows strongly with node count —
  roughly, each doubling of nodes reaches the previous size's final count
  in half to two-thirds of the wall time;
* (b) at the end of 180 minutes, AE beats RL and RS comprehensively, and
  RL's count saturates beyond 256 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import get_context
from repro.experiments.reporting import format_table
from repro.hpc import ThetaPartition, rl_node_allocation, run_search
from repro.hpc.theta import PAPER_NODE_COUNTS
from repro.nas import AgingEvolution, DistributedRL, RandomSearch, SurrogateEvaluator

__all__ = ["Fig8Result", "run_fig8", "main"]

HIGH_PERFORMER_THRESHOLD = 0.96


@dataclass
class Fig8Result:
    """Unique-high-performer curves and final counts."""

    ae_curves: dict[int, tuple[np.ndarray, np.ndarray]]  # per node count
    final_counts: dict[int, dict[str, int]]              # per node count/method


def run_fig8(preset: str = "quick", *,
             node_counts: tuple[int, ...] = PAPER_NODE_COUNTS,
             seed: int = 23,
             threshold: float = HIGH_PERFORMER_THRESHOLD) -> Fig8Result:
    ctx = get_context(preset)
    ae_curves: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    final_counts: dict[int, dict[str, int]] = {}
    for n_nodes in node_counts:
        partition = ThetaPartition(n_nodes=n_nodes,
                                   wall_seconds=ctx.preset.wall_seconds)
        wpa = rl_node_allocation(n_nodes).workers_per_agent
        methods = {
            "AE": AgingEvolution(ctx.space, rng=np.random.default_rng(
                np.random.SeedSequence((seed, n_nodes, 1)))),
            "RL": DistributedRL(ctx.space, rng=np.random.default_rng(
                np.random.SeedSequence((seed, n_nodes, 2))),
                workers_per_agent=wpa),
            "RS": RandomSearch(ctx.space, rng=np.random.default_rng(
                np.random.SeedSequence((seed, n_nodes, 3)))),
        }
        final_counts[n_nodes] = {}
        for name, algorithm in methods.items():
            evaluator = SurrogateEvaluator(ctx.space, ctx.performance_model)
            tracker = run_search(algorithm, evaluator, partition,
                                 rng=np.random.default_rng(
                                     np.random.SeedSequence(
                                         (seed, n_nodes, 4))))
            final_counts[n_nodes][name] = \
                tracker.n_unique_high_performers(threshold)
            if name == "AE":
                ae_curves[n_nodes] = tracker.unique_high_performers(threshold)
    return Fig8Result(ae_curves=ae_curves, final_counts=final_counts)


def main(preset: str = "quick") -> Fig8Result:
    result = run_fig8(preset)
    print(f"Figure 8 — unique architectures with reward > "
          f"{HIGH_PERFORMER_THRESHOLD}")
    rows = [[n, counts["AE"], counts["RL"], counts["RS"]]
            for n, counts in sorted(result.final_counts.items())]
    print(format_table(["nodes", "AE", "RL", "RS"], rows))
    return result


if __name__ == "__main__":
    main()
