"""Plain-text table/series rendering shared by the experiment drivers."""

from __future__ import annotations

import numpy as np

__all__ = ["format_table", "format_series", "describe_distribution"]


def format_table(headers: list[str], rows: list[list], *,
                 title: str | None = None, float_fmt: str = "{:.3f}") -> str:
    """Render an aligned plain-text table."""
    def fmt(cell) -> str:
        if isinstance(cell, float) or isinstance(cell, np.floating):
            return float_fmt.format(float(cell))
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(times, values, *, label: str = "series",
                  checkpoints: int = 8, time_scale: float = 60.0,
                  time_unit: str = "min") -> str:
    """Summarize a time series at evenly spaced checkpoints."""
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times.size == 0:
        return f"{label}: (empty)"
    picks = np.linspace(0, times.size - 1, min(checkpoints, times.size))
    parts = [f"{times[int(i)] / time_scale:.0f}{time_unit}="
             f"{values[int(i)]:.4f}" for i in picks]
    return f"{label}: " + "  ".join(parts)


def describe_distribution(values, *, label: str = "values") -> str:
    """Mean +/- 2 std summary (the paper's Fig. 9 confidence band)."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return f"{label}: (empty)"
    return (f"{label}: mean={v.mean():.4f} 2std={2.0 * v.std():.4f} "
            f"min={v.min():.4f} max={v.max():.4f}")
