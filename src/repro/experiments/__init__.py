"""Experiment drivers — one module per table/figure of the paper.

Each ``run_*`` function returns a structured result object and each module
prints the same rows/series the paper reports. The ``quick`` preset keeps
every experiment laptop-fast; ``full`` uses the paper-equivalent training
budgets. See DESIGN.md Sec. 3 for the experiment index and EXPERIMENTS.md
for paper-vs-measured records.
"""

from repro.experiments.context import ExperimentPreset, ReproductionContext, get_context
from repro.experiments.fig3_trajectories import run_fig3
from repro.experiments.fig4_best_architecture import run_fig4
from repro.experiments.fig5_posttraining import run_fig5
from repro.experiments.fig6_field_forecast import run_fig6
from repro.experiments.fig7_probes import run_fig7
from repro.experiments.fig8_scaling_architectures import run_fig8
from repro.experiments.fig9_variability import run_fig9
from repro.experiments.table1_rmse import run_table1
from repro.experiments.table2_baselines import run_table2
from repro.experiments.table3_scaling import run_table3

__all__ = [
    "ExperimentPreset",
    "ReproductionContext",
    "get_context",
    "run_fig3", "run_fig4", "run_fig5", "run_fig6", "run_fig7",
    "run_fig8", "run_fig9",
    "run_table1", "run_table2", "run_table3",
]
