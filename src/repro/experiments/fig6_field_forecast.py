"""Figure 6: sample field forecasts for the week of June 14, 2015.

The paper shows the global temperature field from NOAA (truth), HYCOM,
CESM and the POD-LSTM for one test week, observing that the emulator
captures the large structures (its spectral content is limited to the
retained POD modes). We report global and Eastern-Pacific error
statistics for each system on that week.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

import numpy as np

from repro.data.grid import EASTERN_PACIFIC
from repro.experiments.assessment import podlstm_field_forecasts
from repro.experiments.context import get_context
from repro.experiments.reporting import format_table

__all__ = ["Fig6Result", "run_fig6", "main"]

FORECAST_WEEK = _dt.date(2015, 6, 14)


@dataclass
class Fig6Result:
    date: _dt.date
    fields: dict[str, np.ndarray]          # (lat, lon), NaN land
    global_rmse: dict[str, float]
    eastern_pacific_rmse: dict[str, float]


def run_fig6(preset: str = "quick", *, horizon: int = 1) -> Fig6Result:
    ctx = get_context(preset)
    generator = ctx.dataset.generator
    index = ctx.dataset.calendar.index_of(FORECAST_WEEK)
    targets = np.asarray([index])
    truth = generator.fields(targets)[0]
    fields = {
        "NOAA (truth)": truth,
        "HYCOM": ctx.hycom.fields(targets)[0],
        "CESM": ctx.cesm.fields(targets)[0],
        "POD-LSTM": podlstm_field_forecasts(ctx, horizon, targets)[0],
    }
    ocean = generator.ocean_mask
    ep = EASTERN_PACIFIC.mask(generator.grid) & ocean
    global_rmse, ep_rmse = {}, {}
    for name, field in fields.items():
        diff = (field - truth)[ocean]
        global_rmse[name] = float(np.sqrt(np.mean(diff ** 2)))
        diff_ep = (field - truth)[ep]
        ep_rmse[name] = float(np.sqrt(np.mean(diff_ep ** 2)))
    return Fig6Result(date=FORECAST_WEEK, fields=fields,
                      global_rmse=global_rmse,
                      eastern_pacific_rmse=ep_rmse)


def main(preset: str = "quick") -> Fig6Result:
    result = run_fig6(preset)
    print(f"Figure 6 — field forecast for week of {result.date}")
    rows = [[name, result.global_rmse[name],
             result.eastern_pacific_rmse[name],
             float(np.nanmin(field)), float(np.nanmax(field))]
            for name, field in result.fields.items()]
    print(format_table(
        ["model", "global RMSE", "E-Pacific RMSE", "min T", "max T"], rows,
        float_fmt="{:.2f}"))
    from repro.experiments.ascii_plots import field_heatmap
    for name in ("NOAA (truth)", "POD-LSTM"):
        print(f"\n{name}:")
        print(field_heatmap(result.fields[name], width=72))
    return result


if __name__ == "__main__":
    main()
