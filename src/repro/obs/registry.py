"""Hierarchical timers and typed perf counters.

The registry is the single aggregation point of the observability layer
(docs/OBSERVABILITY.md). Three record kinds exist:

* **scopes** — hierarchical wall-clock timers keyed by a ``/``-joined
  path of the active scope names (``"hpc/run_async/evaluate"``). Each
  scope tracks call count, *inclusive* time (scope entry to exit) and
  *exclusive* time (inclusive minus the inclusive time of directly
  nested scopes), so a flat table still shows where time actually went;
* **counters** — monotonically accumulated totals (examples trained,
  GEMMs issued, evaluations completed);
* **gauges** — last-value-wins measurements with min/max/mean tracking
  (examples/sec, simulated-to-wall speedup).

Everything is **off by default**: a disabled registry hands out a shared
no-op scope and drops counter/gauge updates after a single attribute
check, so instrumented code paths are numerically and behaviourally
identical to uninstrumented ones (guard-tested in tests/test_obs.py).

Thread safety: the serving engine (:mod:`repro.serve.engine`) updates
counters and gauges from worker threads, so registry mutations are
guarded by a lock — concurrent increments never lose updates (regression
test in tests/test_obs.py). The scope *path* stack is thread-local:
scopes opened on different threads nest independently and aggregate into
the shared tables under the same lock. The disabled fast path takes no
lock. Enable/disable must still not be toggled while scopes are open,
and ``reset()`` clears only the calling thread's open-scope stack.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass

__all__ = ["ScopeStats", "Counter", "Gauge", "Registry", "NullScope",
           "NULL_SCOPE"]


@dataclass
class ScopeStats:
    """Aggregated timings of one scope path."""

    name: str
    n_calls: int = 0
    total_s: float = 0.0     # inclusive: scope entry -> exit
    self_s: float = 0.0      # exclusive: inclusive minus nested scopes
    min_s: float = float("inf")
    max_s: float = 0.0

    def record(self, inclusive_s: float, exclusive_s: float) -> None:
        self.n_calls += 1
        self.total_s += inclusive_s
        self.self_s += exclusive_s
        self.min_s = min(self.min_s, inclusive_s)
        self.max_s = max(self.max_s, inclusive_s)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.n_calls if self.n_calls else 0.0

    def as_record(self) -> dict:
        return {"kind": "scope", "name": self.name, "n_calls": self.n_calls,
                "total_s": self.total_s, "self_s": self.self_s,
                "min_s": self.min_s, "max_s": self.max_s}


@dataclass
class Counter:
    """Monotonically accumulated total (e.g. examples trained)."""

    name: str
    value: float = 0.0
    n_updates: int = 0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(got {amount})")
        self.value += amount
        self.n_updates += 1

    def as_record(self) -> dict:
        return {"kind": "counter", "name": self.name, "value": self.value,
                "n_updates": self.n_updates}


@dataclass
class Gauge:
    """Last-value-wins measurement with min/max/mean tracking."""

    name: str
    last: float = float("nan")
    min: float = float("inf")
    max: float = float("-inf")
    total: float = 0.0
    n_updates: int = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.last = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.total += value
        self.n_updates += 1

    @property
    def mean(self) -> float:
        return self.total / self.n_updates if self.n_updates else float("nan")

    def as_record(self) -> dict:
        return {"kind": "gauge", "name": self.name, "last": self.last,
                "min": self.min, "max": self.max, "total": self.total,
                "n_updates": self.n_updates}


class NullScope:
    """Shared do-nothing scope returned while observability is disabled."""

    __slots__ = ()
    elapsed_s = 0.0

    def __enter__(self) -> "NullScope":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: Module-wide singleton: the disabled path allocates nothing per call.
NULL_SCOPE = NullScope()


class _Scope:
    """Context manager recording one timed region into a registry."""

    __slots__ = ("_registry", "name", "elapsed_s", "_t0", "_path")

    def __init__(self, registry: "Registry", name: str) -> None:
        self._registry = registry
        self.name = name
        self.elapsed_s = 0.0

    def __enter__(self) -> "_Scope":
        reg = self._registry
        reg._path_parts.append(self.name)
        self._path = "/".join(reg._path_parts)
        reg._child_time.append(0.0)
        self._t0 = reg._clock()
        return self

    def __exit__(self, *exc) -> bool:
        reg = self._registry
        inclusive = reg._clock() - self._t0
        nested = reg._child_time.pop()
        reg._path_parts.pop()
        self.elapsed_s = inclusive
        with reg._lock:
            stats = reg.scopes.get(self._path)
            if stats is None:
                stats = reg.scopes[self._path] = ScopeStats(self._path)
            stats.record(inclusive, inclusive - nested)
        if reg._child_time:
            reg._child_time[-1] += inclusive
        return False


class Registry:
    """Aggregation point for scopes, counters and gauges.

    ``clock`` is injectable (monotonic by default) so timer arithmetic is
    unit-testable with a fake clock.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.enabled = False
        self.scopes = {}
        self.counters = {}
        self.gauges = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    # Open-scope bookkeeping is per thread: scopes on different threads
    # nest independently (each engine worker times its own hierarchy)
    # while the aggregated tables above stay shared.
    @property
    def _path_parts(self) -> list:
        parts = getattr(self._local, "path_parts", None)
        if parts is None:
            parts = self._local.path_parts = []
        return parts

    @property
    def _child_time(self) -> list:
        times = getattr(self._local, "child_time", None)
        if times is None:
            times = self._local.child_time = []
        return times

    # -- recording -------------------------------------------------------
    def scope(self, name: str):
        """Timed region; nesting builds ``/``-joined hierarchical paths."""
        if not self.enabled:
            return NULL_SCOPE
        return _Scope(self, name)

    def counter_add(self, name: str, amount: float = 1.0) -> None:
        if not self.enabled:
            return
        with self._lock:
            counter = self.counters.get(name)
            if counter is None:
                counter = self.counters[name] = Counter(name)
            counter.add(amount)

    def gauge_set(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            gauge = self.gauges.get(name)
            if gauge is None:
                gauge = self.gauges[name] = Gauge(name)
            gauge.set(value)

    # -- lifecycle -------------------------------------------------------
    def reset(self) -> None:
        """Drop all recorded data (the enabled flag is left untouched).

        Open-scope stacks are thread-local; only the calling thread's
        stack is cleared — don't reset while other threads hold scopes.
        """
        with self._lock:
            self.scopes.clear()
            self.counters.clear()
            self.gauges.clear()
        self._path_parts.clear()
        self._child_time.clear()

    # -- export ----------------------------------------------------------
    def as_records(self) -> list[dict]:
        """All recorded data as plain JSON-serializable dicts."""
        with self._lock:
            records = [s.as_record() for s in self.scopes.values()]
            records += [c.as_record() for c in self.counters.values()]
            records += [g.as_record() for g in self.gauges.values()]
        return records

    def export_jsonl(self, path_or_file) -> None:
        """Write one JSON object per record (schema: docs/OBSERVABILITY.md)."""
        if hasattr(path_or_file, "write"):
            self._write_jsonl(path_or_file)
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:
                self._write_jsonl(fh)

    def _write_jsonl(self, fh) -> None:
        for record in self.as_records():
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    @classmethod
    def load_jsonl(cls, path_or_file) -> "Registry":
        """Rebuild a registry from an exported JSONL stream."""
        if hasattr(path_or_file, "read"):
            lines = path_or_file.read().splitlines()
        else:
            with open(path_or_file, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        registry = cls()
        for line in lines:
            if not line.strip():
                continue
            record = dict(json.loads(line))
            kind = record.pop("kind", None)
            name = record.get("name")
            if kind == "scope":
                registry.scopes[name] = ScopeStats(**record)
            elif kind == "counter":
                registry.counters[name] = Counter(**record)
            elif kind == "gauge":
                registry.gauges[name] = Gauge(**record)
            else:
                raise ValueError(f"unknown record kind {kind!r}")
        return registry

    def __repr__(self) -> str:
        return (f"Registry(enabled={self.enabled}, "
                f"scopes={len(self.scopes)}, counters={len(self.counters)}, "
                f"gauges={len(self.gauges)})")
