"""Plain-text rendering of a registry — the observability analogue of
:mod:`repro.experiments.ascii_plots`.

The reproduction environment has no plotting or dashboard stack, so the
summary is an aligned ASCII table: scopes sorted by inclusive time (with
a block-character share bar for exclusive time), then counters, then
gauges. ``summary()`` is what ``python -m repro.cli bench --obs`` and any
instrumented driver print at exit.
"""

from __future__ import annotations

from repro.obs.registry import Registry

__all__ = ["summary_table"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _share_bar(fraction: float, width: int = 10) -> str:
    """Block-art bar for a [0, 1] share (idiom of ascii_plots.sparkline)."""
    fraction = min(max(fraction, 0.0), 1.0)
    full, rem = divmod(fraction * width, 1.0)
    bar = _BLOCKS[-1] * int(full)
    if rem > 0 and len(bar) < width:
        bar += _BLOCKS[int(rem * (len(_BLOCKS) - 1))]
    return bar.ljust(width)


def summary_table(registry: Registry) -> str:
    """Human-readable table of everything the registry recorded."""
    lines: list[str] = []
    if registry.scopes:
        name_w = max(len("scope"), *(len(n) for n in registry.scopes))
        total_self = sum(s.self_s for s in registry.scopes.values()) or 1.0
        lines.append(f"{'scope'.ljust(name_w)}  {'calls':>7} {'total_s':>10} "
                     f"{'self_s':>10} {'mean_s':>10}  self%")
        ordered = sorted(registry.scopes.values(),
                         key=lambda s: s.total_s, reverse=True)
        for s in ordered:
            share = s.self_s / total_self
            lines.append(f"{s.name.ljust(name_w)}  {s.n_calls:>7d} "
                         f"{s.total_s:>10.4f} {s.self_s:>10.4f} "
                         f"{s.mean_s:>10.4f}  |{_share_bar(share)}| "
                         f"{100.0 * share:5.1f}%")
    if registry.counters:
        if lines:
            lines.append("")
        name_w = max(len("counter"), *(len(n) for n in registry.counters))
        lines.append(f"{'counter'.ljust(name_w)}  {'value':>14} {'updates':>9}")
        for c in sorted(registry.counters.values(), key=lambda c: c.name):
            lines.append(f"{c.name.ljust(name_w)}  {c.value:>14.6g} "
                         f"{c.n_updates:>9d}")
    if registry.gauges:
        if lines:
            lines.append("")
        name_w = max(len("gauge"), *(len(n) for n in registry.gauges))
        lines.append(f"{'gauge'.ljust(name_w)}  {'last':>12} {'min':>12} "
                     f"{'max':>12} {'mean':>12}")
        for g in sorted(registry.gauges.values(), key=lambda g: g.name):
            lines.append(f"{g.name.ljust(name_w)}  {g.last:>12.6g} "
                         f"{g.min:>12.6g} {g.max:>12.6g} {g.mean:>12.6g}")
    return "\n".join(lines) if lines else "(registry is empty)"
