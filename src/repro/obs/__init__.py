"""repro.obs — lightweight observability: hierarchical timers, counters,
gauges, JSONL export and an ASCII summary (docs/OBSERVABILITY.md).

Module-level functions operate on a process-global :class:`Registry`
that is **disabled by default**; every instrumentation site in the
codebase goes through them, so with observability off the instrumented
code paths are behaviourally identical to uninstrumented ones (a single
attribute check per call, no allocations, no clock reads — guard-tested
against bitwise weight drift in tests/test_obs.py).

Usage::

    from repro import obs

    obs.enable()
    with obs.scope("train/epoch"):
        ...
        obs.counter_add("train/examples", batch)
    obs.gauge_set("train/examples_per_sec", rate)
    print(obs.summary())
    obs.export_jsonl("run.obs.jsonl")
"""

from __future__ import annotations

import functools

from repro.obs.registry import (
    NULL_SCOPE,
    Counter,
    Gauge,
    NullScope,
    Registry,
    ScopeStats,
)
from repro.obs.report import summary_table

__all__ = [
    "Registry", "ScopeStats", "Counter", "Gauge", "NullScope", "NULL_SCOPE",
    "get_registry", "enable", "disable", "enabled", "reset",
    "scope", "timed", "counter_add", "gauge_set",
    "summary", "summary_table", "export_jsonl",
]

#: The process-global registry all module-level helpers talk to.
_REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-global registry."""
    return _REGISTRY


def enable() -> None:
    """Turn recording on (off by default)."""
    _REGISTRY.enabled = True


def disable() -> None:
    """Turn recording off; already-recorded data is kept until reset()."""
    _REGISTRY.enabled = False


def enabled() -> bool:
    return _REGISTRY.enabled


def reset() -> None:
    """Clear all recorded data on the global registry."""
    _REGISTRY.reset()


def scope(name: str):
    """Timed region on the global registry (no-op scope when disabled)."""
    return _REGISTRY.scope(name)


def counter_add(name: str, amount: float = 1.0) -> None:
    _REGISTRY.counter_add(name, amount)


def gauge_set(name: str, value: float) -> None:
    _REGISTRY.gauge_set(name, value)


def timed(name=None):
    """Decorator timing each call as a scope named after the function.

    Works bare (``@timed``) or with an explicit path (``@timed("nas/ask")``).
    When disabled the wrapper short-circuits straight into the function.
    """
    def decorate(fn, label=None):
        label = label or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _REGISTRY.enabled:
                return fn(*args, **kwargs)
            with _REGISTRY.scope(label):
                return fn(*args, **kwargs)
        return wrapper

    if callable(name):  # bare @timed
        return decorate(name)
    return lambda fn: decorate(fn, name)


def summary() -> str:
    """ASCII summary table of the global registry."""
    return summary_table(_REGISTRY)


def export_jsonl(path_or_file) -> None:
    """JSONL dump of the global registry (schema: docs/OBSERVABILITY.md)."""
    _REGISTRY.export_jsonl(path_or_file)
