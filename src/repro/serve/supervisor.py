"""Worker-process lifecycle for the sharded serving router.

The supervisor owns the *processes*: it spawns each
:func:`repro.serve.worker.worker_main` engine worker, completes the
``hello`` handshake over its own loopback listener, and can terminate
or respawn any worker at any time. What flows over the accepted sockets
afterwards is the router's business (:mod:`repro.serve.router`).

Spawn protocol — chosen to be start-method agnostic and to make respawn
after a crash identical to first spawn:

1. the supervisor listens on an ephemeral loopback port;
2. each worker process is started with plain picklable arguments
   (worker id, registry root, the port, config dict, generation);
3. the worker connects back and sends ``{"type": "hello", "worker_id":
   ...}``; the supervisor matches the id and hands the socket over.

Spawns are serialized under a lock so a handshake can never be matched
to the wrong concurrently-connecting worker. A worker that does not
complete its handshake within ``spawn_timeout_s`` (crashed on import,
failed to load the bundle) is terminated and reported as a
:class:`RuntimeError` instead of hanging the router.

Like :class:`repro.hpc.parallel.ParallelEvaluator`, the ``fork`` start
method is preferred where available (workers inherit the parent's
imports and start in milliseconds), falling back to ``spawn``.
"""

from __future__ import annotations

import multiprocessing as mp
import socket
import threading
import time
from dataclasses import dataclass

from repro.serve.protocol import ProtocolError, read_frame
from repro.serve.worker import WorkerConfig, worker_main

__all__ = ["WorkerHandle", "WorkerSupervisor"]


@dataclass
class WorkerHandle:
    """One live engine worker: its process plus the handshaken socket."""

    worker_id: int
    process: "mp.process.BaseProcess"
    sock: socket.socket
    generation: int
    version: str

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerSupervisor:
    """Spawn, handshake, respawn and terminate engine worker processes.

    Parameters
    ----------
    registry_root:
        The shared :class:`~repro.serve.registry.ModelRegistry`
        directory every worker loads bundles from.
    worker_config:
        Engine tuning shipped to each worker.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available, else ``spawn``.
    spawn_timeout_s:
        Handshake deadline per spawned worker.
    """

    def __init__(self, registry_root, *,
                 worker_config: WorkerConfig | None = None,
                 start_method: str | None = None,
                 spawn_timeout_s: float = 20.0) -> None:
        if spawn_timeout_s <= 0:
            raise ValueError(f"spawn_timeout_s must be positive, "
                             f"got {spawn_timeout_s}")
        self.registry_root = str(registry_root)
        self.worker_config = worker_config or WorkerConfig()
        self.spawn_timeout_s = float(spawn_timeout_s)
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self._port = self._listener.getsockname()[1]
        self._closed = False

    @property
    def port(self) -> int:
        """The loopback port workers handshake on."""
        return self._port

    # -- spawning --------------------------------------------------------
    def spawn(self, worker_id: int, generation: int,
              version: str | None = None) -> WorkerHandle:
        """Start one worker and complete its handshake (serialized)."""
        if self._closed:
            raise RuntimeError("supervisor is closed")
        with self._lock:
            process = self._ctx.Process(
                target=worker_main,
                args=(worker_id, self.registry_root, self._port,
                      self.worker_config.as_dict(), generation, version),
                daemon=True, name=f"repro-serve-worker-{worker_id}")
            process.start()
            try:
                sock, hello = self._handshake(worker_id, process)
            except Exception:
                self._terminate_process(process)
                raise
        return WorkerHandle(worker_id=worker_id, process=process,
                            sock=sock,
                            generation=int(hello["generation"]),
                            version=str(hello["version"]))

    def _handshake(self, worker_id: int, process
                   ) -> tuple[socket.socket, dict]:
        deadline = time.monotonic() + self.spawn_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not process.is_alive() \
                    and process.exitcode is not None:
                state = "died during startup" if not process.is_alive() \
                    else "did not connect in time"
                raise RuntimeError(
                    f"worker {worker_id} {state} "
                    f"(exitcode={process.exitcode}); does the registry "
                    f"at {self.registry_root!r} have a loadable ACTIVE "
                    f"version?")
            self._listener.settimeout(min(max(remaining, 0.05), 0.5))
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            try:
                sock.settimeout(self.spawn_timeout_s)
                message = read_frame(sock.makefile("rb"))
                if message is None:
                    raise ProtocolError("worker closed before hello")
                hello, _ = message
                if hello.get("type") != "hello" \
                        or hello.get("worker_id") != worker_id:
                    raise ProtocolError(
                        f"unexpected handshake {hello!r} while waiting "
                        f"for worker {worker_id}")
                sock.settimeout(None)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock, hello
            except (ProtocolError, OSError):
                sock.close()
                raise

    # -- teardown --------------------------------------------------------
    @staticmethod
    def _terminate_process(process) -> None:
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck terminate
                process.kill()
                process.join(timeout=2.0)

    def terminate(self, handle: WorkerHandle) -> None:
        """Hard-stop one worker (its socket is closed as a side effect)."""
        self._terminate_process(handle.process)
        try:
            handle.sock.close()
        except OSError:
            pass

    def close(self) -> None:
        """Stop accepting handshakes (processes are terminated per-handle
        by the router, which owns them)."""
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
