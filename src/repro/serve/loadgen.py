"""Closed-loop load generator and SLO report for the forecast engine.

``run_loadgen`` drives a running :class:`~repro.serve.engine.ForecastEngine`
with ``clients`` concurrent closed-loop workers (each issues its next
request the moment the previous response lands — the standard
throughput-at-offered-concurrency harness) and aggregates per-request
wall-clock latencies into an :class:`SLOReport`: throughput plus
p50/p95/p99 tail latency, the numbers a serving SLO is written against.

Percentiles use the nearest-rank definition on the sorted sample — no
interpolation, so a report is exactly reproducible from its latency
sample. Results feed :mod:`repro.obs` gauges (``serve/loadgen/*``) and
the ``serve_*`` entries of BENCH_core.json.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.serve.engine import ForecastEngine

__all__ = ["SLOReport", "run_loadgen", "run_router_loadgen",
           "nearest_rank_percentile", "validate_slo_report",
           "SLO_REPORT_FORMAT", "SLO_REPORT_VERSION"]

#: Format tag / schema version of an exported SLO report.
SLO_REPORT_FORMAT = "repro-slo-report"
SLO_REPORT_VERSION = 1

#: Percentiles every report carries.
_PERCENTILES = (50.0, 95.0, 99.0)


def nearest_rank_percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty sample."""
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    n = len(sorted_values)
    if n == 0:
        raise ValueError("percentile of an empty sample")
    rank = max(1, math.ceil(q / 100.0 * n))
    return float(sorted_values[rank - 1])


@dataclass(frozen=True)
class SLOReport:
    """Aggregated outcome of one load-generation run."""

    clients: int
    n_requests: int
    n_errors: int
    duration_s: float
    throughput_rps: float
    latency_ms: dict = field(default_factory=dict)  # mean/p50/p95/p99/max
    engine: dict = field(default_factory=dict)      # engine.stats() snapshot

    def as_json(self) -> dict:
        """JSON-compatible export (schema: docs/SERVING.md)."""
        return {"format": SLO_REPORT_FORMAT, "version": SLO_REPORT_VERSION,
                "clients": self.clients, "n_requests": self.n_requests,
                "n_errors": self.n_errors, "duration_s": self.duration_s,
                "throughput_rps": self.throughput_rps,
                "latency_ms": dict(self.latency_ms),
                "engine": dict(self.engine)}

    def dump(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def table(self) -> str:
        """Human-readable summary block."""
        lat = self.latency_ms
        lines = [
            "SLO report",
            f"  clients          {self.clients}",
            f"  requests         {self.n_requests} "
            f"({self.n_errors} errors)",
            f"  duration         {self.duration_s * 1e3:10.2f} ms",
            f"  throughput       {self.throughput_rps:10.1f} req/s",
            f"  latency mean     {lat.get('mean', float('nan')):10.3f} ms",
        ]
        for q in _PERCENTILES:
            key = f"p{q:g}"
            lines.append(f"  latency {key:8s} "
                         f"{lat.get(key, float('nan')):10.3f} ms")
        lines.append(f"  latency max      "
                     f"{lat.get('max', float('nan')):10.3f} ms")
        if self.engine:
            lines.append(f"  mean batch size  "
                         f"{self.engine.get('mean_batch_size', 0.0):10.2f}")
            cache = self.engine.get("cache", {})
            lines.append(f"  cache hits/miss  "
                         f"{cache.get('hits', 0)}/{cache.get('misses', 0)}")
        return "\n".join(lines)


def validate_slo_report(data) -> None:
    """Schema-check an exported SLO report; raises ValueError on the
    first violation (used by the CI serve-smoke job)."""
    if not isinstance(data, dict):
        raise ValueError("SLO report must be a dict")
    if data.get("format") != SLO_REPORT_FORMAT:
        raise ValueError(f"not an SLO report (format {data.get('format')!r})")
    if data.get("version") != SLO_REPORT_VERSION:
        raise ValueError(f"unsupported SLO report version "
                         f"{data.get('version')!r}")
    for key in ("clients", "n_requests", "n_errors", "duration_s",
                "throughput_rps", "latency_ms", "engine"):
        if key not in data:
            raise ValueError(f"SLO report missing key {key!r}")
    lat = data["latency_ms"]
    for key in ("mean", "p50", "p95", "p99", "max"):
        value = lat.get(key)
        if not isinstance(value, (int, float)) or not math.isfinite(value) \
                or value < 0:
            raise ValueError(f"latency_ms.{key} must be finite and "
                             f"non-negative, got {value!r}")
    if not lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]:
        raise ValueError("latency percentiles must be monotone: "
                         f"p50={lat['p50']} p95={lat['p95']} "
                         f"p99={lat['p99']} max={lat['max']}")
    if data["n_requests"] > 0 and data["duration_s"] > 0 \
            and data["throughput_rps"] <= 0:
        raise ValueError("throughput_rps must be positive for a "
                         "non-empty run")


def run_loadgen(engine: ForecastEngine, windows, *, clients: int = 4,
                requests_per_client: int = 50,
                timeout_s: float | None = None) -> SLOReport:
    """Drive a running engine at closed-loop concurrency ``clients``.

    ``windows`` is an ``(n, window, n_modes)`` pool of request windows;
    each client walks the pool round-robin from its own offset, so with
    ``n >= clients * requests_per_client`` every request is distinct
    (cache-cold), while a smaller pool deliberately re-requests windows
    and exercises the cache. Shed and timed-out requests are counted as
    errors, not retried (the report shows the shed rate the
    configuration sustains).
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if requests_per_client < 1:
        raise ValueError(f"requests_per_client must be >= 1, "
                         f"got {requests_per_client}")
    pool = np.asarray(windows, dtype=np.float64)
    if pool.ndim != 3 or pool.shape[0] == 0:
        raise ValueError(f"windows must be a non-empty "
                         f"(n, window, n_modes) array, got {pool.shape}")
    if not engine.running:
        raise RuntimeError("engine is not running")

    latencies_ms: list[list[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        barrier.wait()
        for i in range(requests_per_client):
            window = pool[(index * requests_per_client + i) % pool.shape[0]]
            t0 = time.perf_counter()
            try:
                engine.forecast(window, timeout=timeout_s)
            except Exception:
                errors[index] += 1
                continue
            latencies_ms[index].append(
                (time.perf_counter() - t0) * 1e3)

    threads = [threading.Thread(target=client, args=(i,),
                                name=f"repro-loadgen-{i}")
               for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    t_start = time.perf_counter()
    for thread in threads:
        thread.join()
    duration_s = time.perf_counter() - t_start

    flat = sorted(lat for per_client in latencies_ms for lat in per_client)
    n_requests = clients * requests_per_client
    n_errors = sum(errors)
    n_served = len(flat)
    throughput = n_served / duration_s if duration_s > 0 else 0.0
    if flat:
        latency = {"mean": float(sum(flat) / n_served),
                   "max": float(flat[-1])}
        for q in _PERCENTILES:
            latency[f"p{q:g}"] = nearest_rank_percentile(flat, q)
    else:
        latency = {"mean": 0.0, "max": 0.0}
        latency.update({f"p{q:g}": 0.0 for q in _PERCENTILES})
    obs.gauge_set("serve/loadgen/throughput_rps", throughput)
    obs.gauge_set("serve/loadgen/p95_ms", latency["p95"])
    report = SLOReport(clients=clients, n_requests=n_requests,
                       n_errors=n_errors, duration_s=duration_s,
                       throughput_rps=throughput, latency_ms=latency,
                       engine=engine.stats())
    validate_slo_report(report.as_json())
    return report


def _summarize(latencies_ms, errors, *, clients: int,
               requests_per_client: int, duration_s: float,
               stats: dict) -> SLOReport:
    """Aggregate per-client samples into a validated report."""
    flat = sorted(lat for per_client in latencies_ms for lat in per_client)
    n_served = len(flat)
    throughput = n_served / duration_s if duration_s > 0 else 0.0
    if flat:
        latency = {"mean": float(sum(flat) / n_served),
                   "max": float(flat[-1])}
        for q in _PERCENTILES:
            latency[f"p{q:g}"] = nearest_rank_percentile(flat, q)
    else:
        latency = {"mean": 0.0, "max": 0.0}
        latency.update({f"p{q:g}": 0.0 for q in _PERCENTILES})
    report = SLOReport(clients=clients,
                       n_requests=clients * requests_per_client,
                       n_errors=sum(errors), duration_s=duration_s,
                       throughput_rps=throughput, latency_ms=latency,
                       engine=stats)
    validate_slo_report(report.as_json())
    return report


def _router_client_main(address, pool_bytes: bytes, shape, index: int,
                        requests_per_client: int,
                        timeout_s: float | None, barrier,
                        results_queue) -> None:
    """One closed-loop client *process* of :func:`run_router_loadgen`.

    Module-level (picklable) so the process mode works under any
    multiprocessing start method. Connects first, then synchronizes on
    the barrier so every client opens fire together.
    """
    from repro.serve.router import RouterClient
    pool = np.frombuffer(pool_bytes, dtype=np.float64).reshape(shape)
    latencies: list[float] = []
    errors = 0
    try:
        with RouterClient(tuple(address),
                          timeout_s=timeout_s or 30.0) as client:
            barrier.wait()
            for i in range(requests_per_client):
                window = pool[(index * requests_per_client + i)
                              % shape[0]]
                t0 = time.perf_counter()
                try:
                    client.forecast(window, timeout=timeout_s)
                except Exception:
                    errors += 1
                    continue
                latencies.append((time.perf_counter() - t0) * 1e3)
    except Exception:
        # Connection never came up: report every request as an error
        # rather than hanging the parent on a missing queue entry.
        errors = requests_per_client - len(latencies)
        try:
            barrier.abort()
        except Exception:
            pass
    results_queue.put((index, latencies, errors))


def run_router_loadgen(address, windows, *, clients: int = 4,
                       requests_per_client: int = 50,
                       timeout_s: float | None = None,
                       processes: bool = False) -> SLOReport:
    """Closed-loop load against a :class:`~repro.serve.router.ForecastRouter`
    socket at ``address``.

    Same harness shape as :func:`run_loadgen`, but the clients talk the
    wire protocol — each owns one TCP connection, so the router's
    accept/framing/dispatch path is on the measured critical path.
    With ``processes=True`` every client is a separate OS process
    (GIL-free send/receive loops); otherwise clients are threads in
    this process. The report's ``engine`` field carries the router's
    post-run :meth:`~repro.serve.router.ForecastRouter.stats` snapshot
    (per-shard queue depths and engine stats).
    """
    from repro.serve.router import RouterClient
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if requests_per_client < 1:
        raise ValueError(f"requests_per_client must be >= 1, "
                         f"got {requests_per_client}")
    pool = np.ascontiguousarray(windows, dtype=np.float64)
    if pool.ndim != 3 or pool.shape[0] == 0:
        raise ValueError(f"windows must be a non-empty "
                         f"(n, window, n_modes) array, got {pool.shape}")

    latencies_ms: list[list[float]] = [[] for _ in range(clients)]
    errors = [0] * clients

    if processes:
        import multiprocessing as mp
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        barrier = ctx.Barrier(clients + 1)
        results_queue = ctx.Queue()
        procs = [ctx.Process(target=_router_client_main,
                             args=(tuple(address), pool.tobytes(),
                                   pool.shape, i, requests_per_client,
                                   timeout_s, barrier, results_queue),
                             daemon=True,
                             name=f"repro-router-loadgen-{i}")
                 for i in range(clients)]
        for proc in procs:
            proc.start()
        try:
            barrier.wait(timeout=60.0)
        except threading.BrokenBarrierError:
            pass  # a client aborted; its queue entry reports the errors
        t_start = time.perf_counter()
        for _ in range(clients):
            index, lats, errs = results_queue.get(timeout=600.0)
            latencies_ms[index] = lats
            errors[index] = errs
        duration_s = time.perf_counter() - t_start
        for proc in procs:
            proc.join(timeout=10.0)
    else:
        barrier = threading.Barrier(clients + 1)

        def client_loop(index: int) -> None:
            with RouterClient(address,
                              timeout_s=timeout_s or 30.0) as client:
                barrier.wait()
                for i in range(requests_per_client):
                    window = pool[(index * requests_per_client + i)
                                  % pool.shape[0]]
                    t0 = time.perf_counter()
                    try:
                        client.forecast(window, timeout=timeout_s)
                    except Exception:
                        errors[index] += 1
                        continue
                    latencies_ms[index].append(
                        (time.perf_counter() - t0) * 1e3)

        threads = [threading.Thread(target=client_loop, args=(i,),
                                    name=f"repro-router-loadgen-{i}")
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        barrier.wait()
        t_start = time.perf_counter()
        for thread in threads:
            thread.join()
        duration_s = time.perf_counter() - t_start

    try:
        with RouterClient(address, timeout_s=timeout_s or 30.0) as probe:
            stats = probe.stats()
    except Exception:
        stats = {}
    report = _summarize(latencies_ms, errors, clients=clients,
                        requests_per_client=requests_per_client,
                        duration_s=duration_s, stats=stats)
    obs.gauge_set("serve/router_loadgen/throughput_rps",
                  report.throughput_rps)
    obs.gauge_set("serve/router_loadgen/p95_ms",
                  report.latency_ms["p95"])
    return report
