"""Consistent-hash request sharding for the serving router.

The router shards the SHA-256 response cache across its engine workers
instead of duplicating it: a request's cache key (see
:func:`repro.serve.cache.window_digest`) always lands on the same worker,
so every worker's LRU holds a disjoint slice of the key space and the
fleet's effective cache capacity is the *sum* of the shards.

Plain ``hash(key) % N`` would do that too — until N changes, at which
point almost every key moves and the whole fleet's cache goes cold. A
consistent-hash ring places ``replicas`` virtual points per shard on a
64-bit circle and assigns a key to the first point at or after its own
hash: growing N -> N+1 moves only ~1/(N+1) of the keys (those closest to
the new shard's points), and everything else stays warm.

All hashing is SHA-256 over explicit strings — **no** Python ``hash()``,
whose value changes per process under ``PYTHONHASHSEED`` randomization.
Assignment is therefore identical across processes, runs and machines,
which the differential suites rely on (tests/test_serve_hashring.py).
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["ConsistentHashRing"]

#: Virtual points per shard. 64 keeps the max/mean shard-load ratio
#: within a few percent for realistic key volumes while the ring stays
#: a few hundred entries — bisect lookup is ~'100 ns.
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    """A deterministic 64-bit position on the ring."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Map request keys onto shards ``0..n_shards-1``.

    Parameters
    ----------
    n_shards:
        Number of shards (engine workers).
    replicas:
        Virtual points per shard; more replicas -> smoother balance,
        larger ring.
    """

    def __init__(self, n_shards: int, *,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        points: dict[int, int] = {}
        for shard in range(self.n_shards):
            for replica in range(self.replicas):
                position = _point(f"shard:{shard}:{replica}")
                # A 64-bit collision between labels is vanishingly rare;
                # resolve to the lowest shard id so ties are deterministic.
                if position in points:
                    points[position] = min(points[position], shard)
                else:
                    points[position] = shard
        self._positions = sorted(points)
        self._shards = [points[p] for p in self._positions]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (any string; typically a cache-key
        hex digest)."""
        position = _point(key)
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):  # wrap past the last point
            index = 0
        return self._shards[index]

    def __len__(self) -> int:
        return len(self._positions)

    def __repr__(self) -> str:
        return (f"ConsistentHashRing(n_shards={self.n_shards}, "
                f"replicas={self.replicas})")
