"""Sharded serving router: one socket front, N engine worker processes.

``ForecastRouter`` is the production-scale face of docs/SERVING.md. It
listens on a loopback TCP port, speaks the length-prefixed framing of
:mod:`repro.serve.protocol`, and fans each forecast request out to one
of ``n_workers`` engine worker processes
(:mod:`repro.serve.worker`), each serving the ACTIVE bundle of the
shared :class:`~repro.serve.registry.ModelRegistry`:

* **Sharding** — requests route by consistent hash
  (:mod:`repro.serve.hashring`) of their SHA-256 cache key, so the
  response cache *shards* across workers instead of duplicating: a
  repeated window always lands on the worker whose LRU already holds
  it.
* **Zero-downtime promote** — :meth:`ForecastRouter.promote` atomically
  repoints the registry's ACTIVE, then rolls the workers one at a time:
  each drains its in-flight requests, swaps to the new bundle and bumps
  its generation tag while every other shard keeps serving. Responses
  carry ``(generation, version)``, so a client can attribute each one
  to exactly one bundle — there is no instant at which a response's
  provenance is ambiguous.
* **Fault handling** — a worker that dies mid-request fails fast (the
  connection EOFs), is respawned, and the request is retried on the
  fresh process up to ``max_retries`` times before surfacing as a typed
  :class:`~repro.serve.protocol.WorkerUnavailable`. Engine backpressure
  (:class:`~repro.serve.engine.EngineOverloaded`) and timeouts are
  *deliberate* signals and propagate to the client unretried.
* **Shutdown** — :meth:`ForecastRouter.close` fails every in-flight
  request with the typed :class:`~repro.serve.protocol.RouterShutdown`;
  a client socket is always answered, never deadlocked.

``RouterClient`` is the matching client: ``forecast(window)`` returns a
:class:`RoutedForecast` whose ``output`` is **bitwise identical** to a
serial one-at-a-time forecast of the tagged bundle
(tests/test_router_equivalence.py), and wire errors re-raise as the
same typed exceptions the in-process engine uses.

Observability (``router/*``): request/error/retry/respawn counters,
generation-swap and rebalance counts, and per-shard queue-depth gauges
refreshed by :meth:`ForecastRouter.stats`.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.serve.cache import window_digest
from repro.serve.engine import ForecastTimeout
from repro.serve.hashring import ConsistentHashRing
from repro.serve.protocol import (ERR_INTERNAL, ProtocolError,
                                  RouterShutdown, WorkerUnavailable,
                                  code_for, encode_frame, exception_for,
                                  read_frame)
from repro.serve.registry import ModelRegistry
from repro.serve.supervisor import WorkerHandle, WorkerSupervisor
from repro.serve.worker import WorkerConfig

__all__ = ["RouterConfig", "ForecastRouter", "RouterClient",
           "RoutedForecast"]


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs of a :class:`ForecastRouter`.

    Parameters
    ----------
    n_workers:
        Engine worker processes (= cache shards).
    max_retries:
        How many times one request is re-dispatched after its shard
        worker *died* (each time onto a freshly respawned process).
        Backpressure and timeouts are never retried.
    request_timeout_s:
        Router-side bound on one worker round-trip — the backstop that
        turns a wedged worker into a typed timeout at the edge.
    promote_timeout_s:
        Bound on one worker's drain+reload during a promote.
    hash_replicas:
        Virtual points per shard on the consistent-hash ring.
    """

    n_workers: int = 2
    max_retries: int = 2
    request_timeout_s: float = 30.0
    promote_timeout_s: float = 60.0
    hash_replicas: int = 64

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, "
                             f"got {self.n_workers}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, "
                             f"got {self.max_retries}")
        if self.request_timeout_s <= 0:
            raise ValueError(f"request_timeout_s must be positive, "
                             f"got {self.request_timeout_s}")
        if self.promote_timeout_s <= 0:
            raise ValueError(f"promote_timeout_s must be positive, "
                             f"got {self.promote_timeout_s}")
        if self.hash_replicas < 1:
            raise ValueError(f"hash_replicas must be >= 1, "
                             f"got {self.hash_replicas}")


class _WorkerDied(RuntimeError):
    """Internal signal: the shard's worker process went away mid-flight."""


class _RoundTrip:
    """One pending router->worker exchange, matched by message id."""

    __slots__ = ("event", "header", "body", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.header: dict | None = None
        self.body = None
        self.error: BaseException | None = None

    def resolve(self, header: dict, body) -> None:
        self.header, self.body = header, body
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


class _ShardConnection:
    """Pipelined request/response channel to one engine worker.

    Many router threads write (id-tagged, under a lock); one receiver
    thread reads and resolves the matching round-trips. Worker death is
    an EOF here: every pending round-trip fails with :class:`_WorkerDied`
    and the connection marks itself dead so the router can respawn."""

    def __init__(self, handle: WorkerHandle) -> None:
        self.handle = handle
        self.worker_id = handle.worker_id
        self._sock = handle.sock
        self._reader = handle.sock.makefile("rb")
        self._write_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _RoundTrip] = {}
        self._next_id = 0
        self._dead = threading.Event()
        self._fail_error: BaseException = _WorkerDied(
            f"worker {self.worker_id} connection lost")
        self._receiver = threading.Thread(
            target=self._receive_loop, daemon=True,
            name=f"repro-router-recv-{self.worker_id}")
        self._receiver.start()

    @property
    def dead(self) -> bool:
        return self._dead.is_set()

    def request(self, header: dict, body=None,
                timeout: float | None = None) -> tuple[dict, object]:
        """Send one message and wait for its id-matched reply."""
        if self._dead.is_set():
            raise self._fail_error
        roundtrip = _RoundTrip()
        with self._pending_lock:
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = roundtrip
        try:
            frame = encode_frame({**header, "id": request_id}, body)
            with self._write_lock:
                self._sock.sendall(frame)
        except OSError:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            self._mark_dead()
            raise _WorkerDied(
                f"worker {self.worker_id} socket broke on send") from None
        if not roundtrip.event.wait(timeout):
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise ForecastTimeout(
                f"worker {self.worker_id} did not answer within "
                f"{timeout:g}s")
        if roundtrip.error is not None:
            raise roundtrip.error
        return roundtrip.header, roundtrip.body

    def _receive_loop(self) -> None:
        try:
            while True:
                message = read_frame(self._reader)
                if message is None:
                    break
                header, body = message
                with self._pending_lock:
                    roundtrip = self._pending.pop(header.get("id"), None)
                if roundtrip is not None:
                    roundtrip.resolve(header, body)
        except (ProtocolError, OSError, ValueError):
            pass
        self._mark_dead()

    def _mark_dead(self, error: BaseException | None = None) -> None:
        if error is not None:
            self._fail_error = error
        self._dead.set()
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for roundtrip in pending:
            roundtrip.fail(self._fail_error)

    def close(self, error: BaseException | None = None) -> None:
        """Fail all pending round-trips and drop the socket."""
        self._mark_dead(error)
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class ForecastRouter:
    """Socket-level serving front over sharded engine workers.

    Parameters
    ----------
    registry_root:
        Directory of the shared model registry; must have an ACTIVE
        version by :meth:`start` time.
    config / overrides:
        Router tuning (individual :class:`RouterConfig` fields may be
        passed as keyword arguments instead, mirroring
        :class:`~repro.serve.engine.ForecastEngine`).
    worker_config:
        Engine tuning shipped to every worker process.

    Usage::

        with ForecastRouter("registry", n_workers=4) as router:
            with RouterClient(router.address) as client:
                routed = client.forecast(window)
    """

    def __init__(self, registry_root, *,
                 config: RouterConfig | None = None,
                 worker_config: WorkerConfig | None = None,
                 **overrides) -> None:
        if config is None:
            config = RouterConfig(**overrides)
        elif overrides:
            raise TypeError("pass either config= or field overrides, "
                            "not both")
        self.config = config
        self.registry = ModelRegistry(registry_root)
        self.worker_config = worker_config or WorkerConfig()
        self._ring = ConsistentHashRing(config.n_workers,
                                        replicas=config.hash_replicas)
        self._supervisor: WorkerSupervisor | None = None
        self._shards: dict[int, _ShardConnection] = {}
        self._shard_locks = {i: threading.Lock()
                             for i in range(config.n_workers)}
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._client_threads: set[threading.Thread] = set()
        self._client_conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self._closing = threading.Event()
        self._state_lock = threading.Lock()
        self._generation = 1
        self._version: str | None = None
        self._promote_lock = threading.Lock()
        self._counts_lock = threading.Lock()
        self._counts = {"requests": 0, "errors": 0, "retries": 0,
                        "respawns": 0, "generation_swaps": 0,
                        "rebalances": 0}

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._listener is not None and not self._closing.is_set()

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` clients connect to."""
        if self._listener is None:
            raise RuntimeError("router is not running (call start())")
        return self._listener.getsockname()[:2]

    def start(self) -> "ForecastRouter":
        """Spawn the worker fleet and open the client listener."""
        if self._listener is not None:
            raise RuntimeError("router already started")
        active = self.registry.active()
        if active is None:
            raise ValueError(
                f"registry {self.registry.root} has no active version "
                f"(publish and promote one first)")
        self._version = active
        self._supervisor = WorkerSupervisor(
            self.registry.root, worker_config=self.worker_config)
        try:
            for shard_id in range(self.config.n_workers):
                handle = self._supervisor.spawn(shard_id,
                                                self._generation)
                self._shards[shard_id] = _ShardConnection(handle)
        except Exception:
            self._teardown_workers()
            self._supervisor.close()
            self._supervisor = None
            raise
        self._count("rebalances")  # the ring is (re)built: keys assigned
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name="repro-router-accept")
        self._accept_thread.start()
        obs.gauge_set("router/workers", self.config.n_workers)
        return self

    def __enter__(self) -> "ForecastRouter":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Stop serving: fail in-flight requests with typed errors, then
        stop workers and close every socket."""
        if self._closing.is_set():
            return
        self._closing.set()
        # 1. Fail router->worker round-trips: blocked client handlers
        #    wake with RouterShutdown and answer their sockets.
        shutdown = RouterShutdown(
            "router shut down before the request was served")
        for shard in list(self._shards.values()):
            shard.close(shutdown)
        # 2. Stop accepting new clients.
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        # 3. Give handlers a moment to flush their error frames, then
        #    drop the client sockets.
        for thread in list(self._client_threads):
            thread.join(timeout=5.0)
        with self._conns_lock:
            conns = list(self._client_conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        self._teardown_workers()
        if self._supervisor is not None:
            self._supervisor.close()

    def _teardown_workers(self) -> None:
        for shard_id, shard in list(self._shards.items()):
            self._supervisor.terminate(shard.handle)
            shard.close()
        self._shards.clear()

    # -- state -----------------------------------------------------------
    def _serving_state(self) -> tuple[int, str]:
        with self._state_lock:
            return self._generation, self._version

    def _count(self, name: str, amount: int = 1) -> None:
        with self._counts_lock:
            self._counts[name] += amount
        obs.counter_add(f"router/{name}", amount)

    def shard_for(self, window) -> int:
        """Which shard a request window routes to right now (ops and
        test introspection)."""
        arr = np.ascontiguousarray(window, dtype=np.float64)
        _, version = self._serving_state()
        return self._ring.shard_for(window_digest(version, arr))

    def worker_pids(self) -> dict[int, int | None]:
        """shard id -> worker process pid (fault-injection hooks)."""
        return {shard_id: shard.handle.pid
                for shard_id, shard in sorted(self._shards.items())}

    # -- routing ---------------------------------------------------------
    def _revive(self, shard_id: int, dead: _ShardConnection) -> None:
        """Respawn a shard's worker; safe to race from many handlers."""
        with self._shard_locks[shard_id]:
            current = self._shards.get(shard_id)
            if current is not dead or not current.dead:
                return  # another handler already revived it
            self._supervisor.terminate(dead.handle)
            generation, _ = self._serving_state()
            handle = self._supervisor.spawn(shard_id, generation)
            self._shards[shard_id] = _ShardConnection(handle)
            self._count("respawns")

    def _route(self, window: np.ndarray) -> tuple[dict, np.ndarray]:
        """One forecast through its shard, with bounded retry-on-respawn."""
        self._count("requests")
        deaths = 0
        while True:
            if self._closing.is_set():
                raise RouterShutdown(
                    "router shut down before the request was served")
            generation, version = self._serving_state()
            key = window_digest(version, window)
            shard_id = self._ring.shard_for(key)
            shard = self._shards[shard_id]
            try:
                header, body = shard.request(
                    {"type": "forecast"}, window,
                    timeout=self.config.request_timeout_s)
            except _WorkerDied:
                deaths += 1
                if self._closing.is_set():
                    self._count("errors")
                    raise RouterShutdown(
                        "router shut down before the request was "
                        "served") from None
                if deaths > self.config.max_retries:
                    self._count("errors")
                    raise WorkerUnavailable(
                        f"shard {shard_id} worker died {deaths} times "
                        f"serving one request; retries exhausted "
                        f"(max_retries={self.config.max_retries})"
                        ) from None
                self._revive(shard_id, shard)
                self._count("retries")
                continue
            except (ForecastTimeout, RouterShutdown):
                self._count("errors")
                raise
            if header.get("type") == "error":
                # Deliberate worker-side signal (overload, timeout,
                # shutdown, bad request): propagate typed, never retry.
                self._count("errors")
                raise exception_for(header.get("code", ERR_INTERNAL),
                                    header.get("message", "worker error"))
            return header, body

    # -- promote ---------------------------------------------------------
    def promote(self, name: str) -> None:
        """Zero-downtime promote: atomically repoint ACTIVE, then roll
        every worker through drain+reload while the others keep serving.

        A worker that crashes mid-reload is respawned — the fresh
        process loads the already-promoted ACTIVE at the new generation,
        so the fleet can never end up torn between generations
        (tests/test_router_faults.py).
        """
        with self._promote_lock:
            generation, _ = self._serving_state()
            new_generation = generation + 1
            self.registry.promote(name)  # raises on unknown version
            # Revived workers must come up on the new generation even
            # before the roll completes: publish it as the spawn target.
            with self._state_lock:
                self._generation, self._version = new_generation, name
            for shard_id in sorted(self._shards):
                self._roll_shard(shard_id, new_generation)
            self._count("generation_swaps")
            obs.gauge_set("router/generation", new_generation)

    def _roll_shard(self, shard_id: int, new_generation: int) -> None:
        while not self._closing.is_set():
            shard = self._shards[shard_id]
            if shard.handle.generation == new_generation:
                return  # respawned straight onto the new generation
            try:
                header, _ = shard.request(
                    {"type": "reload", "generation": new_generation},
                    timeout=self.config.promote_timeout_s)
            except _WorkerDied:
                # Crash during promote: the respawn loads the new ACTIVE
                # at the new generation — reload accomplished either way.
                self._revive(shard_id, shard)
                continue
            except ForecastTimeout:
                raise RuntimeError(
                    f"shard {shard_id} did not drain+reload within "
                    f"{self.config.promote_timeout_s:g}s during promote")
            if header.get("type") != "reloaded":
                raise RuntimeError(
                    f"shard {shard_id} answered reload with "
                    f"{header!r}")
            shard.handle.generation = int(header["generation"])
            shard.handle.version = str(header["version"])
            return

    # -- client serving --------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(target=self._serve_client,
                                      args=(conn,), daemon=True,
                                      name="repro-router-client")
            with self._conns_lock:
                self._client_conns.add(conn)
            self._client_threads.add(thread)
            thread.start()

    def _serve_client(self, conn: socket.socket) -> None:
        reader = conn.makefile("rb")
        try:
            while not self._closing.is_set():
                try:
                    message = read_frame(reader)
                except ProtocolError as error:
                    # Framing is broken; answer once and hang up rather
                    # than guessing at resynchronization.
                    self._send_client(conn, {
                        "type": "error", "id": None,
                        "code": ERR_INTERNAL,
                        "message": f"protocol error: {error}"})
                    break
                except OSError:
                    break
                if message is None:
                    break
                header, body = message
                request_id = header.get("id")
                kind = header.get("type")
                if kind == "forecast":
                    self._answer_forecast(conn, request_id, body)
                elif kind == "stats":
                    self._send_client(conn, {"type": "stats",
                                             "id": request_id,
                                             **self.stats()})
                else:
                    self._send_client(conn, {
                        "type": "error", "id": request_id,
                        "code": "bad-request",
                        "message": f"unknown message type {kind!r}"})
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._conns_lock:
                self._client_conns.discard(conn)
            self._client_threads.discard(threading.current_thread())

    def _answer_forecast(self, conn, request_id, body) -> None:
        try:
            if body is None:
                raise ValueError("forecast request carries no window "
                                 "array")
            window = np.ascontiguousarray(body, dtype=np.float64)
            header, output = self._route(window)
        except Exception as error:
            self._send_client(conn, {"type": "error", "id": request_id,
                                     "code": code_for(error),
                                     "message": str(error)})
            return
        self._send_client(conn, {"type": "response", "id": request_id,
                                 "generation": header["generation"],
                                 "version": header["version"],
                                 "worker_id": header.get("worker_id")},
                          output)

    @staticmethod
    def _send_client(conn, header: dict, body=None) -> None:
        try:
            conn.sendall(encode_frame(header, body))
        except OSError:
            pass  # client went away; its handler loop exits on read

    # -- introspection ---------------------------------------------------
    def stats(self) -> dict:
        """Router counters plus a per-shard statistics round-trip."""
        generation, version = self._serving_state()
        with self._counts_lock:
            counts = dict(self._counts)
        shards = []
        for shard_id, shard in sorted(self._shards.items()):
            entry = {"worker_id": shard_id, "pid": shard.handle.pid,
                     "alive": shard.handle.alive and not shard.dead}
            try:
                header, _ = shard.request({"type": "stats"}, timeout=5.0)
                entry.update(
                    generation=header.get("generation"),
                    version=header.get("version"),
                    queue_depth=header.get("queue_depth"),
                    engine=header.get("engine"))
                obs.gauge_set(f"router/shard{shard_id}/queue_depth",
                              header.get("queue_depth") or 0)
            except (_WorkerDied, ForecastTimeout):
                entry["alive"] = False
            shards.append(entry)
        return {"generation": generation, "version": version,
                "n_workers": self.config.n_workers, **counts,
                "shards": shards}

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (f"ForecastRouter(n_workers={self.config.n_workers}, "
                f"version={self._version!r}, "
                f"generation={self._generation}, {state})")


@dataclass(frozen=True)
class RoutedForecast:
    """One routed response: the forecast plus its provenance tags."""

    output: np.ndarray
    version: str
    generation: int
    worker_id: int | None


class RouterClient:
    """Synchronous client of a :class:`ForecastRouter` socket.

    One connection, one request at a time (closed-loop clients each own
    their connection). Wire errors re-raise as the typed exceptions of
    the in-process engine (:class:`EngineOverloaded`,
    :class:`ForecastTimeout`, ...) plus :class:`RouterShutdown` /
    :class:`WorkerUnavailable`.
    """

    def __init__(self, address: tuple[str, int], *,
                 timeout_s: float = 30.0) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, "
                             f"got {timeout_s}")
        self.timeout_s = float(timeout_s)
        self._sock = socket.create_connection(address, timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0

    def _exchange(self, header: dict, body=None,
                  timeout: float | None = None) -> tuple[dict, object]:
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            self._sock.settimeout(self.timeout_s if timeout is None
                                  else timeout)
            try:
                self._sock.sendall(
                    encode_frame({**header, "id": request_id}, body))
                message = read_frame(self._reader)
            except socket.timeout:
                raise ForecastTimeout(
                    f"router did not answer within "
                    f"{timeout or self.timeout_s:g}s") from None
        if message is None:
            raise RouterShutdown("router closed the connection")
        reply, reply_body = message
        if reply.get("type") == "error":
            raise exception_for(reply.get("code", ERR_INTERNAL),
                                reply.get("message", "router error"))
        return reply, reply_body

    def forecast(self, window, timeout: float | None = None
                 ) -> RoutedForecast:
        """One forecast round-trip; raises typed errors on failure."""
        arr = np.ascontiguousarray(window, dtype=np.float64)
        reply, output = self._exchange({"type": "forecast"}, arr,
                                       timeout=timeout)
        return RoutedForecast(output=output,
                              version=str(reply["version"]),
                              generation=int(reply["generation"]),
                              worker_id=reply.get("worker_id"))

    def stats(self) -> dict:
        """The router's :meth:`ForecastRouter.stats` snapshot."""
        reply, _ = self._exchange({"type": "stats"})
        return {k: v for k, v in reply.items()
                if k not in ("type", "id")}

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RouterClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
