"""Engine worker process of the sharded serving router.

One worker = one OS process wrapping one micro-batching
:class:`~repro.serve.engine.ForecastEngine` over the bundle it loaded
from the shared :class:`~repro.serve.registry.ModelRegistry` (the ACTIVE
version unless told otherwise). The process connects *back* to the
router's worker listener — spawn-method agnostic, and respawn after a
crash is just another connect — identifies itself with a ``hello``
frame, then serves the message protocol of :mod:`repro.serve.protocol`:

``forecast``
    Submit the request window to the engine; answer with the forecast
    tagged ``(generation, version)``, or a typed wire error
    (``overloaded`` / ``timeout`` / ``shutdown`` / ``bad-request``).
    Requests pipeline: the reader loop submits and a small thread pool
    waits out and writes completions, so one slow forecast never blocks
    the ones batched behind it.

``reload``
    The zero-downtime promote step: **drain** (wait until every
    already-accepted request has been answered — the reader loop itself
    is the barrier, no new work is accepted while reloading), stop the
    old engine, load the new ACTIVE bundle, start a fresh engine and
    acknowledge with the new ``(generation, version)``. In-flight
    responses keep their old generation tag; everything after the ack
    carries the new one — a client can attribute every response to
    exactly one bundle (tests/test_router_equivalence.py).

``stats`` / ``shutdown``
    Engine statistics snapshot; orderly stop (queued requests fail with
    the typed :class:`~repro.serve.engine.EngineStopped` -> ``shutdown``
    wire errors, never silence).

The engine serves under ``batch_invariant()`` exactly as in
single-process mode, and responses travel as raw float64 bytes — so a
routed response is **bitwise identical** to a serial one-at-a-time
forecast of the same bundle, which is the router's differential
contract.
"""

from __future__ import annotations

import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass

from repro.serve.engine import EngineConfig, EngineOverloaded, \
    EngineStopped, ForecastEngine, ForecastTimeout
from repro.serve.protocol import code_for, encode_frame, read_frame
from repro.serve.registry import ModelRegistry

__all__ = ["WorkerConfig", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Engine tuning shipped to every worker process (plain picklable
    fields; see :class:`~repro.serve.engine.EngineConfig` for semantics).

    ``request_timeout_s`` bounds one forecast's wait inside the worker —
    it becomes the engine's ``default_timeout_s``, and its expiry
    surfaces at the client as a typed ``timeout`` error rather than a
    socket stall. ``pace_s`` is the benchmark service-time floor
    (see ``EngineConfig.pace_s``).
    """

    max_batch: int = 8
    max_queue: int = 64
    cache_entries: int = 256
    request_timeout_s: float = 10.0
    pace_s: float = 0.0

    def __post_init__(self) -> None:
        # EngineConfig re-validates; checking here fails fast in the
        # parent instead of a silent child exit.
        self.engine_config()

    def engine_config(self) -> EngineConfig:
        return EngineConfig(max_batch=self.max_batch,
                            max_queue=self.max_queue,
                            default_timeout_s=self.request_timeout_s,
                            cache_entries=self.cache_entries,
                            pace_s=self.pace_s)

    def as_dict(self) -> dict:
        return asdict(self)


def worker_main(worker_id: int, registry_root: str, port: int,
                config: dict | WorkerConfig | None = None,
                generation: int = 1,
                version: str | None = None) -> None:
    """Blocking entry point of one engine worker process.

    ``config`` may be a :class:`WorkerConfig` or its ``as_dict()`` form
    (what crosses the spawn boundary). ``version=None`` loads the
    registry's ACTIVE version. Exits when the router closes the
    connection, on a ``shutdown`` message, or if the socket breaks.
    """
    if isinstance(config, dict):
        config = WorkerConfig(**config)
    elif config is None:
        config = WorkerConfig()
    _EngineWorker(worker_id, registry_root, port, config, generation,
                  version).run()


class _EngineWorker:
    """The in-process implementation behind :func:`worker_main`."""

    def __init__(self, worker_id: int, registry_root: str, port: int,
                 config: WorkerConfig, generation: int,
                 version: str | None) -> None:
        self.worker_id = int(worker_id)
        self.registry = ModelRegistry(registry_root)
        self.port = int(port)
        self.config = config
        self.generation = int(generation)
        self._start_version = version
        self._engine: ForecastEngine | None = None
        self._version: str | None = None
        self._sock: socket.socket | None = None
        self._write_lock = threading.Lock()
        self._outstanding = 0
        self._drained = threading.Condition()

    # -- engine lifecycle ------------------------------------------------
    def _load_engine(self, version: str | None) -> None:
        name, emulator = self.registry.load(version)
        self._engine = ForecastEngine(emulator, version=name,
                                      config=self.config.engine_config()
                                      ).start()
        self._version = name

    # -- transport -------------------------------------------------------
    def _send(self, header: dict, body=None) -> None:
        frame = encode_frame(header, body)
        try:
            with self._write_lock:
                self._sock.sendall(frame)
        except OSError:
            # The router is gone; the reader loop will notice EOF and
            # wind the process down — nothing useful to do here.
            pass

    def _send_error(self, request_id, error: BaseException) -> None:
        self._send({"type": "error", "id": request_id,
                    "code": code_for(error), "message": str(error),
                    "worker_id": self.worker_id})

    # -- request handling ------------------------------------------------
    def _await_forecast(self, request_id, pending, generation: int,
                        version: str) -> None:
        """Wait out one admitted request and write its response.

        Runs on the waiter pool; admission (and its EngineOverloaded
        shed) already happened synchronously in the reader loop, so the
        pool only ever holds requests the engine accepted."""
        try:
            try:
                output = pending.result(self.config.request_timeout_s)
            except (ForecastTimeout, EngineStopped,
                    ValueError, RuntimeError) as error:
                self._send_error(request_id, error)
                return
            self._send({"type": "response", "id": request_id,
                        "generation": generation, "version": version,
                        "worker_id": self.worker_id}, output)
        finally:
            with self._drained:
                self._outstanding -= 1
                if self._outstanding == 0:
                    self._drained.notify_all()

    def _handle_reload(self, request_id, new_generation: int) -> None:
        """Drain + swap: the promote step (docs/SERVING.md)."""
        with self._drained:
            while self._outstanding > 0:
                self._drained.wait(timeout=0.1)
        self._engine.stop()
        self._load_engine(None)  # whatever ACTIVE points at now
        self.generation = int(new_generation)
        self._send({"type": "reloaded", "id": request_id,
                    "generation": self.generation,
                    "version": self._version,
                    "worker_id": self.worker_id})

    def _handle_stats(self, request_id) -> None:
        self._send({"type": "stats", "id": request_id,
                    "worker_id": self.worker_id, "pid": os.getpid(),
                    "generation": self.generation,
                    "version": self._version,
                    "queue_depth": self._engine.queue_depth,
                    "engine": self._engine.stats()})

    # -- main loop -------------------------------------------------------
    def run(self) -> None:
        self._load_engine(self._start_version)
        self._sock = socket.create_connection(("127.0.0.1", self.port),
                                              timeout=10.0)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(None)
        reader = self._sock.makefile("rb")
        self._send({"type": "hello", "worker_id": self.worker_id,
                    "pid": os.getpid(), "generation": self.generation,
                    "version": self._version})
        # Waiters are bounded by the engine's admission control: at most
        # max_queue queued + max_batch in flight can be outstanding.
        pool = ThreadPoolExecutor(
            max_workers=min(32, self.config.max_queue
                            + self.config.max_batch),
            thread_name_prefix=f"repro-worker-{self.worker_id}")
        try:
            while True:
                try:
                    message = read_frame(reader)
                except (OSError, RuntimeError):
                    break
                if message is None:
                    break
                header, body = message
                kind = header.get("type")
                request_id = header.get("id")
                if kind == "forecast":
                    if body is None:
                        self._send_error(request_id, ValueError(
                            "forecast request carries no window array"))
                        continue
                    # Admission control runs HERE, synchronously: a full
                    # queue sheds with EngineOverloaded at read time
                    # instead of hiding backpressure in the waiter pool.
                    try:
                        pending = self._engine.submit(body)
                    except (EngineOverloaded, EngineStopped, ValueError,
                            RuntimeError) as error:
                        self._send_error(request_id, error)
                        continue
                    with self._drained:
                        self._outstanding += 1
                    pool.submit(self._await_forecast, request_id,
                                pending, self.generation, self._version)
                elif kind == "reload":
                    self._handle_reload(request_id,
                                        header.get("generation",
                                                   self.generation + 1))
                elif kind == "stats":
                    self._handle_stats(request_id)
                elif kind == "shutdown":
                    break
                else:
                    self._send_error(request_id, ValueError(
                        f"unknown message type {kind!r}"))
        finally:
            # Queued requests fail with the typed EngineStopped; their
            # waiter threads answer with `shutdown` wire errors before
            # the pool drains, so nothing is silently dropped.
            self._engine.stop()
            pool.shutdown(wait=True)
            try:
                self._sock.close()
            except OSError:
                pass
