"""Micro-batching forecast engine: coalesce concurrent requests into one
stacked forward pass.

Serving traffic arrives as independent single-window requests, but the
network evaluates a stacked batch for nearly the price of one request —
the per-timestep Python loop, layer dispatch and activation ufuncs run
once per *batch*, not once per request. The engine therefore queues
incoming requests and a single worker thread drains up to
``max_batch`` of them per tick into one ``Network.predict`` call.

Determinism contract (docs/SERVING.md): responses are **bitwise
identical** to one-at-a-time :class:`~repro.forecast.pod_lstm.PODLSTMEmulator`
forecasts, no matter how requests happen to be coalesced. The batched
forward runs inside :func:`repro.nn.detmath.batch_invariant`, which pins
every batch-M matmul to the batch-of-one kernel per row (see that module
for why plain stacking breaks bitwise equality). The differential suite
(tests/test_serve_engine.py) pins this at batch sizes 1/4/8 under real
concurrency.

Overload behaviour is *shed-with-error*: the queue is bounded, and a
request arriving beyond capacity fails immediately with
:class:`EngineOverloaded` instead of silently growing latency for
everyone (admission control). Per-request timeouts bound the caller's
wait (:class:`ForecastTimeout`); a timed-out request's result is still
computed and warms the cache, but nobody blocks on it.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.forecast.pod_lstm import PODLSTMEmulator
from repro.nn.detmath import batch_invariant
from repro.serve.cache import ForecastCache, window_digest

__all__ = ["EngineOverloaded", "ForecastTimeout", "EngineStopped",
           "EngineConfig", "ForecastEngine"]


class EngineOverloaded(RuntimeError):
    """The request queue is at capacity; the request was shed."""


class ForecastTimeout(TimeoutError):
    """The caller's wait bound expired before the response arrived."""


class EngineStopped(RuntimeError):
    """The engine stopped before the queued request could be served.

    Typed (rather than a bare ``RuntimeError``) so process boundaries can
    translate it faithfully: a router worker that is shut down maps this
    onto the ``shutdown`` wire error code and the client sees a typed
    error instead of a hung socket (tests/test_router_faults.py)."""


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of a :class:`ForecastEngine`.

    Parameters
    ----------
    max_batch:
        Most requests coalesced into one forward pass per tick.
    max_queue:
        Admission-control bound: requests beyond this many waiting are
        shed with :class:`EngineOverloaded`.
    default_timeout_s:
        Per-request wait bound used when :meth:`ForecastEngine.forecast`
        is called without an explicit timeout.
    cache_entries:
        LRU response-cache capacity; 0 disables caching.
    poll_interval_s:
        Worker wake-up interval for noticing :meth:`ForecastEngine.stop`
        while idle (does not delay queued requests — the worker blocks
        directly on the queue).
    pace_s:
        Artificial service-time floor per drained batch (seconds); the
        worker sleeps out the remainder after inference. 0 (the
        default) disables it. Like
        :class:`~repro.nas.evaluation.PacedEvaluator`, this models the
        per-request occupancy of a production-size emulator on its own
        core, which keeps the sharded-router throughput benchmarks
        (``serve_router_throughput_*``) meaningful on single-core CI
        runners where compute-bound work cannot overlap.
    """

    max_batch: int = 8
    max_queue: int = 64
    default_timeout_s: float = 10.0
    cache_entries: int = 256
    poll_interval_s: float = 0.02
    pace_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.default_timeout_s <= 0:
            raise ValueError(f"default_timeout_s must be positive, "
                             f"got {self.default_timeout_s}")
        if self.cache_entries < 0:
            raise ValueError(f"cache_entries must be >= 0, "
                             f"got {self.cache_entries}")
        if self.poll_interval_s <= 0:
            raise ValueError(f"poll_interval_s must be positive, "
                             f"got {self.poll_interval_s}")
        if self.pace_s < 0:
            raise ValueError(f"pace_s must be >= 0, got {self.pace_s}")


class _PendingForecast:
    """One in-flight request: the client blocks on ``result()``, the
    engine worker resolves or fails it."""

    __slots__ = ("window", "key", "_event", "_value", "_error", "_engine")

    def __init__(self, engine: "ForecastEngine", window: np.ndarray,
                 key: str) -> None:
        self._engine = engine
        self.window = window
        self.key = key
        self._event = threading.Event()
        self._value: np.ndarray | None = None
        self._error: BaseException | None = None

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """The predicted output window; raises :class:`ForecastTimeout`
        if not served within ``timeout`` seconds."""
        if timeout is None:
            timeout = self._engine.config.default_timeout_s
        if not self._event.wait(timeout):
            self._engine._count_timeout()
            raise ForecastTimeout(
                f"forecast not served within {timeout:g}s "
                f"(queue depth {self._engine.queue_depth})")
        if self._error is not None:
            raise self._error
        return self._value


class ForecastEngine:
    """Serve micro-batched forecasts from one emulator.

    Parameters
    ----------
    emulator:
        A fitted emulator (freshly trained or from a bundle).
    version:
        Label of the model being served (the registry version name);
        part of every cache key.
    config:
        Engine tuning; individual fields can also be overridden via
        keyword arguments for convenience.

    Usage::

        with ForecastEngine(emulator, version="v3") as engine:
            out = engine.forecast(window)          # blocking
            pending = engine.submit(window)        # async
            out = pending.result(timeout=0.5)

    A request window has shape ``(window, n_modes)`` in scaled
    coefficient space — exactly one row of
    ``PODLSTMEmulator.predict_windows`` input; the response is the
    predicted output window of the same shape.
    """

    def __init__(self, emulator: PODLSTMEmulator, *,
                 version: str = "in-memory",
                 config: EngineConfig | None = None, **overrides) -> None:
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            raise TypeError("pass either config= or field overrides, "
                            "not both")
        self.config = config
        self.version = str(version)
        self._network = emulator._require_fit()
        self._window = emulator.pipeline.window
        self._n_modes = emulator.pipeline.n_modes
        self._queue: queue.Queue[_PendingForecast] = queue.Queue(
            maxsize=config.max_queue)
        self._cache = ForecastCache(config.cache_entries)
        self._stop = threading.Event()
        self._worker: threading.Thread | None = None
        self._stats_lock = threading.Lock()
        self._n_requests = 0
        self._n_batched = 0
        self._n_batches = 0
        self._n_shed = 0
        self._n_timeouts = 0

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "ForecastEngine":
        """Start the batching worker thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._worker = threading.Thread(target=self._serve_loop,
                                        name="repro-serve-worker",
                                        daemon=True)
        self._worker.start()
        return self

    def stop(self) -> None:
        """Stop the worker; unserved queued requests fail with a
        descriptive error."""
        if self._worker is None:
            return
        self._stop.set()
        self._worker.join()
        self._worker = None
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            pending._fail(EngineStopped(
                "engine stopped before the request was served"))

    def __enter__(self) -> "ForecastEngine":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- request path ----------------------------------------------------
    def _check_window(self, window) -> np.ndarray:
        arr = np.ascontiguousarray(window, dtype=np.float64)
        expected = (self._window, self._n_modes)
        if arr.shape != expected:
            raise ValueError(
                f"request window must have shape {expected} "
                f"(window, n_modes), got {arr.shape}")
        return arr

    def submit(self, window) -> _PendingForecast:
        """Enqueue one request; returns a pending handle.

        Cache hits resolve immediately without touching the queue. A
        full queue sheds the request with :class:`EngineOverloaded`.
        """
        if not self.running:
            raise RuntimeError("engine is not running (call start() or "
                               "use it as a context manager)")
        arr = self._check_window(window)
        key = window_digest(self.version, arr)
        with self._stats_lock:
            self._n_requests += 1
        obs.counter_add("serve/requests")
        pending = _PendingForecast(self, arr, key)
        cached = self._cache.get(key)
        if cached is not None:
            pending._resolve(cached)
            return pending
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            with self._stats_lock:
                self._n_shed += 1
            obs.counter_add("serve/shed")
            raise EngineOverloaded(
                f"request shed: queue at capacity "
                f"({self.config.max_queue} waiting)") from None
        return pending

    def forecast(self, window, timeout: float | None = None) -> np.ndarray:
        """Blocking single-request forecast (submit + wait)."""
        return self.submit(window).result(timeout)

    # -- worker ----------------------------------------------------------
    def _serve_loop(self) -> None:
        cfg = self.config
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=cfg.poll_interval_s)
            except queue.Empty:
                continue
            batch = [first]
            while len(batch) < cfg.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            self._run_batch(batch)

    def _infer(self, stacked: np.ndarray) -> np.ndarray:
        """One stacked forward pass under the batch-invariance contract."""
        with batch_invariant():
            return self._network.predict(stacked)

    def _run_batch(self, batch: list[_PendingForecast]) -> None:
        stacked = np.stack([p.window for p in batch])
        t_start = time.perf_counter()
        try:
            with obs.scope("serve/batch"):
                outputs = self._infer(stacked)
        except BaseException as error:  # propagate to every waiter
            for pending in batch:
                pending._fail(error)
            return
        if self.config.pace_s > 0.0:
            remaining = self.config.pace_s - (time.perf_counter() - t_start)
            if remaining > 0.0:
                time.sleep(remaining)
        with self._stats_lock:
            self._n_batches += 1
            self._n_batched += len(batch)
        obs.counter_add("serve/batches")
        obs.gauge_set("serve/batch_size", len(batch))
        for pending, output in zip(batch, outputs):
            self._cache.put(pending.key, output)
            pending._resolve(np.ascontiguousarray(output))

    def _count_timeout(self) -> None:
        with self._stats_lock:
            self._n_timeouts += 1
        obs.counter_add("serve/timeouts")

    # -- introspection ---------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def stats(self) -> dict:
        """Lifetime engine counters plus cache statistics."""
        with self._stats_lock:
            n_batches = self._n_batches
            stats = {"version": self.version,
                     "max_batch": self.config.max_batch,
                     "max_queue": self.config.max_queue,
                     "n_requests": self._n_requests,
                     "n_batches": n_batches,
                     "n_shed": self._n_shed,
                     "n_timeouts": self._n_timeouts,
                     "mean_batch_size": (self._n_batched / n_batches
                                         if n_batches else 0.0)}
        stats["cache"] = self._cache.stats()
        return stats

    def __repr__(self) -> str:
        return (f"ForecastEngine(version={self.version!r}, "
                f"running={self.running}, "
                f"max_batch={self.config.max_batch})")
