"""repro.serve — the inference serving subsystem (docs/SERVING.md).

Turns a trained :class:`~repro.forecast.pod_lstm.PODLSTMEmulator` — the
paper's end product, whose whole point is inference orders of magnitude
cheaper than the process model — into a deployable, versioned service:

* :mod:`repro.serve.bundle` — one ``.npz`` artifact per emulator
  (network spec + weights + fitted POD/scaler pipeline state);
* :mod:`repro.serve.registry` — named bundle versions under one
  directory with an atomically-promoted ``ACTIVE`` pointer;
* :mod:`repro.serve.engine` — a micro-batching engine coalescing
  concurrent requests into stacked forward passes, with admission
  control, per-request timeouts and an LRU response cache, under a
  bitwise determinism contract;
* :mod:`repro.serve.loadgen` — a closed-loop load generator producing
  throughput / p50-p95-p99 SLO reports.

The distributed tier scales the same contract across processes:

* :mod:`repro.serve.protocol` — length-prefixed, pickle-free TCP
  framing with typed failure modes;
* :mod:`repro.serve.hashring` — consistent-hash request sharding;
* :mod:`repro.serve.worker` / :mod:`repro.serve.supervisor` — engine
  worker processes and their lifecycle;
* :mod:`repro.serve.router` — the socket front: sharded routing,
  zero-downtime promote, bounded retry-on-respawn.

CLI: ``python -m repro.cli serve`` (see ``--help``; ``--router``
starts the multi-process tier).
"""

from repro.serve.artifact import (check_artifact_header, load_npz_artifact,
                                  read_npz_artifact_header,
                                  write_npz_artifact)
from repro.serve.bundle import (BUNDLE_FORMAT, BUNDLE_VERSION, load_bundle,
                                read_bundle_header, save_bundle)
from repro.serve.cache import ForecastCache, window_digest
from repro.serve.engine import (EngineConfig, EngineOverloaded,
                                EngineStopped, ForecastEngine,
                                ForecastTimeout)
from repro.serve.hashring import ConsistentHashRing
from repro.serve.loadgen import (SLO_REPORT_FORMAT, SLO_REPORT_VERSION,
                                 SLOReport, nearest_rank_percentile,
                                 run_loadgen, run_router_loadgen,
                                 validate_slo_report)
from repro.serve.protocol import (BadMagic, FrameTooLarge, ProtocolError,
                                  RouterShutdown, TruncatedFrame,
                                  WorkerUnavailable, decode_message,
                                  encode_frame, encode_message, read_frame)
from repro.serve.registry import ModelRegistry
from repro.serve.router import (ForecastRouter, RoutedForecast,
                                RouterClient, RouterConfig)
from repro.serve.worker import WorkerConfig

__all__ = [
    "BUNDLE_FORMAT", "BUNDLE_VERSION",
    "save_bundle", "load_bundle", "read_bundle_header",
    "write_npz_artifact", "read_npz_artifact_header",
    "check_artifact_header", "load_npz_artifact",
    "ModelRegistry",
    "ForecastCache", "window_digest",
    "ForecastEngine", "EngineConfig", "EngineOverloaded", "EngineStopped",
    "ForecastTimeout",
    "SLOReport", "run_loadgen", "run_router_loadgen",
    "nearest_rank_percentile",
    "validate_slo_report", "SLO_REPORT_FORMAT", "SLO_REPORT_VERSION",
    "ProtocolError", "TruncatedFrame", "BadMagic", "FrameTooLarge",
    "RouterShutdown", "WorkerUnavailable",
    "encode_message", "decode_message", "encode_frame", "read_frame",
    "ConsistentHashRing",
    "WorkerConfig",
    "ForecastRouter", "RouterClient", "RouterConfig", "RoutedForecast",
]
