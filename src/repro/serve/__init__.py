"""repro.serve — the inference serving subsystem (docs/SERVING.md).

Turns a trained :class:`~repro.forecast.pod_lstm.PODLSTMEmulator` — the
paper's end product, whose whole point is inference orders of magnitude
cheaper than the process model — into a deployable, versioned service:

* :mod:`repro.serve.bundle` — one ``.npz`` artifact per emulator
  (network spec + weights + fitted POD/scaler pipeline state);
* :mod:`repro.serve.registry` — named bundle versions under one
  directory with an atomically-promoted ``ACTIVE`` pointer;
* :mod:`repro.serve.engine` — a micro-batching engine coalescing
  concurrent requests into stacked forward passes, with admission
  control, per-request timeouts and an LRU response cache, under a
  bitwise determinism contract;
* :mod:`repro.serve.loadgen` — a closed-loop load generator producing
  throughput / p50-p95-p99 SLO reports.

CLI: ``python -m repro.cli serve`` (see ``--help``).
"""

from repro.serve.bundle import (BUNDLE_FORMAT, BUNDLE_VERSION, load_bundle,
                                read_bundle_header, save_bundle)
from repro.serve.cache import ForecastCache, window_digest
from repro.serve.engine import (EngineConfig, EngineOverloaded,
                                ForecastEngine, ForecastTimeout)
from repro.serve.loadgen import (SLO_REPORT_FORMAT, SLO_REPORT_VERSION,
                                 SLOReport, nearest_rank_percentile,
                                 run_loadgen, validate_slo_report)
from repro.serve.registry import ModelRegistry

__all__ = [
    "BUNDLE_FORMAT", "BUNDLE_VERSION",
    "save_bundle", "load_bundle", "read_bundle_header",
    "ModelRegistry",
    "ForecastCache", "window_digest",
    "ForecastEngine", "EngineConfig", "EngineOverloaded", "ForecastTimeout",
    "SLOReport", "run_loadgen", "nearest_rank_percentile",
    "validate_slo_report", "SLO_REPORT_FORMAT", "SLO_REPORT_VERSION",
]
