"""Length-prefixed TCP framing for the sharded serving tier.

Everything the router, its engine workers and their clients say to each
other travels as one *frame*::

    +----------+------------------+---------------------------------+
    | b"RSF1"  | uint32 (big-e.)  | payload (header_len + JSON +    |
    | 4 bytes  | payload length   |          raw array bytes)       |
    +----------+------------------+---------------------------------+

    payload = uint32 header_len | header JSON (utf-8) | body bytes

The JSON header carries the message type and its scalar fields; when a
message transports an array (a request window, a forecast response) the
header's ``array`` entry records ``{"dtype", "shape"}`` and the body is
the array's raw contiguous bytes — so a response round-trips **bitwise**
(the serving determinism contract of docs/SERVING.md survives the wire).
Like the bundle format the encoding is pickle-free: JSON plus plain
bytes, inspectable and safe to parse from untrusted peers.

Failure vocabulary — a reader must always terminate with a typed error,
never hang or return garbage:

* :class:`TruncatedFrame` — the stream ended (or the payload ran out)
  mid-frame;
* :class:`BadMagic` — the stream is not speaking this protocol;
* :class:`FrameTooLarge` — declared payload exceeds the reader's bound
  (refused *before* buffering, so a hostile length cannot balloon
  memory);
* :class:`ProtocolError` — the common base, also raised directly for
  undecodable headers and inconsistent array metadata.

``tests/test_serve_protocol.py`` pins encode∘decode identity and the
typed-failure behaviour with Hypothesis property tests.

Error codes
-----------
Failures cross the wire as ``{"type": "error", "code": ..., "message":
...}`` frames; :func:`code_for` / :func:`exception_for` translate between
the wire codes and the typed exceptions on either side, so an
:class:`~repro.serve.engine.EngineOverloaded` raised inside a worker
process resurfaces as :class:`EngineOverloaded` at the client.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.serve.engine import EngineOverloaded, EngineStopped, \
    ForecastTimeout

__all__ = [
    "PROTOCOL_MAGIC", "MAX_PAYLOAD",
    "ProtocolError", "TruncatedFrame", "BadMagic", "FrameTooLarge",
    "RouterShutdown", "WorkerUnavailable",
    "encode_message", "decode_message", "encode_frame", "read_frame",
    "ERR_OVERLOADED", "ERR_TIMEOUT", "ERR_SHUTDOWN", "ERR_UNAVAILABLE",
    "ERR_BAD_REQUEST", "ERR_INTERNAL", "code_for", "exception_for",
]

#: First four bytes of every frame ("Repro Serve Framing v1").
PROTOCOL_MAGIC = b"RSF1"

#: Default bound on one frame's payload. Far above any real request
#: (a forecast window is a few KiB) while keeping a hostile or corrupt
#: length field from allocating unbounded memory.
MAX_PAYLOAD = 64 * 1024 * 1024

_FRAME = struct.Struct("!4sI")
_HEADER_LEN = struct.Struct("!I")


class ProtocolError(RuntimeError):
    """The peer sent bytes that do not decode as a protocol message."""


class TruncatedFrame(ProtocolError):
    """The stream (or payload) ended in the middle of a frame."""


class BadMagic(ProtocolError):
    """The frame does not start with :data:`PROTOCOL_MAGIC`."""


class FrameTooLarge(ProtocolError):
    """The declared payload length exceeds the reader's bound."""


class RouterShutdown(RuntimeError):
    """The router (or its worker) shut down before serving the request.

    Every in-flight request fails with this typed error at shutdown —
    a client socket is answered, never deadlocked
    (tests/test_router_faults.py)."""


class WorkerUnavailable(RuntimeError):
    """The request's shard worker kept dying; bounded retries exhausted."""


# -- message encoding ----------------------------------------------------

def encode_message(header: dict, body: np.ndarray | None = None) -> bytes:
    """Serialize one message payload: JSON header plus optional array.

    ``header`` must be JSON-encodable and must not set ``array`` itself —
    that entry is derived from ``body``.
    """
    if not isinstance(header, dict):
        raise TypeError(f"header must be a dict, got "
                        f"{type(header).__name__}")
    hdr = dict(header)
    if body is None:
        body_bytes = b""
        hdr.pop("array", None)
    else:
        arr = np.ascontiguousarray(body)
        if arr.dtype.hasobject:
            raise ValueError(f"cannot transport object-dtype arrays "
                             f"(got dtype {arr.dtype})")
        hdr["array"] = {"dtype": arr.dtype.str, "shape": list(arr.shape)}
        body_bytes = arr.tobytes()
    header_bytes = json.dumps(hdr, separators=(",", ":"),
                              allow_nan=False).encode("utf-8")
    return _HEADER_LEN.pack(len(header_bytes)) + header_bytes + body_bytes


def decode_message(payload: bytes) -> tuple[dict, np.ndarray | None]:
    """Inverse of :func:`encode_message`; raises typed errors on any
    malformed payload."""
    if len(payload) < _HEADER_LEN.size:
        raise TruncatedFrame(f"payload of {len(payload)} bytes cannot "
                             f"hold a header length")
    (header_len,) = _HEADER_LEN.unpack_from(payload)
    end = _HEADER_LEN.size + header_len
    if end > len(payload):
        raise TruncatedFrame(f"declared header of {header_len} bytes "
                             f"exceeds the {len(payload)}-byte payload")
    try:
        header = json.loads(payload[_HEADER_LEN.size:end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable message header: {error}") \
            from None
    if not isinstance(header, dict):
        raise ProtocolError(f"message header must be a JSON object, got "
                            f"{type(header).__name__}")
    body_bytes = payload[end:]
    meta = header.get("array")
    if meta is None:
        if body_bytes:
            raise ProtocolError(f"{len(body_bytes)} body bytes but no "
                                f"'array' metadata in the header")
        return header, None
    if not isinstance(meta, dict) or "dtype" not in meta \
            or "shape" not in meta:
        raise ProtocolError(f"malformed array metadata: {meta!r}")
    try:
        dtype = np.dtype(meta["dtype"])
    except TypeError as error:
        raise ProtocolError(f"bad array dtype {meta['dtype']!r}: "
                            f"{error}") from None
    if dtype.hasobject:
        raise ProtocolError(f"refusing object-dtype array "
                            f"({meta['dtype']!r})")
    shape = meta["shape"]
    if not isinstance(shape, list) \
            or not all(isinstance(n, int) and not isinstance(n, bool)
                       and n >= 0 for n in shape):
        raise ProtocolError(f"bad array shape {shape!r}")
    n_items = 1
    for n in shape:
        n_items *= n
    if n_items * dtype.itemsize != len(body_bytes):
        raise ProtocolError(
            f"array metadata {meta['dtype']}{tuple(shape)} wants "
            f"{n_items * dtype.itemsize} body bytes, got {len(body_bytes)}")
    array = np.frombuffer(body_bytes, dtype=dtype).reshape(shape).copy()
    return header, array


# -- framing -------------------------------------------------------------

def encode_frame(header: dict, body: np.ndarray | None = None,
                 *, max_payload: int = MAX_PAYLOAD) -> bytes:
    """One complete wire frame for a message."""
    payload = encode_message(header, body)
    if len(payload) > max_payload:
        raise FrameTooLarge(f"payload of {len(payload)} bytes exceeds "
                            f"the {max_payload}-byte frame bound")
    return _FRAME.pack(PROTOCOL_MAGIC, len(payload)) + payload


def read_frame(reader, *, max_payload: int = MAX_PAYLOAD
               ) -> tuple[dict, np.ndarray | None] | None:
    """Read and decode one frame from a binary file-like ``reader``.

    Returns ``None`` on a clean end-of-stream at a frame boundary (the
    peer closed between messages); raises :class:`TruncatedFrame` if the
    stream ends mid-frame, :class:`BadMagic`/:class:`FrameTooLarge`/
    :class:`ProtocolError` on malformed frames. Every read is bounded by
    the declared (and checked) lengths, so a reader can never hang on a
    frame that will not arrive byte-by-byte.
    """
    prefix = _read_exact(reader, _FRAME.size, eof_ok=True)
    if prefix is None:
        return None
    magic, length = _FRAME.unpack(prefix)
    if magic != PROTOCOL_MAGIC:
        raise BadMagic(f"expected frame magic {PROTOCOL_MAGIC!r}, "
                       f"got {magic!r}")
    if length > max_payload:
        raise FrameTooLarge(f"declared payload of {length} bytes exceeds "
                            f"the {max_payload}-byte frame bound")
    payload = _read_exact(reader, length, eof_ok=False)
    return decode_message(payload)


def _read_exact(reader, n: int, *, eof_ok: bool) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on immediate EOF if allowed."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = reader.read(remaining)
        if not chunk:
            if eof_ok and not chunks:
                return None
            got = n - remaining
            raise TruncatedFrame(f"stream ended after {got} of {n} "
                                 f"expected bytes")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""


# -- wire error codes ----------------------------------------------------

ERR_OVERLOADED = "overloaded"
ERR_TIMEOUT = "timeout"
ERR_SHUTDOWN = "shutdown"
ERR_UNAVAILABLE = "unavailable"
ERR_BAD_REQUEST = "bad-request"
ERR_INTERNAL = "internal"

#: code -> exception type raised at the receiving side.
_CODE_TO_EXCEPTION = {
    ERR_OVERLOADED: EngineOverloaded,
    ERR_TIMEOUT: ForecastTimeout,
    ERR_SHUTDOWN: RouterShutdown,
    ERR_UNAVAILABLE: WorkerUnavailable,
    ERR_BAD_REQUEST: ValueError,
}


def code_for(error: BaseException) -> str:
    """The wire error code describing an exception (sending side)."""
    if isinstance(error, EngineOverloaded):
        return ERR_OVERLOADED
    if isinstance(error, ForecastTimeout):
        return ERR_TIMEOUT
    if isinstance(error, (EngineStopped, RouterShutdown)):
        return ERR_SHUTDOWN
    if isinstance(error, WorkerUnavailable):
        return ERR_UNAVAILABLE
    if isinstance(error, ValueError):
        return ERR_BAD_REQUEST
    return ERR_INTERNAL


def exception_for(code: str, message: str) -> Exception:
    """The typed exception a wire error code maps to (receiving side)."""
    return _CODE_TO_EXCEPTION.get(code, RuntimeError)(message)
