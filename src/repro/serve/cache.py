"""LRU forecast cache keyed by (bundle version, request window) digest.

Geophysical forecast traffic is heavily repetitive — dashboards poll the
same lead windows — so the engine consults this cache before queueing a
request. Keys are SHA-256 digests over the serving version string plus
the window's shape and raw float64 bytes: two requests collide only if
they are the same request against the same model, in which case the
cached response is bitwise identical to a recomputed one by the
engine's determinism contract (docs/SERVING.md).

Thread-safe: clients probe from their own threads while the engine
worker inserts. Hit/miss totals feed the ``serve/cache/*`` counters in
:mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro import obs

__all__ = ["ForecastCache", "window_digest"]


def window_digest(version: str, window: np.ndarray) -> str:
    """SHA-256 digest identifying one request against one bundle version."""
    arr = np.ascontiguousarray(window, dtype=np.float64)
    digest = hashlib.sha256()
    digest.update(version.encode("utf-8"))
    digest.update(str(arr.shape).encode("utf-8"))
    digest.update(arr.tobytes())
    return digest.hexdigest()


class ForecastCache:
    """Bounded least-recently-used response cache.

    ``max_entries = 0`` disables caching entirely (every probe is a
    miss and inserts are dropped) — used by the latency benchmarks so
    repetitions measure inference, not dictionary lookups.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError(
                f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> np.ndarray | None:
        """The cached response for ``key`` (a copy), or ``None``."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                obs.counter_add("serve/cache/miss")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            obs.counter_add("serve/cache/hit")
            return value.copy()

    def put(self, key: str, value: np.ndarray) -> None:
        """Insert a response, evicting the least recently used entry
        beyond capacity."""
        if self.max_entries == 0:
            return
        stored = np.asarray(value).copy()
        with self._lock:
            self._entries[key] = stored
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def stats(self) -> dict:
        with self._lock:
            return {"entries": len(self._entries),
                    "max_entries": self.max_entries,
                    "hits": self.hits, "misses": self.misses}
