"""Emulator bundles: one versioned ``.npz`` artifact per trained emulator.

A bundle captures a :class:`~repro.forecast.pod_lstm.PODLSTMEmulator`
end to end — the forecast network (structure via
:func:`repro.nn.serialization.network_spec`, weights as arrays) plus the
fitted :class:`~repro.forecast.pipeline.PODCoefficientPipeline` state
(POD basis, scaler parameters, window/mode geometry) — so the serving
side (docs/SERVING.md) needs nothing but the file. Like the network
archives of :mod:`repro.nn.serialization` the format is pickle-free:
plain NumPy arrays plus one JSON header, portable and inspectable.

Guarantee: ``load_bundle(save_bundle(e, p))`` forecasts **bitwise
identically** to ``e`` (tested in tests/test_serve_bundle.py).

Schema (``__bundle__`` JSON header)::

    {"format": "repro-emulator-bundle", "version": 1,
     "train_fraction": float,
     "network":  {...network_spec...},          # weights in net_w{i}
     "pipeline": {"n_modes", "window", "scaler": {...}},  # arrays pod_*/scaler_*
     "metadata": {...}}                          # free-form provenance

Unknown formats and schema versions are rejected on load — a newer
writer's artifact fails loudly instead of deserializing garbage.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.forecast.pipeline import PODCoefficientPipeline
from repro.forecast.pod_lstm import PODLSTMEmulator
from repro.nn.serialization import _npz_path, network_from_spec, network_spec
from repro.serve.artifact import read_npz_artifact_header, write_npz_artifact

__all__ = ["BUNDLE_FORMAT", "BUNDLE_VERSION", "save_bundle", "load_bundle",
           "read_bundle_header"]

#: Format tag of an emulator bundle artifact.
BUNDLE_FORMAT = "repro-emulator-bundle"

#: Current bundle schema version. Loaders accept exactly the versions
#: they know how to decode; anything else is an error.
BUNDLE_VERSION = 1

#: Reserved array name carrying the JSON header inside the ``.npz``.
_HEADER_KEY = "__bundle__"


def save_bundle(emulator: PODLSTMEmulator, path, *,
                metadata: dict | None = None) -> Path:
    """Serialize a fitted emulator into one ``.npz`` bundle at ``path``.

    ``metadata`` (JSON-compatible) is stored verbatim in the header —
    provenance such as the search algorithm, seed, or training R^2.
    Returns the path the archive actually lives at (``.npz`` suffix
    normalized exactly like :func:`repro.nn.serialization.save_network`).
    """
    network = emulator._require_fit()
    pipeline_config, pipeline_arrays = emulator.pipeline.fitted_state()
    header = {"format": BUNDLE_FORMAT, "version": BUNDLE_VERSION,
              "train_fraction": emulator.train_fraction,
              "network": network_spec(network),
              "pipeline": pipeline_config,
              "metadata": dict(metadata or {})}
    arrays = {f"net_w{i}": w for i, w in enumerate(network.get_weights())}
    arrays.update(pipeline_arrays)
    return write_npz_artifact(path, header, arrays, key=_HEADER_KEY)


def _decode_header(archive, path) -> dict:
    return read_npz_artifact_header(
        archive, path, key=_HEADER_KEY, expected_format=BUNDLE_FORMAT,
        supported_versions=(BUNDLE_VERSION,),
        describe="an emulator bundle")


def read_bundle_header(path) -> dict:
    """The validated JSON header of a bundle, without rebuilding the
    emulator (registry listings, provenance inspection)."""
    with np.load(_npz_path(path)) as archive:
        return _decode_header(archive, path)


def load_bundle(path) -> PODLSTMEmulator:
    """Rebuild the emulator stored by :func:`save_bundle`."""
    with np.load(_npz_path(path)) as archive:
        header = _decode_header(archive, path)
        n_weights = sum(1 for name in archive.files
                        if name.startswith("net_w"))
        weights = [archive[f"net_w{i}"] for i in range(n_weights)]
        pipeline = PODCoefficientPipeline.from_fitted_state(
            header["pipeline"], archive)
    network = network_from_spec(header["network"], weights,
                                source=str(path))
    return PODLSTMEmulator.from_artifacts(
        pipeline, network, train_fraction=float(header["train_fraction"]))
