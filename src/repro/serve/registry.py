"""Model registry: named bundle versions with an atomic "active" pointer.

Directory layout (docs/SERVING.md)::

    <root>/
      versions/
        <name>.npz        # one emulator bundle per published version
      ACTIVE              # name of the version serving traffic
      AUDIT.jsonl         # append-only publish/promote audit trail

Invariants both the serving tier (:mod:`repro.serve.router`) and the
continuous-learning pipeline (:mod:`repro.pipeline`) rely on:

* **Publication is atomic.** ``publish`` writes the bundle to a
  temporary sibling first and ``os.replace``s it into place; a reader
  (or a worker process loading mid-publish) always observes either the
  previous complete bundle or the new one, never a torn ``.npz``.
  Re-publishing an existing name is idempotent replacement — the
  pipeline exploits this when a crash lands between publish and its own
  state save: the retrain is replayed and republishes the identical
  bundle under the identical name.
* **Promotion is atomic and ordered after publication.** ``promote``
  rewrites ``ACTIVE`` through the same tmp+fsync+rename discipline as
  :mod:`repro.nas.checkpoint` and refuses names without a published
  bundle, so ``ACTIVE`` can never dangle: a crash at any instant leaves
  it pointing at a complete, loadable bundle.
* **The audit trail is append-only and advisory.** Every publish and
  promote appends one JSON line to ``AUDIT.jsonl`` (action, version,
  previous active pointer, wall-clock time, optional note). It is a
  *record*, not a source of truth — readers tolerate a torn final line
  (a crash mid-append), and no registry operation ever consults it.
  Deterministic replay guarantees therefore never include audit bytes;
  the pipeline's promotion-sequence identity is defined over its own
  typed decision records and the bundle contents.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path

from repro.forecast.pod_lstm import PODLSTMEmulator
from repro.serve.bundle import load_bundle, read_bundle_header, save_bundle

__all__ = ["ModelRegistry"]

#: Version names are path-safe identifiers: no separators, no hidden
#: files, no surprises in the directory layout.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_ACTIVE_FILE = "ACTIVE"
_VERSIONS_DIR = "versions"
_AUDIT_FILE = "AUDIT.jsonl"


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name) \
            or name.endswith(".npz"):
        raise ValueError(
            f"invalid version name {name!r}: use letters, digits, dots, "
            f"dashes and underscores (no leading dot, no .npz suffix)")
    return name


class ModelRegistry:
    """A directory of named emulator bundles with one active version.

    Parameters
    ----------
    root:
        Registry directory; created (with ``versions/``) on first use.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / _VERSIONS_DIR).mkdir(exist_ok=True)

    # -- paths -----------------------------------------------------------
    def bundle_path(self, name: str) -> Path:
        """Where version ``name``'s bundle lives (whether or not it
        exists yet)."""
        return self.root / _VERSIONS_DIR / f"{_check_name(name)}.npz"

    @property
    def _active_path(self) -> Path:
        return self.root / _ACTIVE_FILE

    @property
    def _audit_path(self) -> Path:
        return self.root / _AUDIT_FILE

    # -- publishing ------------------------------------------------------
    def publish(self, name: str, emulator: PODLSTMEmulator, *,
                metadata: dict | None = None,
                activate: bool = False, note: str | None = None) -> Path:
        """Serialize ``emulator`` as version ``name``.

        The bundle is written to a tmp sibling and atomically renamed in,
        so readers never observe a partial artifact. Re-publishing an
        existing name replaces it. ``activate=True`` also promotes the
        version. ``note`` is recorded in the audit trail.
        """
        target = self.bundle_path(name)
        tmp = target.with_name(target.name + ".tmp")
        written = save_bundle(emulator, tmp, metadata=metadata)
        os.replace(written, target)
        self._audit("publish", name, note=note)
        if activate:
            self.promote(name, note=note)
        return target

    def promote(self, name: str, *, note: str | None = None) -> None:
        """Atomically point ``ACTIVE`` at an existing version.

        The promotion (with the previous active pointer and the optional
        ``note``) is appended to the audit trail.
        """
        if not self.bundle_path(name).exists():
            raise ValueError(f"cannot promote unknown version {name!r}; "
                             f"published versions: {self.versions()}")
        previous = self.active()
        tmp = self._active_path.with_name(_ACTIVE_FILE + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(name + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._active_path)
        self._audit("promote", name, previous=previous, note=note)

    # -- audit trail -----------------------------------------------------
    def _audit(self, action: str, name: str, *, previous: str | None = None,
               note: str | None = None) -> None:
        entry = {"action": action, "version": name, "time": time.time()}
        if action == "promote":
            entry["previous"] = previous
        if note is not None:
            entry["note"] = note
        with open(self._audit_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def audit_trail(self) -> list[dict]:
        """The publish/promote history, oldest first.

        Append-only and advisory (see module docstring): a torn final
        line — a crash mid-append — is skipped, not an error.
        """
        try:
            lines = self._audit_path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return []
        entries = []
        for line in lines:
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return entries

    # -- reading ---------------------------------------------------------
    def versions(self) -> list[str]:
        """Published version names, sorted."""
        return sorted(p.stem for p in
                      (self.root / _VERSIONS_DIR).glob("*.npz"))

    def active(self) -> str | None:
        """The promoted version name, or ``None`` if nothing is active."""
        try:
            name = self._active_path.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            return None
        return name or None

    def header(self, name: str) -> dict:
        """The bundle header of a version (provenance inspection)."""
        return read_bundle_header(self.bundle_path(name))

    def load(self, name: str | None = None
             ) -> tuple[str, PODLSTMEmulator]:
        """Load a version (default: the active one) as
        ``(name, emulator)``."""
        if name is None:
            name = self.active()
            if name is None:
                raise ValueError(
                    f"registry {self.root} has no active version "
                    f"(promote one first)")
        path = self.bundle_path(name)
        if not path.exists():
            raise ValueError(f"unknown version {name!r}; "
                             f"published versions: {self.versions()}")
        return name, load_bundle(path)

    def report(self) -> str:
        """Human-readable registry listing (versions + ACTIVE marker).

        The one formatter behind both ``repro serve --status`` and
        ``repro pipeline status`` — the ACTIVE-pointer parsing and the
        marker layout live here only (regression-tested in
        tests/test_serve_registry.py).
        """
        versions = self.versions()
        active = self.active()
        lines = [f"registry {self.root}"]
        if not versions:
            lines.append("  (no versions published)")
        for name in versions:
            marker = " *active*" if name == active else ""
            lines.append(f"  {name}{marker}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"ModelRegistry(root={str(self.root)!r}, "
                f"versions={self.versions()}, active={self.active()!r})")
