"""Model registry: named bundle versions with an atomic "active" pointer.

Directory layout (docs/SERVING.md)::

    <root>/
      versions/
        <name>.npz        # one emulator bundle per published version
      ACTIVE              # name of the version serving traffic

Publishing writes the bundle to a temporary sibling first and
``os.replace``s it into place; promotion rewrites ``ACTIVE`` through the
same tmp+fsync+rename discipline as :mod:`repro.nas.checkpoint` — a
crash at any instant leaves the registry pointing at a complete,
loadable bundle, never a torn file or dangling pointer.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from repro.forecast.pod_lstm import PODLSTMEmulator
from repro.serve.bundle import load_bundle, read_bundle_header, save_bundle

__all__ = ["ModelRegistry"]

#: Version names are path-safe identifiers: no separators, no hidden
#: files, no surprises in the directory layout.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_ACTIVE_FILE = "ACTIVE"
_VERSIONS_DIR = "versions"


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name) \
            or name.endswith(".npz"):
        raise ValueError(
            f"invalid version name {name!r}: use letters, digits, dots, "
            f"dashes and underscores (no leading dot, no .npz suffix)")
    return name


class ModelRegistry:
    """A directory of named emulator bundles with one active version.

    Parameters
    ----------
    root:
        Registry directory; created (with ``versions/``) on first use.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / _VERSIONS_DIR).mkdir(exist_ok=True)

    # -- paths -----------------------------------------------------------
    def bundle_path(self, name: str) -> Path:
        """Where version ``name``'s bundle lives (whether or not it
        exists yet)."""
        return self.root / _VERSIONS_DIR / f"{_check_name(name)}.npz"

    @property
    def _active_path(self) -> Path:
        return self.root / _ACTIVE_FILE

    # -- publishing ------------------------------------------------------
    def publish(self, name: str, emulator: PODLSTMEmulator, *,
                metadata: dict | None = None,
                activate: bool = False) -> Path:
        """Serialize ``emulator`` as version ``name``.

        The bundle is written to a tmp sibling and atomically renamed in,
        so readers never observe a partial artifact. Re-publishing an
        existing name replaces it. ``activate=True`` also promotes the
        version.
        """
        target = self.bundle_path(name)
        tmp = target.with_name(target.name + ".tmp")
        written = save_bundle(emulator, tmp, metadata=metadata)
        os.replace(written, target)
        if activate:
            self.promote(name)
        return target

    def promote(self, name: str) -> None:
        """Atomically point ``ACTIVE`` at an existing version."""
        if not self.bundle_path(name).exists():
            raise ValueError(f"cannot promote unknown version {name!r}; "
                             f"published versions: {self.versions()}")
        tmp = self._active_path.with_name(_ACTIVE_FILE + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(name + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._active_path)

    # -- reading ---------------------------------------------------------
    def versions(self) -> list[str]:
        """Published version names, sorted."""
        return sorted(p.stem for p in
                      (self.root / _VERSIONS_DIR).glob("*.npz"))

    def active(self) -> str | None:
        """The promoted version name, or ``None`` if nothing is active."""
        try:
            name = self._active_path.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            return None
        return name or None

    def header(self, name: str) -> dict:
        """The bundle header of a version (provenance inspection)."""
        return read_bundle_header(self.bundle_path(name))

    def load(self, name: str | None = None
             ) -> tuple[str, PODLSTMEmulator]:
        """Load a version (default: the active one) as
        ``(name, emulator)``."""
        if name is None:
            name = self.active()
            if name is None:
                raise ValueError(
                    f"registry {self.root} has no active version "
                    f"(promote one first)")
        path = self.bundle_path(name)
        if not path.exists():
            raise ValueError(f"unknown version {name!r}; "
                             f"published versions: {self.versions()}")
        return name, load_bundle(path)

    def __repr__(self) -> str:
        return (f"ModelRegistry(root={str(self.root)!r}, "
                f"versions={self.versions()}, active={self.active()!r})")
