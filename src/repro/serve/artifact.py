"""Shared ``.npz`` artifact machinery: JSON header + atomic publication.

Both the emulator bundles (:mod:`repro.serve.bundle`) and the NAS
benchmark archives (:mod:`repro.nas.benchmark`) are single-file ``.npz``
artifacts: plain NumPy arrays plus one JSON header embedded as a uint8
array under a reserved key — pickle-free, portable, inspectable with
nothing but ``numpy`` and ``json``. This module is the one definition of
that discipline so every artifact family shares the same guarantees:

* **Versioned headers.** Every header carries ``format`` and ``version``
  keys; readers accept exactly the versions they can decode and reject
  anything else loudly (:func:`check_artifact_header`) — a newer writer's
  file fails with a diagnosis, never by deserializing garbage.
* **Atomic writes.** :func:`write_npz_artifact` lands the bytes in a
  ``.tmp`` sibling, fsyncs, then ``os.replace``s over the target — the
  same crash discipline as :func:`repro.nas.checkpoint.atomic_write_json`
  and :class:`~repro.serve.registry.ModelRegistry`: a kill at any instant
  leaves either the previous artifact or the new one, never a torn file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.nn.serialization import _npz_path

__all__ = ["write_npz_artifact", "read_npz_artifact_header",
           "check_artifact_header", "load_npz_artifact"]


def write_npz_artifact(path, header: dict, arrays: dict, *,
                       key: str) -> Path:
    """Atomically write ``arrays`` + JSON ``header`` (under ``key``) as one
    ``.npz`` artifact at ``path`` (suffix normalized). Returns the path the
    archive actually lives at."""
    if key in arrays:
        raise ValueError(f"array name {key!r} collides with the header key")
    target = _npz_path(path)
    tmp = target.with_name(target.name + ".tmp.npz")
    header_bytes = np.frombuffer(json.dumps(header).encode("utf-8"),
                                 dtype=np.uint8)
    with open(tmp, "wb") as fh:
        np.savez(fh, **{key: header_bytes}, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
    return target


def check_artifact_header(header: dict, source, *, expected_format: str,
                          supported_versions: tuple[int, ...],
                          describe: str) -> dict:
    """Validate format/version of a decoded header; raises ValueError with
    a diagnosis naming ``source`` otherwise. ``describe`` is the artifact
    family for the message ("an emulator bundle", "a NAS benchmark
    archive", ...)."""
    if header.get("format") != expected_format:
        raise ValueError(f"{source}: not {describe} "
                         f"(format {header.get('format')!r})")
    version = header.get("version")
    if version not in supported_versions:
        supported = ", ".join(str(v) for v in supported_versions)
        raise ValueError(
            f"{source}: unsupported {describe.split()[-1]} schema version "
            f"{version!r} (this reader supports version {supported})")
    return header


def read_npz_artifact_header(archive, source, *, key: str,
                             expected_format: str,
                             supported_versions: tuple[int, ...],
                             describe: str) -> dict:
    """Decode + validate the JSON header of an opened ``np.load`` archive."""
    if key not in archive.files:
        raise ValueError(f"{source}: not {describe} "
                         f"(missing {key} header)")
    header = json.loads(bytes(archive[key].tobytes()).decode("utf-8"))
    return check_artifact_header(header, source,
                                 expected_format=expected_format,
                                 supported_versions=supported_versions,
                                 describe=describe)


def load_npz_artifact(path, *, key: str, expected_format: str,
                      supported_versions: tuple[int, ...],
                      describe: str) -> tuple[dict, dict]:
    """Read one artifact fully into memory as ``(header, arrays)``."""
    with np.load(_npz_path(path)) as archive:
        header = read_npz_artifact_header(
            archive, path, key=key, expected_format=expected_format,
            supported_versions=supported_versions, describe=describe)
        arrays = {name: archive[name] for name in archive.files
                  if name != key}
    return header, arrays
