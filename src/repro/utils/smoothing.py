"""Series smoothing used by the search-trajectory metrics.

The paper reports searches with "a moving window average of window size
100" (Sec. IV); ``moving_average`` implements exactly that, and
``running_max`` gives the best-so-far curve used for convergence checks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["moving_average", "running_max"]


def moving_average(values, window: int = 100) -> np.ndarray:
    """Trailing moving average with a warm-up ramp.

    Entry ``i`` averages ``values[max(0, i-window+1) : i+1]`` — i.e. a
    trailing window that uses however many points exist early on, matching
    how DeepHyper's reward curves are computed.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {v.shape}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if v.size == 0:
        return v.copy()
    csum = np.concatenate(([0.0], np.cumsum(v)))
    idx = np.arange(1, v.size + 1)
    lo = np.maximum(idx - window, 0)
    return (csum[idx] - csum[lo]) / (idx - lo)


def running_max(values) -> np.ndarray:
    """Best-reward-so-far curve."""
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {v.shape}")
    if v.size == 0:
        return v.copy()
    return np.maximum.accumulate(v)
