"""Deterministic random-number management.

Every stochastic component in the library accepts either an integer seed,
``None`` (fresh entropy), or an existing :class:`numpy.random.Generator`.
``spawn`` derives statistically independent child generators so that, e.g.,
each simulated compute node or each search repetition has its own stream
while the whole experiment stays reproducible from a single seed.

For work that is shipped across process boundaries (the parallel
evaluation backend, :mod:`repro.hpc.parallel`), generators are the wrong
currency: their state mutates with every draw, so results would depend on
scheduling order. ``child_sequence`` instead derives an *order-stable*
:class:`numpy.random.SeedSequence` per task id — the same ``(root, id)``
pair always names the same stream, no matter when, where, or in which
order the streams are instantiated. This is the determinism contract
behind the serial-equivalence guarantee (docs/PARALLELISM.md).
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn", "as_seed_sequence", "child_sequence",
           "spawn_sequences", "generator_state", "generator_from_state",
           "sequence_state", "sequence_from_state"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing a ``Generator`` returns it unchanged (shared state, which is the
    desired behaviour when a caller threads one stream through sub-steps).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses the ``SeedSequence``-based ``Generator.spawn`` so children are
    independent of the parent and of one another.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return as_generator(rng).spawn(n)


def as_seed_sequence(
        seed: int | np.random.Generator | np.random.SeedSequence | None
        ) -> np.random.SeedSequence:
    """Coerce ``seed`` into a :class:`numpy.random.SeedSequence`.

    A ``Generator`` yields the sequence backing its bit generator (shared,
    so subsequent ``spawn`` calls on either view stay coordinated); an int
    or ``None`` seeds a fresh sequence.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return seed.bit_generator.seed_seq
    return np.random.SeedSequence(seed)


def child_sequence(root: np.random.SeedSequence,
                   index: int) -> np.random.SeedSequence:
    """The ``index``-th child stream of ``root``, independent of call order.

    Mirrors ``SeedSequence.spawn`` (appends ``index`` to the spawn key)
    but takes the child index explicitly instead of a hidden counter, so
    the mapping ``(root, index) -> stream`` is a pure function: tasks can
    be seeded in any order — or concurrently in other processes — and
    task ``k`` always receives the same stream. Distinct indices extend
    the spawn key differently, so streams never collide.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=tuple(root.spawn_key) + (int(index),))


def spawn_sequences(
        seed: int | np.random.Generator | np.random.SeedSequence | None,
        n: int) -> list[np.random.SeedSequence]:
    """``n`` order-stable child sequences of ``seed`` (see
    :func:`child_sequence`)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = as_seed_sequence(seed)
    return [child_sequence(root, i) for i in range(n)]


# ---------------------------------------------------------------------------
# Exact state capture (checkpoint/restart, docs/CHECKPOINTING.md)
# ---------------------------------------------------------------------------
# Bit-generator states hold integers wider than 2**53 (PCG64 carries two
# 128-bit words), which survive Python's json but not every external JSON
# reader — so checkpoint encoding stringifies every int and decoding
# reverses it. Arrays (MT19937's key vector) become plain lists, which the
# numpy state setters accept back directly.

def _encode_state(value):
    if isinstance(value, dict):
        return {k: _encode_state(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return [_encode_state(v) for v in value.tolist()]
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    return value


def _decode_state(value):
    if isinstance(value, dict):
        return {k: _decode_state(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_state(v) for v in value]
    if isinstance(value, str) and (value.isdigit()
                                   or (value[:1] == "-" and value[1:].isdigit())):
        return int(value)
    return value


def generator_state(gen: np.random.Generator) -> dict:
    """JSON-compatible snapshot of a generator's exact bit-stream position.

    Restoring with :func:`generator_from_state` continues the *identical*
    stream of draws — not a reseed. This is the primitive behind the
    checkpoint/resume bitwise-equivalence guarantee.
    """
    return _encode_state(gen.bit_generator.state)


def generator_from_state(state: dict) -> np.random.Generator:
    """Rebuild the generator captured by :func:`generator_state`."""
    decoded = _decode_state(state)
    name = decoded.get("bit_generator")
    cls = getattr(np.random, str(name), None)
    if cls is None or not isinstance(cls, type) or \
            not issubclass(cls, np.random.BitGenerator):
        raise ValueError(f"unknown bit generator {name!r} in RNG state")
    bit_generator = cls()
    bit_generator.state = decoded
    return np.random.Generator(bit_generator)


def sequence_state(seq: np.random.SeedSequence) -> dict:
    """JSON-compatible identity of a :class:`~numpy.random.SeedSequence`.

    Only ``entropy`` and ``spawn_key`` are kept — together they *are* the
    stream's identity for :func:`child_sequence` derivation (the hidden
    spawn counter is deliberately dropped; checkpointed code derives
    children by explicit index, never by ``spawn``).
    """
    return {"entropy": _encode_state(seq.entropy),
            "spawn_key": [str(int(k)) for k in seq.spawn_key]}


def sequence_from_state(state: dict) -> np.random.SeedSequence:
    """Rebuild the sequence captured by :func:`sequence_state`."""
    entropy = _decode_state(state["entropy"])
    spawn_key = tuple(int(k) for k in state["spawn_key"])
    return np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)
