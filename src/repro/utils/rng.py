"""Deterministic random-number management.

Every stochastic component in the library accepts either an integer seed,
``None`` (fresh entropy), or an existing :class:`numpy.random.Generator`.
``spawn`` derives statistically independent child generators so that, e.g.,
each simulated compute node or each search repetition has its own stream
while the whole experiment stays reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing a ``Generator`` returns it unchanged (shared state, which is the
    desired behaviour when a caller threads one stream through sub-steps).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses the ``SeedSequence``-based ``Generator.spawn`` so children are
    independent of the parent and of one another.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return as_generator(rng).spawn(n)
