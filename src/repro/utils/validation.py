"""Lightweight argument validation helpers.

These centralize the error messages for common misuse so the library fails
fast with actionable messages instead of deep-in-the-stack shape errors.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_array",
    "check_matrix",
    "check_positive_int",
    "check_probability",
]


def check_array(x, *, name: str = "array", ndim: int | None = None,
                dtype=np.float64) -> np.ndarray:
    """Convert ``x`` to a contiguous ndarray, optionally enforcing ``ndim``.

    NaNs and infs are rejected: the numerical pipeline (POD eigensolves,
    BPTT) silently corrupts results when fed non-finite inputs.
    """
    arr = np.ascontiguousarray(x, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_matrix(x, *, name: str = "matrix") -> np.ndarray:
    """Validate a 2-D float matrix."""
    return check_array(x, name=name, ndim=2)


def check_positive_int(value, *, name: str = "value") -> int:
    """Validate a strictly positive integer (bools rejected)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability(value, *, name: str = "value") -> float:
    """Validate a float in [0, 1]."""
    p = float(value)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")
    return p
