"""Shared utilities: RNG management, validation, smoothing helpers."""

from repro.utils.rng import as_generator, spawn
from repro.utils.validation import (
    check_array,
    check_matrix,
    check_positive_int,
    check_probability,
)
from repro.utils.smoothing import moving_average, running_max

__all__ = [
    "as_generator",
    "spawn",
    "check_array",
    "check_matrix",
    "check_positive_int",
    "check_probability",
    "moving_average",
    "running_max",
]
