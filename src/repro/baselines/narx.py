"""fireTS-style direct (non-autoregressive) NARX forecaster.

Paper Sec. IV-C: "if our target is given by a(t+1)..a(t+K), we fit a
data-driven regressor using information from a(t-1)..a(t-K)", with the
past always taken from true measurements (no recursion on model output).
``DirectNARXForecaster`` wraps any flat-vector regressor with a
``fit(x, y)`` / ``predict(x)`` interface — the from-scratch linear,
random-forest and gradient-boosting estimators here, mirroring how the
paper drives scikit-learn/XGBoost through fireTS.
"""

from __future__ import annotations

import numpy as np

from repro.data.windowing import WindowedExamples
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["DirectNARXForecaster"]


class DirectNARXForecaster:
    """Flatten windowed sequences into tabular regression.

    Input windows ``(n, K, F)`` become feature rows ``(n, K*F)``; output
    windows likewise. The wrapped regressor sees exactly the tabular
    problem fireTS constructs.
    """

    def __init__(self, regressor, window: int) -> None:
        self.regressor = regressor
        self.window = check_positive_int(window, name="window")
        self.n_features_: int | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _flatten(tensor: np.ndarray) -> np.ndarray:
        if tensor.ndim != 3:
            raise ValueError(
                f"expected (n, K, F) windows, got shape {tensor.shape}")
        n = tensor.shape[0]
        return np.ascontiguousarray(tensor.reshape(n, -1))

    def fit(self, examples: WindowedExamples) -> "DirectNARXForecaster":
        if examples.window != self.window:
            raise ValueError(
                f"examples have window {examples.window}, forecaster "
                f"expects {self.window}")
        x = self._flatten(examples.inputs)
        y = self._flatten(examples.outputs)
        self.n_features_ = examples.n_features
        self.regressor.fit(x, y)
        return self

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Forecast output windows for ``(n, K, F)`` input windows."""
        if self.n_features_ is None:
            raise RuntimeError("predict called before fit")
        x = self._flatten(np.asarray(inputs, dtype=np.float64))
        flat = check_matrix(self.regressor.predict(x), name="prediction")
        n = x.shape[0]
        return flat.reshape(n, self.window, self.n_features_)
