"""Gradient-boosted regression trees (XGBoost stand-in).

Stagewise least-squares boosting: each round fits a shallow CART tree to
the current residuals of every output jointly (vector leaves) and adds a
shrunken copy to the ensemble. Defaults mirror XGBoost's
(100 rounds, depth 3... 6 in XGBoost proper — depth 3 is the
scikit-learn GBM default; both are exposed). Squared-error objective, as
the paper's default-config XGBoost uses for regression.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.tree import DecisionTreeRegressor
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Multi-output least-squares gradient boosting.

    Parameters
    ----------
    n_estimators / learning_rate / max_depth:
        Boosting rounds, shrinkage, per-tree depth cap.
    subsample:
        Optional stochastic-boosting row fraction (1.0 = off).
    """

    def __init__(self, n_estimators: int = 100, learning_rate: float = 0.1,
                 max_depth: int = 3, subsample: float = 1.0,
                 min_samples_leaf: int = 1, rng=None) -> None:
        self.n_estimators = check_positive_int(n_estimators,
                                               name="n_estimators")
        if learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        self.learning_rate = float(learning_rate)
        self.max_depth = check_positive_int(max_depth, name="max_depth")
        self.subsample = float(subsample)
        self.min_samples_leaf = min_samples_leaf
        self.rng = as_generator(rng)
        self.base_prediction_: np.ndarray | None = None
        self.estimators_: list[DecisionTreeRegressor] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        x = check_matrix(x, name="x")
        y = check_matrix(y, name="y")
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        n = x.shape[0]
        self.base_prediction_ = y.mean(axis=0)
        current = np.tile(self.base_prediction_, (n, 1))
        self.estimators_ = []
        for tree_rng in spawn(self.rng, self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                m = max(1, int(round(self.subsample * n)))
                idx = tree_rng.choice(n, size=m, replace=False)
            else:
                idx = slice(None)
            tree = DecisionTreeRegressor(max_depth=self.max_depth,
                                         min_samples_leaf=self.min_samples_leaf,
                                         rng=tree_rng)
            tree.fit(x[idx], residual[idx])
            current += self.learning_rate * tree.predict(x)
            self.estimators_.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.base_prediction_ is None:
            raise RuntimeError("predict called before fit")
        x = check_matrix(x, name="x")
        out = np.tile(self.base_prediction_, (x.shape[0], 1))
        for tree in self.estimators_:
            out += self.learning_rate * tree.predict(x)
        return out
