"""Multi-output linear least-squares regressor."""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.utils.validation import check_matrix

__all__ = ["LinearRegressor"]


class LinearRegressor:
    """Ordinary least squares ``y = x W + b`` (multi-output).

    Solved with ``scipy.linalg.lstsq`` (SVD-based, handles rank
    deficiency). ``ridge`` adds optional L2 regularization via augmented
    rows — the default 0 matches scikit-learn's plain ``LinearRegression``
    the paper deploys through fireTS.
    """

    def __init__(self, ridge: float = 0.0) -> None:
        if ridge < 0:
            raise ValueError(f"ridge must be non-negative, got {ridge}")
        self.ridge = float(ridge)
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegressor":
        x = check_matrix(x, name="x")
        y = check_matrix(y, name="y")
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        x_mean = x.mean(axis=0)
        y_mean = y.mean(axis=0)
        xc = x - x_mean
        yc = y - y_mean
        if self.ridge > 0.0:
            n_feat = x.shape[1]
            xc = np.vstack([xc, np.sqrt(self.ridge) * np.eye(n_feat)])
            yc = np.vstack([yc, np.zeros((n_feat, y.shape[1]))])
        coef, *_ = sla.lstsq(xc, yc)
        self.coef_ = coef
        self.intercept_ = y_mean - x_mean @ coef
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("predict called before fit")
        x = check_matrix(x, name="x")
        if x.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"x has {x.shape[1]} features, model expects "
                f"{self.coef_.shape[0]}")
        return x @ self.coef_ + self.intercept_
