"""Classical forecasting baselines (paper Sec. IV-C, Table II).

The paper compares the NAS-discovered POD-LSTM against linear, XGBoost
and random-forest regressors (via the fireTS non-autoregressive wrapper
around scikit-learn-style estimators) and against manually designed
stacked LSTMs. Neither scikit-learn nor XGBoost is available offline, so
the estimators are implemented from scratch: multi-output least squares,
CART regression trees, bootstrap random forests, and gradient-boosted
trees, plus the fireTS-style direct (non-autoregressive) NARX wrapper.
"""

from repro.baselines.linear import LinearRegressor
from repro.baselines.tree import DecisionTreeRegressor
from repro.baselines.forest import RandomForestRegressor
from repro.baselines.gbt import GradientBoostingRegressor
from repro.baselines.narx import DirectNARXForecaster
from repro.baselines.manual_lstm import build_manual_lstm, MANUAL_LSTM_WIDTHS

__all__ = [
    "LinearRegressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "DirectNARXForecaster",
    "build_manual_lstm",
    "MANUAL_LSTM_WIDTHS",
]
