"""Manually designed stacked LSTM baselines (paper Table II).

The paper's manual variants scan hidden width over {40, 80, 120, 200} in
one- and five-layer configurations, trained for 100 epochs — illustrating
the trial-and-error burden NAS removes.
"""

from __future__ import annotations

from repro.nn.layers import LSTMLayer
from repro.nn.model import Network
from repro.utils.validation import check_positive_int

__all__ = ["build_manual_lstm", "MANUAL_LSTM_WIDTHS"]

#: Hidden widths scanned in the paper's manual baseline (Table II columns
#: LSTM-40 .. LSTM-200).
MANUAL_LSTM_WIDTHS = (40, 80, 120, 200)


def build_manual_lstm(width: int, n_layers: int, *, input_dim: int = 5,
                      output_dim: int = 5, rng=None) -> Network:
    """A plain stacked LSTM: ``n_layers`` LSTM(width) layers plus the
    LSTM(output_dim) head (same head convention as the search space).

    Paper configurations use ``n_layers`` of 1 or 5.
    """
    width = check_positive_int(width, name="width")
    n_layers = check_positive_int(n_layers, name="n_layers")
    net = Network(input_dim=input_dim, rng=rng)
    current = "input"
    for k in range(1, n_layers + 1):
        current = net.add_node(f"lstm_{k}", LSTMLayer(width), [current])
    net.add_node("output", LSTMLayer(output_dim), [current])
    net.set_output("output")
    return net
