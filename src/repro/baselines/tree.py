"""CART regression tree (multi-output, variance-reduction splits).

Greedy binary splitting on axis-aligned thresholds minimizing the summed
squared error across all outputs. Split search per feature is vectorized:
sort once, then prefix sums of ``y`` and ``|y|^2`` give every candidate
split's SSE in O(n) — the standard CART trick.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    """Internal (feature/threshold set) or leaf (value set) node."""

    value: np.ndarray
    feature: int = -1
    threshold: float = 0.0
    left: "._Node | None" = None
    right: "._Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """Multi-output CART.

    Parameters
    ----------
    max_depth:
        Depth limit (``None`` = unbounded, sklearn default).
    min_samples_split / min_samples_leaf:
        Pre-pruning thresholds (sklearn defaults 2 / 1).
    max_features:
        Features examined per split: ``None`` (all), an int, or a float
        fraction — the forest's decorrelation knob.
    """

    def __init__(self, max_depth: int | None = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_features: int | float | None = None,
                 rng=None) -> None:
        if max_depth is not None and max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = as_generator(rng)
        self._root: _Node | None = None
        self.n_features_: int | None = None

    # ------------------------------------------------------------------
    def _n_split_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if isinstance(mf, float):
            return max(1, min(n_features, int(round(mf * n_features))))
        return max(1, min(n_features, int(mf)))

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = check_matrix(x, name="x")
        y = check_matrix(y, name="y")
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        self.n_features_ = x.shape[1]
        self._root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=y.mean(axis=0))
        n = x.shape[0]
        if (n < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)):
            return node
        split = self._best_split(x, y)
        if split is None:
            return node
        feature, threshold = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, x: np.ndarray,
                    y: np.ndarray) -> tuple[int, float] | None:
        n, n_features = x.shape
        k = self._n_split_features(n_features)
        features = (np.arange(n_features) if k == n_features
                    else self.rng.choice(n_features, size=k, replace=False))
        total_sq = float(np.sum(y * y))
        total_sum = y.sum(axis=0)
        base_sse = total_sq - float(total_sum @ total_sum) / n
        best: tuple[float, int, float] | None = None
        min_leaf = self.min_samples_leaf
        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            xs = x[order, feature]
            ys = y[order]
            csum = np.cumsum(ys, axis=0)
            csq = np.cumsum(np.sum(ys * ys, axis=1))
            # Candidate split after position i (1-based count = i+1).
            counts = np.arange(1, n)
            left_sum = csum[:-1]
            left_sq = csq[:-1]
            right_sum = total_sum[None, :] - left_sum
            right_sq = total_sq - left_sq
            sse = (left_sq - np.einsum("ij,ij->i", left_sum, left_sum) / counts
                   + right_sq
                   - np.einsum("ij,ij->i", right_sum, right_sum) / (n - counts))
            # Valid splits: both children big enough, threshold between
            # *distinct* values.
            valid = ((counts >= min_leaf) & (n - counts >= min_leaf)
                     & (xs[1:] > xs[:-1]))
            if not np.any(valid):
                continue
            sse = np.where(valid, sse, np.inf)
            i = int(np.argmin(sse))
            if sse[i] < base_sse - 1e-12 and (best is None or sse[i] < best[0]):
                best = (float(sse[i]), int(feature),
                        float(0.5 * (xs[i] + xs[i + 1])))
        if best is None:
            return None
        return best[1], best[2]

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("predict called before fit")
        x = check_matrix(x, name="x")
        if x.shape[1] != self.n_features_:
            raise ValueError(
                f"x has {x.shape[1]} features, model expects "
                f"{self.n_features_}")
        out = np.empty((x.shape[0], self._root.value.shape[0]))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold \
                    else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Realized tree depth (diagnostics)."""
        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        if self._root is None:
            raise RuntimeError("depth called before fit")
        return walk(self._root)
