"""Bootstrap random forest over multi-output CART trees."""

from __future__ import annotations

import numpy as np

from repro.baselines.tree import DecisionTreeRegressor
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Averaged ensemble of bootstrap-trained CART trees.

    Defaults follow scikit-learn's regressor at the time of the paper:
    100 trees, unbounded depth, all features considered at each split,
    bootstrap sampling.
    """

    def __init__(self, n_estimators: int = 100,
                 max_depth: int | None = None,
                 min_samples_leaf: int = 1,
                 max_features: int | float | None = None,
                 bootstrap: bool = True, rng=None) -> None:
        self.n_estimators = check_positive_int(n_estimators,
                                               name="n_estimators")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.rng = as_generator(rng)
        self.estimators_: list[DecisionTreeRegressor] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = check_matrix(x, name="x")
        y = check_matrix(y, name="y")
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        n = x.shape[0]
        self.estimators_ = []
        for tree_rng in spawn(self.rng, self.n_estimators):
            if self.bootstrap:
                idx = tree_rng.integers(0, n, size=n)
                xb, yb = x[idx], y[idx]
            else:
                xb, yb = x, y
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features, rng=tree_rng)
            tree.fit(xb, yb)
            self.estimators_.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("predict called before fit")
        preds = self.estimators_[0].predict(x)
        for tree in self.estimators_[1:]:
            preds += tree.predict(x)
        preds /= len(self.estimators_)
        return preds
