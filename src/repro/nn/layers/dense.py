"""Time-distributed dense layer.

Applies ``y_t = act(x_t W + b)`` independently at every timestep — the
paper's projection layers for skip connections use exactly this with no
activation.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.nn.activations import get_activation
from repro.nn.initializers import glorot_uniform
from repro.nn.layers.base import Layer
from repro.utils.validation import check_positive_int

__all__ = ["DenseLayer"]


class DenseLayer(Layer):
    """Dense ``(B, T, F) -> (B, T, units)``.

    Parameters
    ----------
    units:
        Output feature dimension.
    activation:
        Activation name or instance; ``None`` = linear (paper's default
        for projection layers).
    """

    def __init__(self, units: int, activation=None) -> None:
        super().__init__()
        self.units = check_positive_int(units, name="units")
        self.activation = get_activation(activation)

    def build(self, input_dims: list[int], rng=None) -> None:
        if len(input_dims) != 1:
            raise ValueError(f"DenseLayer takes one input, got {len(input_dims)}")
        in_dim = check_positive_int(input_dims[0], name="input dim")
        self.add_param("W", glorot_uniform((in_dim, self.units), rng))
        self.add_param("b", np.zeros(self.units))
        super().build(input_dims, rng)

    @property
    def output_dim(self) -> int:
        return self.units

    def forward(self, inputs, training: bool = False) -> np.ndarray:
        x = self._check_single_input(inputs)
        obs.counter_add("nn/gemms")
        pre = x @ self.params["W"] + self.params["b"]
        y = self.activation.forward(pre)
        self._cache = (x, y)
        return y

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, y = self._cache
        self._cache = None
        grad_pre = self.activation.backward(grad_output, y)
        b, t, f = x.shape
        x2 = x.reshape(b * t, f)
        g2 = grad_pre.reshape(b * t, self.units)
        self.grads["W"] += x2.T @ g2
        self.grads["b"] += g2.sum(axis=0)
        return [grad_pre @ self.params["W"].T]

    def __repr__(self) -> str:
        return f"DenseLayer(units={self.units}, activation={self.activation.name})"
