"""Structural layers: Add (skip-connection merge), Identity, Activation.

The paper's search space merges a skip connection into the main path with
a sum operator, and "after each add operation, the ReLU activation
function was applied to the tensor" — ``AddLayer`` implements both in one
node.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import get_activation
from repro.nn.layers.base import Layer

__all__ = ["AddLayer", "ActivationLayer", "IdentityLayer"]


class AddLayer(Layer):
    """Sum of N same-shaped tensors, followed by an activation.

    Default activation is ReLU, matching the paper's post-add rule.
    """

    def __init__(self, activation="relu") -> None:
        super().__init__()
        self.activation = get_activation(activation)
        self._n_inputs = 0
        self._dim: int | None = None

    def build(self, input_dims: list[int], rng=None) -> None:
        if not input_dims:
            raise ValueError("AddLayer needs at least one input")
        if len(set(input_dims)) != 1:
            raise ValueError(
                f"AddLayer inputs must share a feature dim, got {input_dims}")
        self._n_inputs = len(input_dims)
        self._dim = input_dims[0]
        super().build(input_dims, rng)

    @property
    def output_dim(self) -> int:
        if self._dim is None:
            raise RuntimeError("AddLayer not built")
        return self._dim

    def forward(self, inputs, training: bool = False) -> np.ndarray:
        if len(inputs) != self._n_inputs:
            raise ValueError(
                f"built for {self._n_inputs} inputs, got {len(inputs)}")
        shapes = {x.shape for x in inputs}
        if len(shapes) != 1:
            raise ValueError(f"AddLayer inputs must match shapes, got {shapes}")
        total = inputs[0].copy()
        for x in inputs[1:]:
            total += x
        y = self.activation.forward(total)
        self._cache = y
        return y

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        y = self._cache
        self._cache = None
        grad = self.activation.backward(grad_output, y)
        # The sum routes the same gradient to each addend; the first gets
        # the array itself, the rest views would alias so we copy.
        return [grad] + [grad.copy() for _ in range(self._n_inputs - 1)]

    def __repr__(self) -> str:
        return f"AddLayer(activation={self.activation.name})"


class ActivationLayer(Layer):
    """Standalone elementwise activation node."""

    def __init__(self, activation) -> None:
        super().__init__()
        self.activation = get_activation(activation)
        self._dim: int | None = None

    def build(self, input_dims: list[int], rng=None) -> None:
        if len(input_dims) != 1:
            raise ValueError("ActivationLayer takes one input")
        self._dim = input_dims[0]
        super().build(input_dims, rng)

    @property
    def output_dim(self) -> int:
        if self._dim is None:
            raise RuntimeError("ActivationLayer not built")
        return self._dim

    def forward(self, inputs, training: bool = False) -> np.ndarray:
        x = self._check_single_input(inputs)
        y = self.activation.forward(x)
        self._cache = y
        return y

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        y = self._cache
        self._cache = None
        return [self.activation.backward(grad_output, y)]

    def __repr__(self) -> str:
        return f"ActivationLayer({self.activation.name})"


class IdentityLayer(Layer):
    """Pass-through node — the 'Identity' operation of the search space."""

    def __init__(self) -> None:
        super().__init__()
        self._dim: int | None = None

    def build(self, input_dims: list[int], rng=None) -> None:
        if len(input_dims) != 1:
            raise ValueError("IdentityLayer takes one input")
        self._dim = input_dims[0]
        super().build(input_dims, rng)

    @property
    def output_dim(self) -> int:
        if self._dim is None:
            raise RuntimeError("IdentityLayer not built")
        return self._dim

    def forward(self, inputs, training: bool = False) -> np.ndarray:
        x = self._check_single_input(inputs)
        return x

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        return [grad_output]
