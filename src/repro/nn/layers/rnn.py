"""Simple (Elman) RNN layer with exact backpropagation through time.

``h_t = tanh(x_t Wx + h_{t-1} Wh + b)`` — the lightest recurrent cell in
the extended operation catalog (see :mod:`repro.nn.layers.gru`).

Weight layout: ``Wx (F, H)``, ``Wh (H, H)``, ``b (H,)``. Reference and
fused implementations coexist (:mod:`repro.nn.fused`); with a single
gate there is nothing to stack, so the fused path is pure buffer reuse
plus cache-blocked BPTT accumulation.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.nn.activations import dtanh_from_y
from repro.nn.detmath import recurrent_matmul
from repro.nn.fused import ScratchPool, fused_enabled, ones_column
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.layers.base import Layer
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["SimpleRNNLayer"]


class SimpleRNNLayer(Layer):
    """Elman RNN ``(B, T, F) -> (B, T, units)``, full sequences."""

    def __init__(self, units: int) -> None:
        super().__init__()
        self.units = check_positive_int(units, name="units")
        self._pool = ScratchPool()

    def build(self, input_dims: list[int], rng=None) -> None:
        if len(input_dims) != 1:
            raise ValueError(
                f"SimpleRNNLayer takes one input, got {len(input_dims)}")
        in_dim = check_positive_int(input_dims[0], name="input dim")
        gen = as_generator(rng)
        self.add_param("Wx", glorot_uniform((in_dim, self.units), gen))
        self.add_param("Wh", orthogonal((self.units, self.units), gen))
        self.add_param("b", np.zeros(self.units))
        super().build(input_dims, rng)

    @property
    def output_dim(self) -> int:
        return self.units

    # ------------------------------------------------------------------
    def forward(self, inputs, training: bool = False) -> np.ndarray:
        x = self._check_single_input(inputs)
        if fused_enabled():
            return self._forward_fused(x)
        return self._forward_reference(x)

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        self._cache = None
        if cache[0] == "fused":
            return self._backward_fused(cache, grad_output)
        return self._backward_reference(cache, grad_output)

    # ------------------------------------------------------------------
    # Reference path — ground truth of the differential suite.
    # ------------------------------------------------------------------
    def _forward_reference(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        wx, wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]
        hs = np.zeros((steps, batch, self.units))
        x_proj = x @ wx + b
        # One input-projection GEMM + one recurrent GEMM per step.
        obs.counter_add("nn/gemms", 1 + steps)
        h_prev = np.zeros((batch, self.units))
        for t in range(steps):
            h_prev = np.tanh(x_proj[:, t, :] + recurrent_matmul(h_prev, wh))
            hs[t] = h_prev
        self._cache = ("ref", x, hs)
        return np.ascontiguousarray(hs.transpose(1, 0, 2))

    def _backward_reference(self, cache, grad_output: np.ndarray
                            ) -> list[np.ndarray]:
        _, x, hs = cache
        batch, steps, _ = x.shape
        wx, wh = self.params["Wx"], self.params["Wh"]
        grad_out = grad_output.transpose(1, 0, 2)
        dwx = np.zeros_like(wx)
        dwh = np.zeros_like(wh)
        db = np.zeros_like(self.params["b"])
        dx = np.zeros_like(x)
        dh_next = np.zeros((batch, self.units))
        for t in range(steps - 1, -1, -1):
            h_prev = hs[t - 1] if t > 0 else np.zeros((batch, self.units))
            dpre = (grad_out[t] + dh_next) * dtanh_from_y(hs[t])
            dwx += x[:, t, :].T @ dpre
            dwh += h_prev.T @ dpre
            db += dpre.sum(axis=0)
            dx[:, t, :] = dpre @ wx.T
            dh_next = dpre @ wh.T
        self.grads["Wx"] += dwx
        self.grads["Wh"] += dwh
        self.grads["b"] += db
        return [dx]

    # ------------------------------------------------------------------
    # Fused path — the training hot path (see repro.nn.fused).
    # ------------------------------------------------------------------
    def _buffers(self, batch: int, steps: int, in_dim: int) -> dict:
        units = self.units
        return self._pool.get(
            (batch, steps, in_dim),
            lambda: {
                "hs": np.empty((steps, batch, units)),
                "xT": np.empty((steps, batch, in_dim)),
                "xp": np.empty((batch, steps, units)),
                "pre": np.empty((batch, units)),
                "whT": np.empty((units, units)),
                "wxT": np.empty((units, in_dim)),
                "t1": np.empty((batch, units)),
                "t2": np.empty((batch, units)),
                "dh_next": np.empty((batch, units)),
                "zeros": np.zeros((batch, units)),
                "dpres": np.empty((steps, batch, units)),
                "acc": ones_column(
                    np.empty((steps * batch, in_dim + 1 + units)), in_dim),
                "accR": np.empty((in_dim + 1 + units, units)),
                "dxf": np.empty((steps * batch, in_dim)),
            })

    def _forward_fused(self, x: np.ndarray) -> np.ndarray:
        batch, steps, in_dim = x.shape
        units = self.units
        wx, wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]
        bufs = self._buffers(batch, steps, in_dim)
        hs = bufs["hs"]
        # Input projection: the REFERENCE's exact batched 3-D matmul —
        # a differently shaped GEMM over the same data is not bitwise
        # safe in general (M/N-dependent kernels reorder the
        # K-reduction; small odd shapes expose it).
        xp = bufs["xp"]
        np.matmul(x, wx, out=xp)  # (B, T, units), == reference x @ wx
        xp += b
        # Time-major input copy for the backward accumulation fill.
        xT = bufs["xT"]
        xT[:] = x.transpose(1, 0, 2)
        obs.counter_add("nn/fused_gemms", 1 + steps)
        h_prev = bufs["zeros"]
        pre = bufs["pre"]  # reused pre-activation buffer
        for t in range(steps):
            recurrent_matmul(h_prev, wh, out=pre)
            pre += xp[:, t, :]
            h_prev = np.tanh(pre, out=hs[t])
        self._cache = ("fused", x, hs)
        # Always a fresh copy: for singleton batch/steps the transpose
        # is already contiguous and ``ascontiguousarray`` would hand the
        # caller a *view into the pooled scratch* that the next forward
        # overwrites.
        out = np.empty((batch, steps, units))
        np.copyto(out, hs.transpose(1, 0, 2))
        return out

    def _backward_fused(self, cache, grad_output: np.ndarray
                        ) -> list[np.ndarray]:
        _, x, hs = cache
        batch, steps, in_dim = x.shape
        units = self.units
        wx, wh = self.params["Wx"], self.params["Wh"]
        bufs = self._buffers(batch, steps, in_dim)
        # Contiguous pre-transposed weights (OpenBLAS's NoTrans path
        # beats its Trans path at these sizes; within the documented
        # 1e-12 backward budget at non-BLAS shapes).
        wh_t = bufs["whT"]
        np.copyto(wh_t, wh.T)
        wx_t = bufs["wxT"]
        np.copyto(wx_t, wx.T)
        grad_out = grad_output.transpose(1, 0, 2)
        dpres = bufs["dpres"]
        t1, t2 = bufs["t1"], bufs["t2"]
        dh_next = bufs["dh_next"]
        dh_next[:] = 0.0
        for t in range(steps - 1, -1, -1):
            np.add(grad_out[t], dh_next, out=t1)
            np.multiply(hs[t], hs[t], out=t2)  # dtanh = 1 - h^2
            np.subtract(1.0, t2, out=t2)
            np.multiply(t1, t2, out=dpres[t])
            np.matmul(dpres[t], wh_t, out=dh_next)

        # Cache-blocked accumulation (see repro.nn.fused): dWx, db, dWh
        # from one stacked GEMM against [x | 1 | h_{t-1}], dx from a
        # second.
        obs.counter_add("nn/fused_bptt_gemms", 2 + steps)
        dpre_flat = dpres.reshape(steps * batch, units)
        acc = bufs["acc"]
        acc3 = acc.reshape(steps, batch, in_dim + 1 + units)
        acc3[..., :in_dim] = bufs["xT"]  # filled time-major by forward
        acc3[0, :, in_dim + 1:] = 0.0
        acc3[1:, :, in_dim + 1:] = hs[:-1]
        R = np.matmul(acc.T, dpre_flat, out=bufs["accR"])
        self.grads["Wx"] += R[:in_dim]
        self.grads["b"] += R[in_dim]
        self.grads["Wh"] += R[in_dim + 1:]
        dxf = np.matmul(dpre_flat, wx_t, out=bufs["dxf"])
        dx = dxf.reshape(steps, batch, in_dim)
        out = np.empty((batch, steps, in_dim))  # never a pooled view
        np.copyto(out, dx.transpose(1, 0, 2))
        return [out]

    def __repr__(self) -> str:
        return f"SimpleRNNLayer(units={self.units})"
