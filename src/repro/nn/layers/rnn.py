"""Simple (Elman) RNN layer with exact backpropagation through time.

``h_t = tanh(x_t Wx + h_{t-1} Wh + b)`` — the lightest recurrent cell in
the extended operation catalog (see :mod:`repro.nn.layers.gru`).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.nn.activations import dtanh_from_y
from repro.nn.detmath import recurrent_matmul
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.layers.base import Layer
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["SimpleRNNLayer"]


class SimpleRNNLayer(Layer):
    """Elman RNN ``(B, T, F) -> (B, T, units)``, full sequences."""

    def __init__(self, units: int) -> None:
        super().__init__()
        self.units = check_positive_int(units, name="units")

    def build(self, input_dims: list[int], rng=None) -> None:
        if len(input_dims) != 1:
            raise ValueError(
                f"SimpleRNNLayer takes one input, got {len(input_dims)}")
        in_dim = check_positive_int(input_dims[0], name="input dim")
        gen = as_generator(rng)
        self.add_param("Wx", glorot_uniform((in_dim, self.units), gen))
        self.add_param("Wh", orthogonal((self.units, self.units), gen))
        self.add_param("b", np.zeros(self.units))
        super().build(input_dims, rng)

    @property
    def output_dim(self) -> int:
        return self.units

    def forward(self, inputs, training: bool = False) -> np.ndarray:
        x = self._check_single_input(inputs)
        batch, steps, _ = x.shape
        wx, wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]
        hs = np.zeros((steps, batch, self.units))
        x_proj = x @ wx + b
        # One input-projection GEMM + one recurrent GEMM per step.
        obs.counter_add("nn/gemms", 1 + steps)
        h_prev = np.zeros((batch, self.units))
        for t in range(steps):
            h_prev = np.tanh(x_proj[:, t, :] + recurrent_matmul(h_prev, wh))
            hs[t] = h_prev
        self._cache = (x, hs)
        return np.ascontiguousarray(hs.transpose(1, 0, 2))

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, hs = self._cache
        self._cache = None
        batch, steps, _ = x.shape
        wx, wh = self.params["Wx"], self.params["Wh"]
        grad_out = grad_output.transpose(1, 0, 2)
        dwx = np.zeros_like(wx)
        dwh = np.zeros_like(wh)
        db = np.zeros_like(self.params["b"])
        dx = np.zeros_like(x)
        dh_next = np.zeros((batch, self.units))
        for t in range(steps - 1, -1, -1):
            h_prev = hs[t - 1] if t > 0 else np.zeros((batch, self.units))
            dpre = (grad_out[t] + dh_next) * dtanh_from_y(hs[t])
            dwx += x[:, t, :].T @ dpre
            dwh += h_prev.T @ dpre
            db += dpre.sum(axis=0)
            dx[:, t, :] = dpre @ wx.T
            dh_next = dpre @ wh.T
        self.grads["Wx"] += dwx
        self.grads["Wh"] += dwh
        self.grads["b"] += db
        return [dx]

    def __repr__(self) -> str:
        return f"SimpleRNNLayer(units={self.units})"
