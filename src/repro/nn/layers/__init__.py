"""Layers: Dense, LSTM, GRU, SimpleRNN, Add, Identity — all over
(batch, time, features)."""

from repro.nn.layers.base import Layer
from repro.nn.layers.dense import DenseLayer
from repro.nn.layers.lstm import LSTMLayer
from repro.nn.layers.gru import GRULayer
from repro.nn.layers.rnn import SimpleRNNLayer
from repro.nn.layers.elementwise import AddLayer, ActivationLayer, IdentityLayer

__all__ = ["Layer", "DenseLayer", "LSTMLayer", "GRULayer",
           "SimpleRNNLayer", "AddLayer", "ActivationLayer",
           "IdentityLayer"]
