"""Layer protocol.

All tensors flowing through the network are ``(batch, time, features)``;
the time dimension is never perturbed (paper Sec. III-A: "the second
dimension of a tensor that is transformed from input to output is kept
constant"). A layer:

* is **built** once against its input feature dimensions (allocating
  parameters with an explicit RNG),
* caches whatever the most recent ``forward`` needs for ``backward``
  (single-use cache: one backward per forward),
* accumulates parameter gradients in ``grads`` (zeroed by the trainer
  between steps via :meth:`zero_grads`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Layer"]


class Layer:
    """Base layer with parameter/gradient bookkeeping."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.built = False
        self._cache = None

    # -- construction ----------------------------------------------------
    def build(self, input_dims: list[int], rng=None) -> None:
        """Allocate parameters given the feature dim of each input."""
        self.built = True

    @property
    def output_dim(self) -> int:
        """Feature dimension of the output tensor (valid after build)."""
        raise NotImplementedError

    def add_param(self, name: str, value: np.ndarray) -> None:
        self.params[name] = np.ascontiguousarray(value, dtype=np.float64)
        self.grads[name] = np.zeros_like(self.params[name])

    def zero_grads(self) -> None:
        for g in self.grads.values():
            g[...] = 0.0

    @property
    def n_parameters(self) -> int:
        return int(sum(p.size for p in self.params.values()))

    # -- execution ---------------------------------------------------------
    def forward(self, inputs: list[np.ndarray], training: bool = False
                ) -> np.ndarray:
        """Compute the output from input tensors (each ``(B, T, F_i)``)."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        """Given dL/d(output), accumulate parameter grads and return
        dL/d(input_i) for every input of the latest forward."""
        raise NotImplementedError

    # -- diagnostics -------------------------------------------------------
    def _check_single_input(self, inputs: list[np.ndarray]) -> np.ndarray:
        if len(inputs) != 1:
            raise ValueError(
                f"{type(self).__name__} expects exactly one input, "
                f"got {len(inputs)}")
        x = inputs[0]
        if x.ndim != 3:
            raise ValueError(
                f"{type(self).__name__} expects (batch, time, features), "
                f"got shape {x.shape}")
        return x

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
