"""GRU layer with exact backpropagation through time.

Extension beyond the paper's LSTM-only space: the paper's related-work
discussion (Ororbia et al.) and its future-work section motivate searching
over *hybrid* memory cells; adding GRU (and SimpleRNN) operations to the
catalog realizes that. Cell equations (update gate ``z``, reset gate
``r``):

.. code-block:: text

    z = sigm(x Wz + h Uz + bz)
    r = sigm(x Wr + h Ur + br)
    g = tanh(x Wg + (r * h) Ug + bg)
    h' = z * h + (1 - z) * g
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.nn.activations import dsigmoid_from_y, dtanh_from_y, sigmoid
from repro.nn.detmath import recurrent_matmul
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.layers.base import Layer
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["GRULayer"]


class GRULayer(Layer):
    """GRU ``(B, T, F) -> (B, T, units)``, returning full sequences."""

    def __init__(self, units: int) -> None:
        super().__init__()
        self.units = check_positive_int(units, name="units")

    def build(self, input_dims: list[int], rng=None) -> None:
        if len(input_dims) != 1:
            raise ValueError(f"GRULayer takes one input, got {len(input_dims)}")
        in_dim = check_positive_int(input_dims[0], name="input dim")
        gen = as_generator(rng)
        h = self.units
        # Gate order along the 3H axis: [z, r, g].
        self.add_param("Wx", glorot_uniform((in_dim, 3 * h), gen))
        self.add_param("Wh", orthogonal((h, 3 * h), gen))
        self.add_param("b", np.zeros(3 * h))
        super().build(input_dims, rng)

    @property
    def output_dim(self) -> int:
        return self.units

    def forward(self, inputs, training: bool = False) -> np.ndarray:
        x = self._check_single_input(inputs)
        batch, steps, _ = x.shape
        h = self.units
        wx, wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]

        hs = np.zeros((steps, batch, h))
        gates = np.zeros((steps, batch, 3 * h))
        x_proj = x @ wx + b
        # One input-projection GEMM + two recurrent GEMMs per step.
        obs.counter_add("nn/gemms", 1 + 2 * steps)
        h_prev = np.zeros((batch, h))
        for t in range(steps):
            rec = recurrent_matmul(h_prev, wh)      # (B, 3H)
            z = sigmoid(x_proj[:, t, :h] + rec[:, :h])
            r = sigmoid(x_proj[:, t, h:2 * h] + rec[:, h:2 * h])
            g = np.tanh(x_proj[:, t, 2 * h:]
                        + recurrent_matmul(r * h_prev, wh[:, 2 * h:]))
            h_t = z * h_prev + (1.0 - z) * g
            gates[t, :, :h] = z
            gates[t, :, h:2 * h] = r
            gates[t, :, 2 * h:] = g
            hs[t] = h_t
            h_prev = h_t
        self._cache = (x, hs, gates)
        return np.ascontiguousarray(hs.transpose(1, 0, 2))

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, hs, gates = self._cache
        self._cache = None
        batch, steps, in_dim = x.shape
        h = self.units
        wx, wh = self.params["Wx"], self.params["Wh"]

        grad_out = grad_output.transpose(1, 0, 2)
        dwx = np.zeros_like(wx)
        dwh = np.zeros_like(wh)
        db = np.zeros_like(self.params["b"])
        dx = np.zeros_like(x)
        dh_next = np.zeros((batch, h))

        for t in range(steps - 1, -1, -1):
            z = gates[t, :, :h]
            r = gates[t, :, h:2 * h]
            g = gates[t, :, 2 * h:]
            h_prev = hs[t - 1] if t > 0 else np.zeros((batch, h))

            dh = grad_out[t] + dh_next
            dz = dh * (h_prev - g)
            dg = dh * (1.0 - z)
            dh_prev = dh * z

            dz_pre = dz * dsigmoid_from_y(z)
            dg_pre = dg * dtanh_from_y(g)
            # g's recurrent branch: (r * h_prev) @ Ug
            d_rh = dg_pre @ wh[:, 2 * h:].T
            dr = d_rh * h_prev
            dh_prev = dh_prev + d_rh * r
            dr_pre = dr * dsigmoid_from_y(r)

            dz_r = np.concatenate([dz_pre, dr_pre], axis=1)  # (B, 2H)
            dh_prev = dh_prev + dz_r @ wh[:, :2 * h].T

            dpre = np.concatenate([dz_r, dg_pre], axis=1)    # (B, 3H)
            dwx += x[:, t, :].T @ dpre
            db += dpre.sum(axis=0)
            dx[:, t, :] = dpre @ wx.T
            # Recurrent weight grads: z/r branches read h_prev; the
            # candidate branch reads r * h_prev (h_prev is zero at t=0).
            dwh[:, :2 * h] += h_prev.T @ dz_r
            dwh[:, 2 * h:] += (r * h_prev).T @ dg_pre
            dh_next = dh_prev

        self.grads["Wx"] += dwx
        self.grads["Wh"] += dwh
        self.grads["b"] += db
        return [dx]

    def __repr__(self) -> str:
        return f"GRULayer(units={self.units})"
