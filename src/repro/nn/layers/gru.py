"""GRU layer with exact backpropagation through time.

Extension beyond the paper's LSTM-only space: the paper's related-work
discussion (Ororbia et al.) and its future-work section motivate searching
over *hybrid* memory cells; adding GRU (and SimpleRNN) operations to the
catalog realizes that. Cell equations (update gate ``z``, reset gate
``r``):

.. code-block:: text

    z = sigm(x Wz + h Uz + bz)
    r = sigm(x Wr + h Ur + br)
    g = tanh(x Wg + (r * h) Ug + bg)
    h' = z * h + (1 - z) * g

Weight layout (shared with every serialized artifact): ``Wx (F, 3H)``,
``Wh (H, 3H)``, ``b (3H,)``, gates stacked ``[z, r, g]`` along the wide
axis. Like the LSTM, a reference and a fused implementation coexist
(:mod:`repro.nn.fused`); the fused forward issues the reference's exact
GEMM shapes (bitwise identity forbids reshaping them) and buys its
speed from buffer reuse, contiguous activation blocks and cache-blocked
BPTT accumulation.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.nn.activations import dsigmoid_from_y, dtanh_from_y, sigmoid
from repro.nn.detmath import recurrent_matmul
from repro.nn.fused import ScratchPool, fused_enabled, ones_column
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.layers.base import Layer
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["GRULayer"]


class GRULayer(Layer):
    """GRU ``(B, T, F) -> (B, T, units)``, returning full sequences."""

    def __init__(self, units: int) -> None:
        super().__init__()
        self.units = check_positive_int(units, name="units")
        self._pool = ScratchPool()

    def build(self, input_dims: list[int], rng=None) -> None:
        if len(input_dims) != 1:
            raise ValueError(f"GRULayer takes one input, got {len(input_dims)}")
        in_dim = check_positive_int(input_dims[0], name="input dim")
        gen = as_generator(rng)
        h = self.units
        # Gate order along the 3H axis: [z, r, g].
        self.add_param("Wx", glorot_uniform((in_dim, 3 * h), gen))
        self.add_param("Wh", orthogonal((h, 3 * h), gen))
        self.add_param("b", np.zeros(3 * h))
        super().build(input_dims, rng)

    @property
    def output_dim(self) -> int:
        return self.units

    # ------------------------------------------------------------------
    def forward(self, inputs, training: bool = False) -> np.ndarray:
        x = self._check_single_input(inputs)
        if fused_enabled():
            return self._forward_fused(x)
        return self._forward_reference(x)

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        self._cache = None
        if cache[0] == "fused":
            return self._backward_fused(cache, grad_output)
        return self._backward_reference(cache, grad_output)

    # ------------------------------------------------------------------
    # Reference path — ground truth of the differential suite.
    # ------------------------------------------------------------------
    def _forward_reference(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        h = self.units
        wx, wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]

        hs = np.zeros((steps, batch, h))
        gates = np.zeros((steps, batch, 3 * h))
        x_proj = x @ wx + b
        # One input-projection GEMM + two recurrent GEMMs per step.
        obs.counter_add("nn/gemms", 1 + 2 * steps)
        h_prev = np.zeros((batch, h))
        for t in range(steps):
            rec = recurrent_matmul(h_prev, wh)      # (B, 3H)
            z = sigmoid(x_proj[:, t, :h] + rec[:, :h])
            r = sigmoid(x_proj[:, t, h:2 * h] + rec[:, h:2 * h])
            g = np.tanh(x_proj[:, t, 2 * h:]
                        + recurrent_matmul(r * h_prev, wh[:, 2 * h:]))
            h_t = z * h_prev + (1.0 - z) * g
            gates[t, :, :h] = z
            gates[t, :, h:2 * h] = r
            gates[t, :, 2 * h:] = g
            hs[t] = h_t
            h_prev = h_t
        self._cache = ("ref", x, hs, gates)
        return np.ascontiguousarray(hs.transpose(1, 0, 2))

    def _backward_reference(self, cache, grad_output: np.ndarray
                            ) -> list[np.ndarray]:
        _, x, hs, gates = cache
        batch, steps, in_dim = x.shape
        h = self.units
        wx, wh = self.params["Wx"], self.params["Wh"]

        grad_out = grad_output.transpose(1, 0, 2)
        dwx = np.zeros_like(wx)
        dwh = np.zeros_like(wh)
        db = np.zeros_like(self.params["b"])
        dx = np.zeros_like(x)
        dh_next = np.zeros((batch, h))

        for t in range(steps - 1, -1, -1):
            z = gates[t, :, :h]
            r = gates[t, :, h:2 * h]
            g = gates[t, :, 2 * h:]
            h_prev = hs[t - 1] if t > 0 else np.zeros((batch, h))

            dh = grad_out[t] + dh_next
            dz = dh * (h_prev - g)
            dg = dh * (1.0 - z)
            dh_prev = dh * z

            dz_pre = dz * dsigmoid_from_y(z)
            dg_pre = dg * dtanh_from_y(g)
            # g's recurrent branch: (r * h_prev) @ Ug
            d_rh = dg_pre @ wh[:, 2 * h:].T
            dr = d_rh * h_prev
            dh_prev = dh_prev + d_rh * r
            dr_pre = dr * dsigmoid_from_y(r)

            dz_r = np.concatenate([dz_pre, dr_pre], axis=1)  # (B, 2H)
            dh_prev = dh_prev + dz_r @ wh[:, :2 * h].T

            dpre = np.concatenate([dz_r, dg_pre], axis=1)    # (B, 3H)
            dwx += x[:, t, :].T @ dpre
            db += dpre.sum(axis=0)
            dx[:, t, :] = dpre @ wx.T
            # Recurrent weight grads: z/r branches read h_prev; the
            # candidate branch reads r * h_prev (h_prev is zero at t=0).
            dwh[:, :2 * h] += h_prev.T @ dz_r
            dwh[:, 2 * h:] += (r * h_prev).T @ dg_pre
            dh_next = dh_prev

        self.grads["Wx"] += dwx
        self.grads["Wh"] += dwh
        self.grads["b"] += db
        return [dx]

    # ------------------------------------------------------------------
    # Fused path — the training hot path (see repro.nn.fused).
    # ------------------------------------------------------------------
    def _buffers(self, batch: int, steps: int, in_dim: int) -> dict:
        h = self.units
        return self._pool.get(
            (batch, steps, in_dim),
            lambda: {
                "hs": np.empty((steps, batch, h)),
                "gates": np.empty((steps, batch, 3 * h)),
                "rh": np.empty((steps, batch, h)),
                "xT": np.empty((steps, batch, in_dim)),
                "xp": np.empty((batch, steps, 3 * h)),
                "wh_g": np.empty((h, h)),
                "wh_zr_T": np.empty((2 * h, h)),
                "wh_g_T": np.empty((h, h)),
                "wxT3": np.empty((3, h, in_dim)),
                "zr": np.empty((batch, 2 * h)),
                "rec": np.empty((batch, 3 * h)),
                "gp": np.empty((batch, h)),
                "s2": np.empty((batch, 2 * h)),
                "t1": np.empty((batch, h)),
                "t2": np.empty((batch, h)),
                "dh": np.empty((batch, h)),
                "dhp": np.empty((batch, h)),
                "dzb": np.empty((batch, h)),
                "dgb": np.empty((batch, h)),
                "drh": np.empty((batch, h)),
                "mm": np.empty((batch, h)),
                "dh_next": np.empty((batch, h)),
                "zeros": np.zeros((batch, h)),
                "dpres": np.empty((steps, batch, 3 * h)),
                "h_shift": np.empty((steps, batch, h)),
                "acc": ones_column(
                    np.empty((steps * batch, in_dim + 1)), in_dim),
                "accR": np.empty((in_dim + 1, 3 * h)),
                "dxf": np.empty((steps * batch, in_dim)),
                "dxt": np.empty((steps * batch, in_dim)),
            })

    def _forward_fused(self, x: np.ndarray) -> np.ndarray:
        batch, steps, in_dim = x.shape
        h = self.units
        wx, wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]
        bufs = self._buffers(batch, steps, in_dim)
        # Contiguous copy of the candidate block, once per call: same
        # GEMM shape and values as the reference's ``wh[:, 2H:]`` view
        # (BLAS packs either into the identical panels; the invariant
        # gufunc's reduction order is layout-independent). Copied fresh
        # each call: the optimizer updates wh in place.
        wh_g = bufs["wh_g"]
        wh_g[:] = wh[:, 2 * h:]

        hs = bufs["hs"]
        gates = bufs["gates"]
        rh = bufs["rh"]  # r * h_prev, reused by backward
        # Input projection: the REFERENCE's exact batched 3-D matmul —
        # a differently shaped GEMM over the same data (flat B*T rows,
        # or per-gate column blocks) is not bitwise safe in general
        # (M/N-dependent kernels reorder the K-reduction; small odd
        # shapes expose it).
        xp = bufs["xp"]
        np.matmul(x, wx, out=xp)  # (B, T, 3H), == reference x @ wx
        xp += b
        # Time-major input copy for the backward accumulation fill.
        xT = bufs["xT"]
        xT[:] = x.transpose(1, 0, 2)
        # One input-projection GEMM + two recurrent GEMMs per step,
        # matching the reference shapes exactly (the dead candidate
        # third of the full product cannot be skipped without changing
        # the z/r GEMM's shape, hence its rounding).
        obs.counter_add("nn/fused_gemms", 1 + 2 * steps)
        h_prev = bufs["zeros"]
        zr = bufs["zr"]  # reused [z, r] pre-activations
        gp = bufs["gp"]  # reused candidate pre-activation
        s2, t1 = bufs["s2"], bufs["t1"]
        rec = bufs["rec"]
        for t in range(steps):
            recurrent_matmul(h_prev, wh, out=rec)
            np.add(rec[:, :2 * h], xp[:, t, :2 * h], out=zr)
            gate = gates[t]
            sigmoid(zr, out=gate[:, :2 * h], scratch=s2)      # z, r
            z = gate[:, :h]
            r = gate[:, h:2 * h]
            np.multiply(r, h_prev, out=rh[t])
            recurrent_matmul(rh[t], wh_g, out=gp)
            gp += xp[:, t, 2 * h:]
            g = np.tanh(gp, out=gate[:, 2 * h:])
            np.multiply(z, h_prev, out=hs[t])
            np.subtract(1.0, z, out=t1)        # (1 - z) * g
            np.multiply(t1, g, out=t1)
            hs[t] += t1
            h_prev = hs[t]
        self._cache = ("fused", x, hs, gates, rh)
        # Always a fresh copy: for singleton batch/steps the transpose
        # is already contiguous and ``ascontiguousarray`` would hand the
        # caller a *view into the pooled scratch* that the next forward
        # overwrites.
        out = np.empty((batch, steps, h))
        np.copyto(out, hs.transpose(1, 0, 2))
        return out

    def _backward_fused(self, cache, grad_output: np.ndarray
                        ) -> list[np.ndarray]:
        _, x, hs, gates, rh = cache
        batch, steps, in_dim = x.shape
        h = self.units
        wx, wh = self.params["Wx"], self.params["Wh"]
        bufs = self._buffers(batch, steps, in_dim)
        # Contiguous pre-transposed weights: OpenBLAS's NoTrans path
        # beats its Trans path at these sizes; one copy per call buys
        # back the difference on every step's GEMM. Reassociates nothing
        # at BLAS-dispatched shapes and stays inside the documented
        # 1e-12 backward budget everywhere else.
        wh_zr_t = bufs["wh_zr_T"]
        np.copyto(wh_zr_t, wh[:, :2 * h].T)
        wh_g_t = bufs["wh_g_T"]
        np.copyto(wh_g_t, wh[:, 2 * h:].T)
        wxT3 = bufs["wxT3"]
        for k in range(3):
            wxT3[k] = wx[:, k * h:(k + 1) * h].T

        grad_out = grad_output.transpose(1, 0, 2)
        # Sequential part: per-step pre-activation gradients only,
        # written straight into the stacked [z, r, g] block buffer,
        # allocation-free (op order matches the reference term for term).
        dpres = bufs["dpres"]
        t1, t2 = bufs["t1"], bufs["t2"]
        dh, dhp = bufs["dh"], bufs["dhp"]
        dzb, dgb = bufs["dzb"], bufs["dgb"]
        drh, mm = bufs["drh"], bufs["mm"]
        dh_next = bufs["dh_next"]
        dh_next[:] = 0.0
        zeros_bh = bufs["zeros"]
        for t in range(steps - 1, -1, -1):
            gate = gates[t]
            z = gate[:, :h]
            r = gate[:, h:2 * h]
            g = gate[:, 2 * h:]
            h_prev = hs[t - 1] if t > 0 else zeros_bh

            np.add(grad_out[t], dh_next, out=dh)
            np.subtract(h_prev, g, out=t1)     # dz = dh * (h_prev - g)
            np.multiply(dh, t1, out=dzb)
            np.subtract(1.0, z, out=t1)        # dg = dh * (1 - z)
            np.multiply(dh, t1, out=dgb)
            np.multiply(dh, z, out=dhp)        # dh_prev = dh * z

            dpre = dpres[t]
            np.subtract(1.0, z, out=t1)        # dz_pre = dz * z*(1-z)
            np.multiply(z, t1, out=t1)
            np.multiply(dzb, t1, out=dpre[:, :h])
            np.multiply(g, g, out=t1)          # dg_pre = dg * (1-g^2)
            np.subtract(1.0, t1, out=t1)
            dg_pre = np.multiply(dgb, t1, out=dpre[:, 2 * h:])
            np.matmul(dg_pre, wh_g_t, out=drh)
            np.multiply(drh, r, out=t1)        # dh_prev += d_rh * r
            np.add(dhp, t1, out=dhp)
            np.multiply(drh, h_prev, out=t1)   # dr = d_rh * h_prev
            np.subtract(1.0, r, out=t2)        # dr_pre = dr * r*(1-r)
            np.multiply(r, t2, out=t2)
            np.multiply(t1, t2, out=dpre[:, h:2 * h])
            np.matmul(dpre[:, :2 * h], wh_zr_t, out=mm)
            np.add(dhp, mm, out=dh_next)

        # Cache-blocked accumulation (see repro.nn.fused): dWx and db
        # from one stacked GEMM against [x | 1]; the two dWh column
        # blocks contract h_{t-1} (resp. the forward-cached r * h_prev)
        # against strided views of the stacked pre-activation gradients
        # — BLAS packs those internally, no materialized copy.
        obs.counter_add("nn/fused_bptt_gemms", 4 + 2 * steps)
        dpre_flat = dpres.reshape(steps * batch, 3 * h)
        acc = bufs["acc"]
        acc3 = acc.reshape(steps, batch, in_dim + 1)
        acc3[..., :in_dim] = bufs["xT"]  # filled time-major by forward
        h_shift = bufs["h_shift"]
        h_shift[0] = 0.0
        h_shift[1:] = hs[:-1]
        R = np.matmul(acc.T, dpre_flat, out=bufs["accR"])
        self.grads["Wx"] += R[:in_dim]
        self.grads["b"] += R[in_dim]
        self.grads["Wh"][:, :2 * h] += \
            h_shift.reshape(steps * batch, h).T @ dpre_flat[:, :2 * h]
        self.grads["Wh"][:, 2 * h:] += \
            rh.reshape(steps * batch, h).T @ dpre_flat[:, 2 * h:]
        # dx per gate block: three (T*B, H) @ (H, F) GEMMs beat the wide
        # (T*B, 3H) @ (3H, F) at F << H. Reassociates the K-reduction
        # into three partials — backward budget, not bitwise.
        dxf, dxt = bufs["dxf"], bufs["dxt"]
        np.matmul(dpre_flat[:, :h], wxT3[0], out=dxf)
        for k in range(1, 3):
            np.matmul(dpre_flat[:, k * h:(k + 1) * h], wxT3[k], out=dxt)
            dxf += dxt
        dx = dxf.reshape(steps, batch, in_dim)
        out = np.empty((batch, steps, in_dim))  # never a pooled view
        np.copyto(out, dx.transpose(1, 0, 2))
        return [out]

    def __repr__(self) -> str:
        return f"GRULayer(units={self.units})"
