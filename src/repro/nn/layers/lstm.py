"""LSTM layer with exact backpropagation through time.

Standard (Keras-convention) LSTM cell, gate order ``[i, f, g, o]``:

.. code-block:: text

    z_t = x_t Wx + h_{t-1} Wh + b          (B, 4H)
    i = sigm(z_i)   f = sigm(z_f)   g = tanh(z_g)   o = sigm(z_o)
    c_t = f * c_{t-1} + i * g
    h_t = o * tanh(c_t)

Sequences are returned at every timestep (the search space is
sequence-to-sequence; paper Sec. IV-B). Initialization follows Keras:
Glorot-uniform input kernel, orthogonal recurrent kernel, zero bias with
unit forget-gate bias.

The per-timestep recurrence is an irreducible loop; everything inside it
is batched matrix algebra (the window K = 8 keeps the loop short).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.nn.activations import dsigmoid_from_y, dtanh_from_y, sigmoid
from repro.nn.detmath import recurrent_matmul
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.layers.base import Layer
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["LSTMLayer"]


class LSTMLayer(Layer):
    """LSTM ``(B, T, F) -> (B, T, units)``, returning full sequences."""

    def __init__(self, units: int) -> None:
        super().__init__()
        self.units = check_positive_int(units, name="units")

    def build(self, input_dims: list[int], rng=None) -> None:
        if len(input_dims) != 1:
            raise ValueError(f"LSTMLayer takes one input, got {len(input_dims)}")
        in_dim = check_positive_int(input_dims[0], name="input dim")
        gen = as_generator(rng)
        h = self.units
        self.add_param("Wx", glorot_uniform((in_dim, 4 * h), gen))
        self.add_param("Wh", orthogonal((h, 4 * h), gen))
        bias = np.zeros(4 * h)
        bias[h:2 * h] = 1.0  # unit forget bias (Keras default)
        self.add_param("b", bias)
        super().build(input_dims, rng)

    @property
    def output_dim(self) -> int:
        return self.units

    # ------------------------------------------------------------------
    def forward(self, inputs, training: bool = False) -> np.ndarray:
        x = self._check_single_input(inputs)
        batch, steps, _ = x.shape
        h = self.units
        wx, wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]

        hs = np.zeros((steps, batch, h))
        cs = np.zeros((steps, batch, h))
        gates = np.zeros((steps, batch, 4 * h))
        tanh_c = np.zeros((steps, batch, h))

        # Hoist the input projection out of the loop (one big GEMM).
        x_proj = x @ wx + b  # (B, T, 4H)
        # One input-projection GEMM + one recurrent GEMM per step.
        obs.counter_add("nn/gemms", 1 + steps)
        h_prev = np.zeros((batch, h))
        c_prev = np.zeros((batch, h))
        for t in range(steps):
            z = x_proj[:, t, :] + recurrent_matmul(h_prev, wh)
            i = sigmoid(z[:, :h])
            f = sigmoid(z[:, h:2 * h])
            g = np.tanh(z[:, 2 * h:3 * h])
            o = sigmoid(z[:, 3 * h:])
            c = f * c_prev + i * g
            tc = np.tanh(c)
            h_t = o * tc
            gates[t, :, :h] = i
            gates[t, :, h:2 * h] = f
            gates[t, :, 2 * h:3 * h] = g
            gates[t, :, 3 * h:] = o
            cs[t] = c
            tanh_c[t] = tc
            hs[t] = h_t
            h_prev, c_prev = h_t, c
        self._cache = (x, hs, cs, gates, tanh_c)
        return np.ascontiguousarray(hs.transpose(1, 0, 2))

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, hs, cs, gates, tanh_c = self._cache
        self._cache = None
        batch, steps, in_dim = x.shape
        h = self.units
        wx, wh = self.params["Wx"], self.params["Wh"]

        grad_out = grad_output.transpose(1, 0, 2)  # (T, B, H)
        dwx = np.zeros_like(wx)
        dwh = np.zeros_like(wh)
        db = np.zeros_like(self.params["b"])
        dx = np.zeros_like(x)

        dh_next = np.zeros((batch, h))
        dc_next = np.zeros((batch, h))
        for t in range(steps - 1, -1, -1):
            i = gates[t, :, :h]
            f = gates[t, :, h:2 * h]
            g = gates[t, :, 2 * h:3 * h]
            o = gates[t, :, 3 * h:]
            tc = tanh_c[t]
            c_prev = cs[t - 1] if t > 0 else np.zeros((batch, h))
            h_prev = hs[t - 1] if t > 0 else np.zeros((batch, h))

            dh = grad_out[t] + dh_next
            dc = dc_next + dh * o * dtanh_from_y(tc)

            dz = np.empty((batch, 4 * h))
            dz[:, :h] = dc * g * dsigmoid_from_y(i)            # d z_i
            dz[:, h:2 * h] = dc * c_prev * dsigmoid_from_y(f)  # d z_f
            dz[:, 2 * h:3 * h] = dc * i * dtanh_from_y(g)      # d z_g
            dz[:, 3 * h:] = dh * tc * dsigmoid_from_y(o)       # d z_o

            dwx += x[:, t, :].T @ dz
            dwh += h_prev.T @ dz
            db += dz.sum(axis=0)
            dx[:, t, :] = dz @ wx.T
            dh_next = dz @ wh.T
            dc_next = dc * f

        self.grads["Wx"] += dwx
        self.grads["Wh"] += dwh
        self.grads["b"] += db
        return [dx]

    def __repr__(self) -> str:
        return f"LSTMLayer(units={self.units})"
