"""LSTM layer with exact backpropagation through time.

Standard (Keras-convention) LSTM cell, gate order ``[i, f, g, o]``:

.. code-block:: text

    z_t = x_t Wx + h_{t-1} Wh + b          (B, 4H)
    i = sigm(z_i)   f = sigm(z_f)   g = tanh(z_g)   o = sigm(z_o)
    c_t = f * c_{t-1} + i * g
    h_t = o * tanh(c_t)

Sequences are returned at every timestep (the search space is
sequence-to-sequence; paper Sec. IV-B). Initialization follows Keras:
Glorot-uniform input kernel, orthogonal recurrent kernel, zero bias with
unit forget-gate bias.

The per-timestep recurrence is an irreducible loop; everything inside it
is batched matrix algebra (the window K = 8 keeps the loop short). Two
implementations of the identical numerics coexist (see
:mod:`repro.nn.fused`): the auditable *reference* path, and the *fused*
hot path whose forward is bitwise-identical and whose cache-blocked BPTT
agrees to <= 1e-12 (stacked ``(T*B, .)`` weight-gradient GEMMs
reassociate the timestep reduction; nothing else differs).

Weight layout is shared by both paths and by every serialized artifact
(:mod:`repro.nn.serialization`): ``Wx (F, 4H)``, ``Wh (H, 4H)``,
``b (4H,)`` with gates stacked ``[i, f, g, o]`` along the wide axis.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.nn.activations import dsigmoid_from_y, dtanh_from_y, sigmoid
from repro.nn.detmath import recurrent_matmul
from repro.nn.fused import ScratchPool, fused_enabled, ones_column
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.layers.base import Layer
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["LSTMLayer"]


class LSTMLayer(Layer):
    """LSTM ``(B, T, F) -> (B, T, units)``, returning full sequences."""

    def __init__(self, units: int) -> None:
        super().__init__()
        self.units = check_positive_int(units, name="units")
        self._pool = ScratchPool()

    def build(self, input_dims: list[int], rng=None) -> None:
        if len(input_dims) != 1:
            raise ValueError(f"LSTMLayer takes one input, got {len(input_dims)}")
        in_dim = check_positive_int(input_dims[0], name="input dim")
        gen = as_generator(rng)
        h = self.units
        self.add_param("Wx", glorot_uniform((in_dim, 4 * h), gen))
        self.add_param("Wh", orthogonal((h, 4 * h), gen))
        bias = np.zeros(4 * h)
        bias[h:2 * h] = 1.0  # unit forget bias (Keras default)
        self.add_param("b", bias)
        super().build(input_dims, rng)

    @property
    def output_dim(self) -> int:
        return self.units

    # ------------------------------------------------------------------
    def forward(self, inputs, training: bool = False) -> np.ndarray:
        x = self._check_single_input(inputs)
        if fused_enabled():
            return self._forward_fused(x)
        return self._forward_reference(x)

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        self._cache = None
        if cache[0] == "fused":
            return self._backward_fused(cache, grad_output)
        return self._backward_reference(cache, grad_output)

    # ------------------------------------------------------------------
    # Reference path — ground truth of the differential suite.
    # ------------------------------------------------------------------
    def _forward_reference(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        h = self.units
        wx, wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]

        hs = np.zeros((steps, batch, h))
        cs = np.zeros((steps, batch, h))
        gates = np.zeros((steps, batch, 4 * h))
        tanh_c = np.zeros((steps, batch, h))

        # Hoist the input projection out of the loop (one big GEMM).
        x_proj = x @ wx + b  # (B, T, 4H)
        # One input-projection GEMM + one recurrent GEMM per step.
        obs.counter_add("nn/gemms", 1 + steps)
        h_prev = np.zeros((batch, h))
        c_prev = np.zeros((batch, h))
        for t in range(steps):
            z = x_proj[:, t, :] + recurrent_matmul(h_prev, wh)
            i = sigmoid(z[:, :h])
            f = sigmoid(z[:, h:2 * h])
            g = np.tanh(z[:, 2 * h:3 * h])
            o = sigmoid(z[:, 3 * h:])
            c = f * c_prev + i * g
            tc = np.tanh(c)
            h_t = o * tc
            gates[t, :, :h] = i
            gates[t, :, h:2 * h] = f
            gates[t, :, 2 * h:3 * h] = g
            gates[t, :, 3 * h:] = o
            cs[t] = c
            tanh_c[t] = tc
            hs[t] = h_t
            h_prev, c_prev = h_t, c
        self._cache = ("ref", x, hs, cs, gates, tanh_c)
        return np.ascontiguousarray(hs.transpose(1, 0, 2))

    def _backward_reference(self, cache, grad_output: np.ndarray
                            ) -> list[np.ndarray]:
        _, x, hs, cs, gates, tanh_c = cache
        batch, steps, in_dim = x.shape
        h = self.units
        wx, wh = self.params["Wx"], self.params["Wh"]

        grad_out = grad_output.transpose(1, 0, 2)  # (T, B, H)
        dwx = np.zeros_like(wx)
        dwh = np.zeros_like(wh)
        db = np.zeros_like(self.params["b"])
        dx = np.zeros_like(x)

        dh_next = np.zeros((batch, h))
        dc_next = np.zeros((batch, h))
        for t in range(steps - 1, -1, -1):
            i = gates[t, :, :h]
            f = gates[t, :, h:2 * h]
            g = gates[t, :, 2 * h:3 * h]
            o = gates[t, :, 3 * h:]
            tc = tanh_c[t]
            c_prev = cs[t - 1] if t > 0 else np.zeros((batch, h))
            h_prev = hs[t - 1] if t > 0 else np.zeros((batch, h))

            dh = grad_out[t] + dh_next
            dc = dc_next + dh * o * dtanh_from_y(tc)

            dz = np.empty((batch, 4 * h))
            dz[:, :h] = dc * g * dsigmoid_from_y(i)            # d z_i
            dz[:, h:2 * h] = dc * c_prev * dsigmoid_from_y(f)  # d z_f
            dz[:, 2 * h:3 * h] = dc * i * dtanh_from_y(g)      # d z_g
            dz[:, 3 * h:] = dh * tc * dsigmoid_from_y(o)       # d z_o

            dwx += x[:, t, :].T @ dz
            dwh += h_prev.T @ dz
            db += dz.sum(axis=0)
            dx[:, t, :] = dz @ wx.T
            dh_next = dz @ wh.T
            dc_next = dc * f

        self.grads["Wx"] += dwx
        self.grads["Wh"] += dwh
        self.grads["b"] += db
        return [dx]

    # ------------------------------------------------------------------
    # Fused path — the training hot path (see repro.nn.fused).
    # ------------------------------------------------------------------
    def _buffers(self, batch: int, steps: int, in_dim: int) -> dict:
        h = self.units
        return self._pool.get(
            (batch, steps, in_dim),
            lambda: {
                "hs": np.empty((steps, batch, h)),
                "cs": np.empty((steps, batch, h)),
                # Gate-block layout (T, 4, B, H): every per-gate operand
                # is a *contiguous* (B, H) slab. Elementwise kernels on
                # 64-wide blocks strided inside (B, 4H) rows cost 3-6x
                # their contiguous equivalents, which dominated the old
                # hot path.
                "gates": np.empty((steps, 4, batch, h)),
                "tanh_c": np.empty((steps, batch, h)),
                "xT": np.empty((steps, batch, in_dim)),
                "whT": np.empty((4 * h, h)),
                "wxT4": np.empty((4, h, in_dim)),
                "xp": np.empty((batch, steps, 4 * h)),
                "z4": np.empty((4, batch, h)),
                "zw": np.empty((batch, 4 * h)),
                "s2": np.empty((2, batch, h)),
                "s1": np.empty((batch, h)),
                "t1": np.empty((batch, h)),
                "t2": np.empty((batch, h)),
                "dh": np.empty((batch, h)),
                "dc": np.empty((batch, h)),
                "dh_next": np.empty((batch, h)),
                "dc_next": np.empty((batch, h)),
                "zeros": np.zeros((batch, h)),
                "dz4": np.empty((4, batch, h)),
                "dzs": np.empty((steps, batch, 4 * h)),
                "D4": np.empty((4, batch, h)),
                # Stacked accumulation operand [x | 1 | h_{t-1}]: one GEMM
                # yields dWx, db and dWh together. The ones column is
                # written here, once; nothing else touches it.
                "acc": ones_column(
                    np.empty((steps * batch, in_dim + 1 + h)), in_dim),
                "accR": np.empty((in_dim + 1 + h, 4 * h)),
                "dxf": np.empty((steps * batch, in_dim)),
                "dxt": np.empty((steps * batch, in_dim)),
            })

    def _forward_fused(self, x: np.ndarray) -> np.ndarray:
        batch, steps, in_dim = x.shape
        h = self.units
        wx, wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]
        bufs = self._buffers(batch, steps, in_dim)
        hs, cs = bufs["hs"], bufs["cs"]
        gates, tanh_c = bufs["gates"], bufs["tanh_c"]

        # Input projection for all timesteps, hoisted out of the loop.
        # This is the REFERENCE's exact call (the batched 3-D matmul):
        # a differently shaped GEMM over the same data — flat (B*T)
        # rows, or one per-gate column block — is NOT bitwise safe in
        # general (BLAS and the batch-invariant gufunc both pick
        # M/N-dependent kernels whose K-reduction order differs; small
        # odd shapes expose it). Bitwise identity is bought with GEMMs
        # of identical shape and cheap data-movement afterwards.
        xp = bufs["xp"]
        np.matmul(x, wx, out=xp)  # (B, T, 4H), == reference x @ wx
        xp += b
        # Time-major input copy for the backward accumulation fill.
        xT = bufs["xT"]
        xT[:] = x.transpose(1, 0, 2)
        obs.counter_add("nn/fused_gemms", 1 + steps)
        h_prev = bufs["zeros"]
        c_prev = bufs["zeros"]
        z4 = bufs["z4"]          # pre-activation in gate-block layout
        zw = bufs["zw"]          # wide (B, 4H) pre-activation
        z4_src = zw.reshape(batch, 4, h).transpose(1, 0, 2)
        s2, s1 = bufs["s2"], bufs["s1"]  # sigmoid scratch
        ig = bufs["t1"]          # i * g product
        for t in range(steps):
            # Same wide product as the reference (recurrent_matmul also
            # owns the batch-invariant switch), same addition pairs
            # (x-projection + recurrence commutes bitwise), then one
            # transpose-copy into contiguous per-gate blocks.
            recurrent_matmul(h_prev, wh, out=zw)
            np.add(zw, xp[:, t, :], out=zw)
            np.copyto(z4, z4_src)
            gate = gates[t]
            sigmoid(z4[:2], out=gate[:2], scratch=s2)  # i, f in one pass
            np.tanh(z4[2], out=gate[2])                # g
            sigmoid(z4[3], out=gate[3], scratch=s1)    # o
            c = cs[t]
            np.multiply(gate[1], c_prev, out=c)        # f * c_prev
            np.multiply(gate[0], gate[2], out=ig)
            c += ig                                    # + i * g
            tc = np.tanh(c, out=tanh_c[t])
            np.multiply(gate[3], tc, out=hs[t])        # o * tanh(c)
            h_prev, c_prev = hs[t], c
        self._cache = ("fused", x, hs, cs, gates, tanh_c)
        # Always a fresh copy: for singleton batch/steps the transpose
        # is already contiguous and ``ascontiguousarray`` would hand the
        # caller a *view into the pooled scratch* that the next forward
        # overwrites.
        out = np.empty((batch, steps, h))
        np.copyto(out, hs.transpose(1, 0, 2))
        return out

    def _backward_fused(self, cache, grad_output: np.ndarray
                        ) -> list[np.ndarray]:
        _, x, hs, cs, gates, tanh_c = cache
        batch, steps, in_dim = x.shape
        h = self.units
        wx, wh = self.params["Wx"], self.params["Wh"]
        bufs = self._buffers(batch, steps, in_dim)
        # Contiguous pre-transposed weights: one 12us copy buys back
        # ~13us per step on the dh_next GEMM (OpenBLAS's NoTrans path
        # beats its Trans path at these sizes). Reassociates nothing at
        # BLAS-dispatched shapes and stays inside the documented 1e-12
        # backward budget everywhere else.
        wh_t = bufs["whT"]
        np.copyto(wh_t, wh.T)
        wxT4 = bufs["wxT4"]
        for k in range(4):
            wxT4[k] = wx[:, k * h:(k + 1) * h].T

        grad_out = grad_output.transpose(1, 0, 2)  # (T, B, H)
        # Sequential part: only the per-step pre-activation gradients,
        # computed allocation-free in reused scratch. The gate-derivative
        # factors are evaluated on the stacked (4, B, H) block in two
        # contiguous wide passes (the tanh g-block is then fixed up in
        # place); each dz element still sees the reference's exact
        # multiplication tree ``(first factor) * (derivative factor)``,
        # so the sequential part stays bitwise on the reference's dz
        # values. A cheap transpose-copy then lays each step's dz out as
        # a contiguous (B, 4H) row block so every downstream GEMM sees
        # the same wide operand as before.
        dzs = bufs["dzs"]
        dzs4 = dzs.reshape(steps, batch, 4, h)
        dz4 = bufs["dz4"]
        dh, dc = bufs["dh"], bufs["dc"]
        t1, t2 = bufs["t1"], bufs["t2"]
        D4 = bufs["D4"]
        dh_next = bufs["dh_next"]
        dc_next = bufs["dc_next"]
        dh_next[:] = 0.0
        dc_next[:] = 0.0
        zeros_bh = bufs["zeros"]
        for t in range(steps - 1, -1, -1):
            gate = gates[t]   # (4, B, H): i, f, g, o
            g = gate[2]
            tc = tanh_c[t]
            c_prev = cs[t - 1] if t > 0 else zeros_bh

            np.add(grad_out[t], dh_next, out=dh)
            # dc = dc_next + dh * o * (1 - tanh(c)^2)
            np.multiply(dh, gate[3], out=t1)
            np.multiply(tc, tc, out=t2)
            np.subtract(1.0, t2, out=t2)
            np.multiply(t1, t2, out=t1)
            np.add(dc_next, t1, out=dc)

            # D4 = [i(1-i), f(1-f), 1-g^2, o(1-o)] — sigmoid derivative
            # on the whole block, candidate block overwritten with tanh's.
            np.subtract(1.0, gate, out=D4)
            np.multiply(gate, D4, out=D4)
            dg_block = D4[2]
            np.multiply(g, g, out=dg_block)
            np.subtract(1.0, dg_block, out=dg_block)

            np.multiply(dc, g, out=dz4[0])        # dz_i pre-factor
            np.multiply(dc, c_prev, out=dz4[1])   # dz_f pre-factor
            np.multiply(dc, gate[0], out=dz4[2])  # dz_g pre-factor
            np.multiply(dh, tc, out=dz4[3])       # dz_o pre-factor
            np.multiply(dz4, D4, out=dz4)

            dz = dzs[t]
            dzs4[t][:] = dz4.transpose(1, 0, 2)   # block -> wide rows
            np.matmul(dz, wh_t, out=dh_next)
            np.multiply(dc, gate[1], out=dc_next)

        # Cache-blocked accumulation: dWx, db and dWh drop out of ONE
        # stacked GEMM against [x | 1 | h_{t-1}] (reassociates the
        # t-reduction; <= 1e-12 from the reference path, see
        # repro.nn.fused), dx out of a second.
        obs.counter_add("nn/fused_bptt_gemms", 2 + steps)
        dz_flat = dzs.reshape(steps * batch, 4 * h)
        acc = bufs["acc"]  # (T*B, F+1+H), ones column prebuilt
        acc3 = acc.reshape(steps, batch, in_dim + 1 + h)
        acc3[..., :in_dim] = bufs["xT"]  # filled time-major by forward
        acc3[0, :, in_dim + 1:] = 0.0          # h_{-1} = 0
        acc3[1:, :, in_dim + 1:] = hs[:-1]
        R = np.matmul(acc.T, dz_flat, out=bufs["accR"])
        self.grads["Wx"] += R[:in_dim]
        self.grads["b"] += R[in_dim]
        self.grads["Wh"] += R[in_dim + 1:]
        # dx per gate block: (T*B, H) @ (H, F) runs ~20% faster than the
        # wide (T*B, 4H) @ (4H, F) at F << H (the wide GEMM is
        # bandwidth-bound on its skinny output). Reassociates the
        # K-reduction into four partials — backward budget, not bitwise.
        dxf, dxt = bufs["dxf"], bufs["dxt"]
        np.matmul(dz_flat[:, :h], wxT4[0], out=dxf)
        for k in range(1, 4):
            np.matmul(dz_flat[:, k * h:(k + 1) * h], wxT4[k], out=dxt)
            dxf += dxt
        dx = dxf.reshape(steps, batch, in_dim)
        out = np.empty((batch, steps, in_dim))  # never a pooled view
        np.copyto(out, dx.transpose(1, 0, 2))
        return [out]

    def __repr__(self) -> str:
        return f"LSTMLayer(units={self.units})"
