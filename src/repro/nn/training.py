"""Mini-batch training loop.

Matches the paper's training protocol (Sec. IV): batch size 64, learning
rate 0.001, Adam, MSE loss, R^2 on held-out validation data as the
reported metric; 20 epochs during the search, 100 during post-training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.nn.losses import MeanSquaredError
from repro.nn.metrics import r2_score
from repro.nn.model import Network
from repro.nn.optimizers import Adam, clip_gradients
from repro.utils.rng import as_generator

__all__ = ["History", "Trainer"]


@dataclass
class History:
    """Per-epoch training record.

    ``learning_rates`` records the learning rate *in effect during* each
    epoch, making the ``lr_decay`` schedule observable: decay is applied
    between epochs, so an early-stopped run records exactly one rate per
    completed epoch, identical to the prefix of an un-stopped run.
    """

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_r2: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)

    @property
    def is_empty(self) -> bool:
        """True when no epoch ever ran (e.g. ``Trainer(epochs=0)``)."""
        return not self.val_r2

    @property
    def best_val_r2(self) -> float:
        if not self.val_r2:
            raise ValueError(
                "best_val_r2 is undefined on an empty history: no epoch "
                "ever ran (Trainer(epochs=0)?); check History.is_empty")
        return max(self.val_r2)

    @property
    def final_val_r2(self) -> float:
        if not self.val_r2:
            raise ValueError(
                "final_val_r2 is undefined on an empty history: no epoch "
                "ever ran (Trainer(epochs=0)?); check History.is_empty")
        return self.val_r2[-1]


@dataclass
class Trainer:
    """Configurable mini-batch trainer for :class:`~repro.nn.model.Network`.

    Parameters mirror the paper's fixed hyperparameters; ``clip_norm``
    guards randomly mutated deep stacks against exploding BPTT gradients
    (set ``None`` to disable).

    Extensions beyond the paper's fixed protocol (all off by default):

    * ``patience`` — early stopping: halt when the validation R^2 has not
      improved by ``min_delta`` for that many epochs, and restore the
      best-epoch weights;
    * ``lr_decay`` — multiply the learning rate by this factor each epoch
      (1.0 = constant, the paper's setting).
    """

    batch_size: int = 64
    learning_rate: float = 0.001
    epochs: int = 20
    clip_norm: float | None = 5.0
    shuffle: bool = True
    patience: int | None = None
    min_delta: float = 1e-4
    lr_decay: float = 1.0

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.epochs < 0:
            raise ValueError(f"epochs must be non-negative, got {self.epochs}")
        if self.patience is not None and self.patience <= 0:
            raise ValueError(f"patience must be positive, got {self.patience}")
        if not 0.0 < self.lr_decay <= 1.0:
            raise ValueError(f"lr_decay must be in (0, 1], got {self.lr_decay}")

    def fit(self, model: Network, x_train: np.ndarray, y_train: np.ndarray,
            x_val: np.ndarray | None = None, y_val: np.ndarray | None = None,
            rng=None, *, optimizer: Adam | None = None,
            history: History | None = None,
            n_epochs: int | None = None) -> History:
        """Train ``model``; returns the epoch history.

        ``x_*``/``y_*`` are ``(n, T, F)`` windowed example tensors. If no
        validation set is given, validation entries reuse training data
        (discouraged; search rewards must be held-out, per the paper).

        The keyword-only ``optimizer``/``history``/``n_epochs`` trio
        supports *resumable* training (multi-fidelity partial training):
        pass the optimizer and history of an earlier ``fit`` call plus the
        epoch count still to run, and — with ``rng`` restored to the bit
        position the earlier call left it at — the continued run is
        bitwise-identical to one uninterrupted training. Early stopping
        keeps per-call state (best weights / staleness), so resumed
        training requires ``patience=None``.
        """
        x_train = np.asarray(x_train, dtype=np.float64)
        y_train = np.asarray(y_train, dtype=np.float64)
        if x_train.shape[0] != y_train.shape[0]:
            raise ValueError(
                f"x_train has {x_train.shape[0]} examples but y_train has "
                f"{y_train.shape[0]}")
        if x_train.shape[0] == 0:
            raise ValueError("cannot train on zero examples")
        if (x_val is None) != (y_val is None):
            raise ValueError("provide both x_val and y_val or neither")
        if x_val is None:
            x_val, y_val = x_train, y_train

        if (optimizer is not None or history is not None) \
                and self.patience is not None:
            raise ValueError(
                "resumed training (optimizer=/history=) requires "
                "patience=None: early-stopping state is per-call and would "
                "diverge from an uninterrupted run")
        if n_epochs is not None and n_epochs < 0:
            raise ValueError(f"n_epochs must be non-negative, got {n_epochs}")

        gen = as_generator(rng)
        loss_fn = MeanSquaredError()
        if optimizer is None:
            optimizer = Adam(learning_rate=self.learning_rate)
        if history is None:
            history = History()
        n = x_train.shape[0]
        best_r2 = -np.inf
        best_weights: list[np.ndarray] | None = None
        stale_epochs = 0

        epochs = self.epochs if n_epochs is None else n_epochs
        for _ in range(epochs):
            history.learning_rates.append(optimizer.learning_rate)
            epoch_scope = obs.scope("train/epoch")
            with epoch_scope:
                order = gen.permutation(n) if self.shuffle else np.arange(n)
                epoch_loss = 0.0
                for start in range(0, n, self.batch_size):
                    with obs.scope("batch"):
                        idx = order[start:start + self.batch_size]
                        xb, yb = x_train[idx], y_train[idx]
                        pred = model.forward(xb, training=True)
                        batch_loss = loss_fn.value(pred, yb)
                        model.zero_grads()
                        model.backward(loss_fn.gradient(pred, yb))
                        grads = [g for _, g in
                                 model.parameters_and_gradients()]
                        if self.clip_norm is not None:
                            clip_gradients(grads, self.clip_norm)
                        optimizer.step(model.parameters_and_gradients())
                        epoch_loss += batch_loss * len(idx)
                history.train_loss.append(epoch_loss / n)

                with obs.scope("validate"):
                    val_pred = model.predict(x_val,
                                             batch_size=4 * self.batch_size)
                    history.val_loss.append(loss_fn.value(val_pred, y_val))
                    history.val_r2.append(r2_score(y_val, val_pred))
            if obs.enabled():
                obs.counter_add("train/epochs")
                obs.counter_add("train/examples", n)
                obs.gauge_set("train/examples_per_sec",
                              n / max(epoch_scope.elapsed_s, 1e-12))

            if self.patience is not None:
                if history.val_r2[-1] > best_r2 + self.min_delta:
                    best_r2 = history.val_r2[-1]
                    best_weights = model.get_weights()
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= self.patience:
                        break
            # Decay between epochs only: a run halted by early stopping or
            # by the epoch budget leaves the optimizer at the rate it last
            # trained with, so the recorded schedule is break-consistent.
            optimizer.learning_rate *= self.lr_decay
        if self.patience is not None and best_weights is not None:
            model.set_weights(best_weights)
        return history
