"""DAG network: named nodes executed in topological order.

DeepHyper represents an architecture as a directed acyclic graph of
operations (paper Sec. III-A); ``Network`` is the executable counterpart.
Nodes are added with explicit input wiring; ``networkx`` validates
acyclicity and supplies the topological order. Backward traverses the
reverse order, summing gradient contributions from every consumer of a
node (the fan-out rule for skip connections).

Forward can optionally run uncorrelated nodes concurrently
(``parallel=True``): a completion-driven scheduler submits every node
whose inputs are available to a thread pool, so independent branches of
a skip-connected architecture overlap (NumPy releases the GIL inside
BLAS). The result is **bitwise identical** to the serial walk — the
scheduler only reorders *which node* runs when; each node's arithmetic,
operands and kernels are exactly the serial ones, and a node (hence its
layer instance and scratch pool) is never entered concurrently. Backward
always runs serially: gradient fan-in sums contributions in topological
order, and reordering *that* would reassociate additions.

Both execution modes share :meth:`Network.live_spans` — a live-variable
analysis over the topological order — to drop node outputs as soon as
their last consumer has read them, bounding peak activation memory on
deep graphs.
"""

from __future__ import annotations

import os
import queue
import threading
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro import obs
from repro.nn.detmath import batch_invariant, batch_invariant_enabled
from repro.nn.fused import fused_enabled, fused_kernels
from repro.nn.layers.base import Layer
from repro.utils.rng import as_generator

__all__ = ["NodeSpec", "Network"]

INPUT = "input"  # reserved name of the network input


@dataclass(frozen=True)
class NodeSpec:
    """Declarative node description: a layer and where its inputs come from."""

    name: str
    layer: Layer
    inputs: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.name == INPUT:
            raise ValueError(f"node name {INPUT!r} is reserved")
        if not self.inputs:
            raise ValueError(f"node {self.name!r} declares no inputs")


class Network:
    """Executable DAG of layers.

    Parameters
    ----------
    input_dim:
        Feature dimension of the ``(B, T, input_dim)`` input tensor.
    rng:
        Seed/generator for weight initialization — build order is
        deterministic (insertion order), so a fixed seed reproduces weights.
    parallel:
        ``False`` (default): forward walks the topological order
        serially. ``True``: uncorrelated nodes run concurrently on a
        thread pool (auto-sized); an ``int`` pins the worker count.
        Either way the output is bitwise identical — see module
        docstring.
    """

    def __init__(self, input_dim: int, rng=None,
                 parallel: bool | int = False) -> None:
        if input_dim <= 0:
            raise ValueError(f"input_dim must be positive, got {input_dim}")
        if not isinstance(parallel, bool) and parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {parallel}")
        self.input_dim = int(input_dim)
        self.parallel = parallel
        self._executor: ThreadPoolExecutor | None = None
        self._rng = as_generator(rng)
        self._graph = nx.DiGraph()
        self._graph.add_node(INPUT)
        self._specs: dict[str, NodeSpec] = {}
        self._dims: dict[str, int] = {INPUT: self.input_dim}
        self._order: list[str] | None = None
        self.output_name: str | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str, layer: Layer, inputs) -> str:
        """Add and build a node. ``inputs`` is a sequence of node names
        (use ``"input"`` for the network input). Returns ``name``."""
        spec = NodeSpec(name=name, layer=layer, inputs=tuple(inputs))
        if name in self._specs:
            raise ValueError(f"duplicate node name {name!r}")
        for src in spec.inputs:
            if src != INPUT and src not in self._specs:
                raise ValueError(
                    f"node {name!r} references unknown input {src!r}")
        dims = [self._dims[src] for src in spec.inputs]
        layer.build(dims, self._rng)
        self._specs[name] = spec
        self._dims[name] = layer.output_dim
        self._graph.add_node(name)
        for src in spec.inputs:
            self._graph.add_edge(src, name)
        if not nx.is_directed_acyclic_graph(self._graph):  # defensive
            raise ValueError(f"adding node {name!r} created a cycle")
        self._order = None
        self.output_name = name  # latest node is the output by default
        return name

    def set_output(self, name: str) -> None:
        """Designate which node's tensor the network returns."""
        if name not in self._specs:
            raise ValueError(f"unknown node {name!r}")
        self.output_name = name

    def node_dim(self, name: str) -> int:
        """Feature dimension produced by node ``name``."""
        return self._dims[name]

    @property
    def node_names(self) -> list[str]:
        return list(self._specs)

    def layer(self, name: str) -> Layer:
        return self._specs[name].layer

    @property
    def topological_order(self) -> list[str]:
        if self._order is None:
            order = list(nx.topological_sort(self._graph))
            self._order = [n for n in order if n != INPUT]
        return self._order

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def live_spans(self) -> dict[str, int]:
        """Live-variable analysis over the topological order.

        Returns, for every value name (nodes and ``"input"``), the index
        in :attr:`topological_order` of its *last consumer* — the point
        after which the value is dead and its tensor can be dropped. The
        output node is live to the end; a value nobody consumes dies at
        its own index (``-1`` for an unconsumed input).
        """
        order = self.topological_order
        pos = {name: i for i, name in enumerate(order)}
        last = {INPUT: -1}
        for name in order:
            last[name] = pos[name]
        for name in order:
            for src in self._specs[name].inputs:
                last[src] = max(last[src], pos[name])
        if self.output_name is not None:
            last[self.output_name] = len(order) - 1
        return last

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the DAG; returns the output node's tensor."""
        if self.output_name is None:
            raise RuntimeError("network has no nodes")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(
                f"expected input of shape (B, T, {self.input_dim}), "
                f"got {x.shape}")
        if self.parallel:
            return self._forward_parallel(x, training)
        return self._forward_serial(x, training)

    def _forward_serial(self, x: np.ndarray, training: bool) -> np.ndarray:
        order = self.topological_order
        spans = self.live_spans()
        free_at: dict[int, list[str]] = defaultdict(list)
        for name, idx in spans.items():
            if name != self.output_name:
                free_at[idx].append(name)
        values: dict[str, np.ndarray] = {INPUT: x}
        self._values_shapes = {INPUT: x.shape}
        for i, name in enumerate(order):
            spec = self._specs[name]
            inputs = [values[src] for src in spec.inputs]
            result = spec.layer.forward(inputs, training=training)
            values[name] = result
            self._values_shapes[name] = result.shape
            # Dead after this step: no later node reads them.
            for dead in free_at.get(i, ()):
                values.pop(dead, None)
        return values[self.output_name]

    def _forward_parallel(self, x: np.ndarray, training: bool) -> np.ndarray:
        """Completion-driven scheduling of uncorrelated nodes.

        The main thread owns all bookkeeping (dependency counts, the
        values dict); workers only run ``layer.forward`` and report back
        through a queue, so no lock guards the graph state. The caller's
        thread-local kernel modes (fused/reference, batch-invariant) are
        captured once and re-entered inside every worker — a pool thread
        has no context of its own.
        """
        order = self.topological_order
        specs = self._specs
        fused = fused_enabled()
        invariant = batch_invariant_enabled()
        executor = self._get_executor()
        completed: queue.Queue = queue.Queue()
        values: dict[str, np.ndarray] = {INPUT: x}
        self._values_shapes = {INPUT: x.shape}

        def run(name: str) -> None:
            try:
                with fused_kernels(fused), \
                        (batch_invariant() if invariant else nullcontext()):
                    spec = specs[name]
                    inputs = [values[src] for src in spec.inputs]
                    out = spec.layer.forward(inputs, training=training)
                completed.put((name, out, None))
            except BaseException as error:  # propagated by the main thread
                completed.put((name, None, error))

        waiting = {name: {src for src in specs[name].inputs if src != INPUT}
                   for name in order}
        consumers: dict[str, list[str]] = defaultdict(list)
        remaining_uses: dict[str, int] = defaultdict(int)
        for name in order:
            for src in set(specs[name].inputs):
                consumers[src].append(name)
                remaining_uses[src] += 1
        ready = [name for name in order if not waiting[name]]
        max_ready = len(ready)
        for name in ready:
            executor.submit(run, name)
        n_done = 0
        while n_done < len(order):
            name, out, error = completed.get()
            if error is not None:
                raise error
            values[name] = out
            self._values_shapes[name] = out.shape
            n_done += 1
            # Free values whose last consumer has now read them.
            for src in set(specs[name].inputs):
                remaining_uses[src] -= 1
                if remaining_uses[src] == 0 and src != self.output_name:
                    values.pop(src, None)
            newly_ready = []
            for consumer in consumers[name]:
                deps = waiting[consumer]
                deps.discard(name)
                if not deps:
                    newly_ready.append(consumer)
            max_ready = max(max_ready, len(newly_ready))
            for nxt in newly_ready:
                executor.submit(run, nxt)
        obs.counter_add("nn/dag_parallel_runs")
        obs.counter_add("nn/dag_parallel_nodes", len(order))
        obs.gauge_set("nn/dag_parallel_max_ready", max_ready)
        return values[self.output_name]

    def _get_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            if self.parallel is True:
                workers = min(8, max(2, os.cpu_count() or 1),
                              max(1, len(self._specs)))
            else:
                workers = int(self.parallel)
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-dag")
        return self._executor

    def __getstate__(self):
        """Thread pools don't pickle; a worker rebuilds one on demand."""
        state = self.__dict__.copy()
        state["_executor"] = None
        return state

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate dL/d(output); accumulates layer grads and returns
        dL/d(input). Must follow a ``forward`` call."""
        if self.output_name is None:
            raise RuntimeError("network has no nodes")
        pending: dict[str, np.ndarray] = {self.output_name:
                                          np.asarray(grad_output,
                                                     dtype=np.float64)}
        input_grad: np.ndarray | None = None
        for name in reversed(self.topological_order):
            grad = pending.pop(name, None)
            if grad is None:
                # Node does not influence the output (dead branch) — its
                # layers received no gradient this step.
                continue
            spec = self._specs[name]
            input_grads = spec.layer.backward(grad)
            for src, g in zip(spec.inputs, input_grads):
                if src == INPUT:
                    input_grad = g if input_grad is None else input_grad + g
                elif src in pending:
                    pending[src] = pending[src] + g
                else:
                    pending[src] = g
        if input_grad is None:
            input_grad = np.zeros(self._values_shapes[INPUT])
        return input_grad

    def predict(self, x: np.ndarray, batch_size: int | None = None
                ) -> np.ndarray:
        """Inference, optionally chunked to bound peak memory.

        A ``batch_size`` that does not divide the input runs a smaller
        final chunk; results are concatenated in order."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim >= 1 and x.shape[0] == 0:
            raise ValueError(
                "cannot run inference on an empty batch: input has 0 "
                "examples (shape {})".format(x.shape))
        if batch_size is not None and batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {batch_size}")
        if batch_size is None or x.shape[0] <= batch_size:
            return self.forward(x, training=False)
        chunks = [self.forward(x[s:s + batch_size], training=False)
                  for s in range(0, x.shape[0], batch_size)]
        return np.concatenate(chunks, axis=0)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters_and_gradients(self):
        """Yield (param, grad) pairs in deterministic order."""
        for name in self.topological_order:
            layer = self._specs[name].layer
            for key in sorted(layer.params):
                yield layer.params[key], layer.grads[key]

    def zero_grads(self) -> None:
        for name in self.topological_order:
            self._specs[name].layer.zero_grads()

    @property
    def n_parameters(self) -> int:
        return sum(self._specs[n].layer.n_parameters
                   for n in self.topological_order)

    def get_weights(self) -> list[np.ndarray]:
        """Copies of all parameters (checkpointing)."""
        return [p.copy() for p, _ in self.parameters_and_gradients()]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        params = [p for p, _ in self.parameters_and_gradients()]
        if len(params) != len(weights):
            raise ValueError(
                f"expected {len(params)} arrays, got {len(weights)}")
        for param, value in zip(params, weights):
            if param.shape != value.shape:
                raise ValueError(
                    f"shape mismatch: {param.shape} vs {value.shape}")
            param[...] = value

    def summary(self) -> str:
        """Human-readable architecture description (paper Fig. 4 analogue)."""
        lines = [f"Network(input_dim={self.input_dim}, "
                 f"params={self.n_parameters})"]
        for name in self.topological_order:
            spec = self._specs[name]
            srcs = ", ".join(spec.inputs)
            marker = " <- output" if name == self.output_name else ""
            lines.append(f"  {name}: {spec.layer!r} "
                         f"(inputs: {srcs}; dim={self._dims[name]}){marker}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Network(nodes={len(self._specs)}, "
                f"params={self.n_parameters})")
