"""Training losses.

The paper trains every candidate with mean squared error (Sec. IV).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MeanSquaredError"]


class MeanSquaredError:
    """MSE over all tensor entries.

    ``loss = mean((pred - target)^2)``; the gradient is taken with respect
    to the prediction.
    """

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        self._check(predictions, targets)
        diff = predictions - targets
        return float(np.mean(diff * diff))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray
                 ) -> np.ndarray:
        self._check(predictions, targets)
        return 2.0 * (predictions - targets) / predictions.size

    @staticmethod
    def _check(predictions: np.ndarray, targets: np.ndarray) -> None:
        if predictions.shape != targets.shape:
            raise ValueError(
                f"prediction shape {predictions.shape} does not match "
                f"target shape {targets.shape}")

    def __repr__(self) -> str:
        return "MeanSquaredError()"
