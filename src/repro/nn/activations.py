"""Elementwise activations with analytic derivatives.

Each activation exposes ``forward(x) -> y`` and
``backward(grad, y) -> grad_in`` where ``y`` is the cached forward output
(cheaper than re-evaluating for tanh/sigmoid, whose derivatives are
expressible in the output).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Identity", "ReLU", "Sigmoid", "Tanh", "get_activation",
           "sigmoid", "dsigmoid_from_y", "dtanh_from_y"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def dsigmoid_from_y(y: np.ndarray) -> np.ndarray:
    """d sigmoid/dx expressed in the output y."""
    return y * (1.0 - y)


def dtanh_from_y(y: np.ndarray) -> np.ndarray:
    """d tanh/dx expressed in the output y."""
    return 1.0 - y * y


class _Activation:
    """Base class; subclasses are stateless singletons."""

    name = "base"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(_Activation):
    name = "identity"

    def forward(self, x):
        return x

    def backward(self, grad, y):
        return grad


class ReLU(_Activation):
    name = "relu"

    def forward(self, x):
        return np.maximum(x, 0.0)

    def backward(self, grad, y):
        return grad * (y > 0.0)


class Sigmoid(_Activation):
    name = "sigmoid"

    def forward(self, x):
        return sigmoid(x)

    def backward(self, grad, y):
        return grad * dsigmoid_from_y(y)


class Tanh(_Activation):
    name = "tanh"

    def forward(self, x):
        return np.tanh(x)

    def backward(self, grad, y):
        return grad * dtanh_from_y(y)


_REGISTRY = {cls.name: cls for cls in (Identity, ReLU, Sigmoid, Tanh)}


def get_activation(name: str | _Activation | None) -> _Activation:
    """Resolve an activation by name; ``None`` means identity (the paper's
    projection dense layers have no activation)."""
    if name is None:
        return Identity()
    if isinstance(name, _Activation):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; options: {sorted(_REGISTRY)}"
        ) from None
