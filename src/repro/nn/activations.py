"""Elementwise activations with analytic derivatives.

Each activation exposes ``forward(x) -> y`` and
``backward(grad, y) -> grad_in`` where ``y`` is the cached forward output
(cheaper than re-evaluating for tanh/sigmoid, whose derivatives are
expressible in the output).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Identity", "ReLU", "Sigmoid", "Tanh", "get_activation",
           "sigmoid", "dsigmoid_from_y", "dtanh_from_y"]


def sigmoid(x: np.ndarray, out: np.ndarray | None = None,
            scratch: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Evaluates the two-branch stable form without boolean fancy indexing
    (the historical implementation masked positive and negative entries
    separately, which cost four gather/scatter passes — ~a third of the
    LSTM hot path). With ``z = exp(-|x|)`` the branches share one
    ``exp`` and one divide: ``1/(1+z)`` where ``x >= 0`` and ``z/(1+z)``
    elsewhere. Every element sees the exact arithmetic of the masked
    version, so the results are bitwise identical to it.

    The numerator needs no boolean select at all: ``exp(min(x, 0))`` is
    ``exp(0) = 1.0`` exactly where ``x >= 0`` and ``exp(x) = exp(-|x|)``
    bit for bit where ``x < 0``, so the whole evaluation is plain ufunc
    passes (NaN propagates through ``minimum``/``exp`` unchanged).

    ``out`` optionally receives the result in place (it may be a strided
    view, e.g. a gate block of a preallocated buffer). ``scratch``, if
    given, must be a writable array of ``x``'s shape — the fused kernels
    pass a reused buffer, making the hot path allocation-free.
    """
    z = scratch if scratch is not None else np.empty_like(x)
    np.abs(x, out=z)
    np.negative(z, out=z)
    np.exp(z, out=z)
    if out is None:
        out = np.empty_like(x)
    np.minimum(x, 0.0, out=out)
    np.exp(out, out=out)
    z += 1.0
    return np.divide(out, z, out=out)


def dsigmoid_from_y(y: np.ndarray) -> np.ndarray:
    """d sigmoid/dx expressed in the output y."""
    return y * (1.0 - y)


def dtanh_from_y(y: np.ndarray) -> np.ndarray:
    """d tanh/dx expressed in the output y."""
    return 1.0 - y * y


class _Activation:
    """Base class; subclasses are stateless singletons."""

    name = "base"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(_Activation):
    name = "identity"

    def forward(self, x):
        return x

    def backward(self, grad, y):
        return grad


class ReLU(_Activation):
    name = "relu"

    def forward(self, x):
        return np.maximum(x, 0.0)

    def backward(self, grad, y):
        return grad * (y > 0.0)


class Sigmoid(_Activation):
    name = "sigmoid"

    def forward(self, x):
        return sigmoid(x)

    def backward(self, grad, y):
        return grad * dsigmoid_from_y(y)


class Tanh(_Activation):
    name = "tanh"

    def forward(self, x):
        return np.tanh(x)

    def backward(self, grad, y):
        return grad * dtanh_from_y(y)


_REGISTRY = {cls.name: cls for cls in (Identity, ReLU, Sigmoid, Tanh)}


def get_activation(name: str | _Activation | None) -> _Activation:
    """Resolve an activation by name; ``None`` means identity (the paper's
    projection dense layers have no activation)."""
    if name is None:
        return Identity()
    if isinstance(name, _Activation):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; options: {sorted(_REGISTRY)}"
        ) from None
