"""Evaluation metrics.

The paper's search reward and post-training quality figure is the
coefficient of determination R^2 on validation data; Table I reports RMSE
in degrees Celsius.
"""

from __future__ import annotations

import numpy as np

__all__ = ["r2_score", "rmse"]


def r2_score(targets, predictions) -> float:
    """Coefficient of determination over all flattened entries.

    ``1 - SS_res / SS_tot`` with ``SS_tot`` about the target mean. Follows
    the scikit-learn convention for the degenerate case: if the targets are
    constant, returns 1.0 for a perfect fit and 0.0 otherwise. Can be
    arbitrarily negative for bad fits (paper: XGBoost scores -0.056 on the
    test period).
    """
    y = np.asarray(targets, dtype=np.float64).ravel()
    p = np.asarray(predictions, dtype=np.float64).ravel()
    if y.shape != p.shape:
        raise ValueError(
            f"targets {y.shape} and predictions {p.shape} differ in size")
    if y.size == 0:
        raise ValueError("r2_score of empty arrays is undefined")
    ss_res = float(np.sum((y - p) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def rmse(targets, predictions) -> float:
    """Root mean squared error over all flattened entries."""
    y = np.asarray(targets, dtype=np.float64).ravel()
    p = np.asarray(predictions, dtype=np.float64).ravel()
    if y.shape != p.shape:
        raise ValueError(
            f"targets {y.shape} and predictions {p.shape} differ in size")
    if y.size == 0:
        raise ValueError("rmse of empty arrays is undefined")
    return float(np.sqrt(np.mean((y - p) ** 2)))
