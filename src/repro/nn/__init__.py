"""From-scratch NumPy deep-learning micro-framework.

Substitutes for TensorFlow 1.14 / Keras 2.3.1 (paper Sec. IV). Provides
exactly the pieces the stacked-LSTM search space needs: Dense and LSTM
layers with full backpropagation(-through-time), elementwise Add/Identity/
activation nodes for skip connections, MSE loss, the R2 metric, SGD and
Adam optimizers, a DAG ``Network`` executed in topological order, and a
mini-batch ``Trainer``.
"""

from repro.nn.activations import Identity, ReLU, Sigmoid, Tanh, get_activation
from repro.nn.initializers import glorot_uniform, orthogonal, zeros
from repro.nn.layers import (AddLayer, DenseLayer, GRULayer,
                             IdentityLayer, LSTMLayer, SimpleRNNLayer)
from repro.nn.losses import MeanSquaredError
from repro.nn.metrics import r2_score, rmse
from repro.nn.model import Network, NodeSpec
from repro.nn.optimizers import SGD, Adam
from repro.nn.training import History, Trainer
from repro.nn.detmath import (batch_invariant, batch_invariant_enabled,
                              recurrent_matmul)
from repro.nn.fused import (fused_enabled, fused_kernels,
                            reference_kernels, set_fused_default)
from repro.nn.serialization import (load_network, network_from_spec,
                                    network_spec, save_network)

__all__ = [
    "Identity", "ReLU", "Sigmoid", "Tanh", "get_activation",
    "glorot_uniform", "orthogonal", "zeros",
    "AddLayer", "DenseLayer", "GRULayer", "IdentityLayer",
    "LSTMLayer", "SimpleRNNLayer",
    "MeanSquaredError",
    "r2_score", "rmse",
    "Network", "NodeSpec",
    "SGD", "Adam",
    "History", "Trainer",
    "save_network", "load_network", "network_spec", "network_from_spec",
    "batch_invariant", "batch_invariant_enabled", "recurrent_matmul",
    "fused_enabled", "fused_kernels", "reference_kernels",
    "set_fused_default",
]
