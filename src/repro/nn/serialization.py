"""Network persistence: a JSON node spec + weight arrays in one ``.npz``.

No pickle — the on-disk format is plain NumPy arrays plus a JSON header,
so archives are portable and inspectable. Layers are reconstructed from a
registry of (class name -> constructor kwargs) pairs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.layers import (
    ActivationLayer,
    AddLayer,
    DenseLayer,
    GRULayer,
    IdentityLayer,
    LSTMLayer,
    SimpleRNNLayer,
)
from repro.nn.model import Network

__all__ = ["save_network", "load_network", "layer_config",
           "network_spec", "network_from_spec"]


def _npz_path(path) -> Path:
    """The path the archive actually lives at.

    ``np.savez`` silently appends ``.npz`` when the name lacks it, so a
    round-trip through the *same* user-supplied path used to fail:
    ``save_network(net, "model")`` wrote ``model.npz`` while
    ``load_network("model")`` looked for ``model``. Both sides now
    normalize to the suffixed name, so whatever path ``save_network``
    accepted, ``load_network`` accepts too.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path

_LAYER_CLASSES = {cls.__name__: cls for cls in
                  (DenseLayer, LSTMLayer, GRULayer, SimpleRNNLayer,
                   AddLayer, ActivationLayer, IdentityLayer)}


def layer_config(layer) -> dict:
    """Constructor kwargs that recreate ``layer`` (untrained)."""
    if isinstance(layer, (LSTMLayer, GRULayer, SimpleRNNLayer)):
        return {"units": layer.units}
    if isinstance(layer, DenseLayer):
        return {"units": layer.units, "activation": layer.activation.name}
    if isinstance(layer, (AddLayer, ActivationLayer)):
        return {"activation": layer.activation.name}
    if isinstance(layer, IdentityLayer):
        return {}
    raise TypeError(f"cannot serialize layer type {type(layer).__name__}")


def network_spec(network: Network) -> dict:
    """JSON-compatible structural description of a network (no weights).

    The shared vocabulary of :func:`save_network` archives and the
    emulator bundles of :mod:`repro.serve.bundle` — both store this spec
    next to the weight arrays returned by ``network.get_weights()``.
    """
    if network.output_name is None:
        raise ValueError("cannot serialize an empty network")
    nodes = []
    for name in network.topological_order:
        spec = network._specs[name]
        nodes.append({"name": name,
                      "class": type(spec.layer).__name__,
                      "config": layer_config(spec.layer),
                      "inputs": list(spec.inputs)})
    return {"input_dim": network.input_dim,
            "output": network.output_name,
            "nodes": nodes}


def network_from_spec(spec: dict, weights: list[np.ndarray], *,
                      source: str = "network spec") -> Network:
    """Rebuild a network from :func:`network_spec` output plus weights.

    ``source`` labels error messages with where the spec came from (a
    file path, a bundle name).
    """
    network = Network(input_dim=int(spec["input_dim"]), rng=0)
    for node in spec["nodes"]:
        try:
            cls = _LAYER_CLASSES[node["class"]]
        except KeyError:
            raise ValueError(f"unknown layer class {node['class']!r} "
                             f"in {source}") from None
        network.add_node(node["name"], cls(**node["config"]),
                         node["inputs"])
    network.set_output(spec["output"])
    network.set_weights(weights)
    return network


def save_network(network: Network, path) -> None:
    """Write the network's structure and weights to ``path`` (.npz).

    The header carries ``layout: gate-stacked-v1`` — the recurrent
    weight convention (``wx``/``wh`` with gate blocks stacked along the
    last axis, LSTM order i|f|g|o, GRU order z|r|g) that both the
    reference and the fused kernels consume directly. Archives written
    before the tag existed omit it; :func:`load_network` tolerates its
    absence because the convention never changed — the fused kernels
    were built to read the reference layout in place.
    """
    header = {"format": "repro-network-v1",
              "layout": "gate-stacked-v1", **network_spec(network)}
    arrays = {f"w{i}": w for i, w in enumerate(network.get_weights())}
    np.savez(_npz_path(path), __spec__=np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8), **arrays)


def load_network(path) -> Network:
    """Rebuild a network saved by :func:`save_network`."""
    with np.load(_npz_path(path)) as archive:
        header = json.loads(bytes(archive["__spec__"].tobytes()).decode("utf-8"))
        if header.get("format") != "repro-network-v1":
            raise ValueError(f"{path}: not a repro network archive")
        layout = header.get("layout", "gate-stacked-v1")
        if layout != "gate-stacked-v1":
            raise ValueError(f"{path}: unsupported weight layout "
                             f"{layout!r} (expected gate-stacked-v1)")
        weights = [archive[f"w{i}"]
                   for i in range(len(archive.files) - 1)]
    return network_from_spec(header, weights, source=str(path))
