"""First-order optimizers (SGD with momentum, Adam).

The paper trains with ADAM at learning rate 0.001 (Sec. IV); those are the
defaults here. State is keyed by parameter identity so an optimizer can be
re-attached to the same network across epochs. Updates are in place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam", "clip_gradients"]


def clip_gradients(grads: list[np.ndarray], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clipping norm. LSTM BPTT occasionally spikes; clipping
    keeps mutated deep architectures from diverging during short searches.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = np.sqrt(sum(float(np.sum(g * g)) for g in grads))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class _Optimizer:
    """Shared plumbing: iterate (param, grad) pairs and update in place."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate

    def step(self, params_and_grads) -> None:
        """Apply one update. ``params_and_grads`` yields (param, grad)."""
        for param, grad in params_and_grads:
            self._update(param, grad)

    def _update(self, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def _update(self, param: np.ndarray, grad: np.ndarray) -> None:
        if self.momentum == 0.0:
            param -= self.learning_rate * grad
            return
        v = self._velocity.setdefault(id(param), np.zeros_like(param))
        v *= self.momentum
        v -= self.learning_rate * grad
        param += v


class Adam(_Optimizer):
    """Adam (Kingma & Ba 2014) with bias correction."""

    def __init__(self, learning_rate: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.beta1, self.beta2, self.epsilon = beta1, beta2, epsilon
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t: dict[int, int] = {}

    def _update(self, param: np.ndarray, grad: np.ndarray) -> None:
        key = id(param)
        m = self._m.setdefault(key, np.zeros_like(param))
        v = self._v.setdefault(key, np.zeros_like(param))
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1 ** t)
        v_hat = v / (1.0 - self.beta2 ** t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    # -- state capture ------------------------------------------------------
    # Moment estimates are keyed by id(param), which is not stable across
    # processes or re-built networks, so snapshots are *positional*: the
    # caller fixes a parameter order (model.parameters_and_gradients()) and
    # the same order must be used on restore.
    def capture_state(self, params) -> dict:
        """Snapshot moment estimates for ``params`` in iteration order."""
        params = list(params)
        return {
            "learning_rate": float(self.learning_rate),
            "beta1": self.beta1, "beta2": self.beta2,
            "epsilon": self.epsilon,
            "m": [np.array(self._m.get(id(p), np.zeros_like(p)))
                  for p in params],
            "v": [np.array(self._v.get(id(p), np.zeros_like(p)))
                  for p in params],
            "t": [int(self._t.get(id(p), 0)) for p in params],
        }

    def restore_state(self, params, state: dict) -> None:
        """Re-attach a :meth:`capture_state` snapshot to ``params``.

        ``params`` must enumerate the (possibly re-built) parameter arrays
        in the same order the snapshot was captured with.
        """
        params = list(params)
        if len(params) != len(state["m"]):
            raise ValueError(
                f"snapshot covers {len(state['m'])} parameters, "
                f"got {len(params)}")
        self.learning_rate = float(state["learning_rate"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.epsilon = float(state["epsilon"])
        self._m = {id(p): np.array(m, dtype=np.float64)
                   for p, m in zip(params, state["m"])}
        self._v = {id(p): np.array(v, dtype=np.float64)
                   for p, v in zip(params, state["v"])}
        self._t = {id(p): int(t) for p, t in zip(params, state["t"])}
