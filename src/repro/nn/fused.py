"""Runtime switch between the fused and reference recurrent kernels.

The recurrent layers (:mod:`repro.nn.layers.lstm` / ``gru`` / ``rnn``)
carry two implementations of the same numerics:

* the **reference** path — one small GEMM/elementwise expression per
  quantity per timestep, written for auditability and kept verbatim as
  the ground truth of the differential suite
  (tests/test_fused_differential.py);
* the **fused** path — the training hot path. The input projection
  ``x @ Wx + b`` for the whole sequence is hoisted out of the timestep
  loop, gate activations are evaluated in one ufunc pass per
  nonlinearity over contiguous gate blocks, per-step buffers are
  preallocated once per call, and BPTT weight-gradient accumulation is
  cache-blocked: the sequential part of backward only materializes the
  per-step pre-activation gradients, after which
  ``dWx``/``dWh``/``db``/``dx`` each fall out of a *single* stacked
  ``(T·B, ·)`` GEMM instead of ``T`` small ones.

  One rule bounds what the forward fusion may restructure: every GEMM it
  issues has the **same shape as the reference path's** (the hoisted
  projection is the same batched ``(B)×(T,F)@(F,·)`` matmul; the
  recurrent products are the same wide per-step GEMMs), with contiguity
  obtained by data-movement copies afterwards. Differently *shaped*
  GEMMs over the same data are not bitwise-equal in general — BLAS picks
  M/N-dependent kernels whose K-reduction order differs, and the
  batch-invariant gufunc's SIMD remainder reorders odd-K accumulation —
  whereas same-shape calls on differently-strided operands are (BLAS
  packs its operands; the gufunc's reduction order is layout-independent).

Contract (enforced by the differential suite): forward is **bitwise
identical** between the two paths, with and without
:func:`repro.nn.detmath.batch_invariant`; backward gradients agree to a
documented ``1e-12`` max-abs-diff (the stacked GEMMs reassociate the
reduction over timesteps, which IEEE addition does not commute with —
everything else is the same arithmetic in the same order).

The flag is thread-local so a serving thread and a training thread can
pick independently; the process-wide default is fused. Layers read the
flag at ``forward`` time and remember which path filled their cache, so
``backward`` always matches its own forward even if the flag flips in
between.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ScratchPool", "fused_enabled", "fused_kernels",
           "reference_kernels", "set_fused_default"]

_LOCAL = threading.local()

#: Process-wide default for threads that never entered a context.
_DEFAULT = True


def fused_enabled() -> bool:
    """Whether the calling thread currently runs the fused kernels."""
    return getattr(_LOCAL, "enabled", _DEFAULT)


def set_fused_default(enabled: bool) -> None:
    """Set the process-wide default mode (threads inside a
    :func:`fused_kernels` / :func:`reference_kernels` context are
    unaffected until they leave it)."""
    global _DEFAULT
    _DEFAULT = bool(enabled)


@contextmanager
def fused_kernels(enabled: bool = True):
    """Run the calling thread's recurrent layers in fused (or, with
    ``enabled=False``, reference) mode for the duration of the block."""
    previous = getattr(_LOCAL, "enabled", None)
    _LOCAL.enabled = bool(enabled)
    try:
        yield
    finally:
        if previous is None:
            del _LOCAL.enabled
        else:
            _LOCAL.enabled = previous


@contextmanager
def reference_kernels():
    """Shorthand for ``fused_kernels(False)`` — the differential suite's
    ground-truth mode."""
    with fused_kernels(False):
        yield


class ScratchPool:
    """Reusable per-layer workspace for the fused kernels.

    On a steady-shape workload (training loops, benchmark reps) freshly
    ``np.empty``-ing the forward/backward buffers every call costs more
    in page faults than the gate math itself — roughly a third of the
    LSTM hot path at ``(B, T, H) = (64, 16, 64)``. The pool hands back
    the same dict of arrays as long as the problem shape key is
    unchanged and rebuilds it when the shape changes (e.g. the last
    partial batch of an epoch).

    Not thread-safe by design: a pool belongs to one layer instance, and
    a layer's forward/backward is never entered concurrently (the
    parallel DAG executor schedules distinct *nodes*, each its own layer
    instance, onto distinct threads). Pickling a layer — e.g. shipping a
    candidate to a NAS worker process — deliberately drops the buffers:
    they are derived state, and the worker's shapes may differ.
    """

    __slots__ = ("_key", "_bufs")

    def __init__(self) -> None:
        self._key = None
        self._bufs = None

    def get(self, key, build):
        """Return the buffer dict for ``key``, calling ``build()`` only
        when the previous call had a different key (or there was none)."""
        if self._key != key:
            self._bufs = build()
            self._key = key
        return self._bufs

    def __reduce__(self):
        return (type(self), ())


def ones_column(array, column: int):
    """Set one column of a 2-D buffer to 1.0 and return the buffer.

    Builder helper for the stacked-accumulation operand ``[x | 1 | h]``
    of the fused backward: contracting a ones column against the
    pre-activation gradients folds the bias gradient into the same GEMM
    that produces the weight gradients.
    """
    array[:, column] = 1.0
    return array
