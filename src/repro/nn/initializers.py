"""Weight initializers (Keras-compatible defaults).

Keras LSTMs use Glorot-uniform kernels, orthogonal recurrent kernels and
zero biases with the forget-gate bias raised to one; matching these keeps
the training dynamics comparable to the paper's TF/Keras runs.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.utils.rng import as_generator

__all__ = ["glorot_uniform", "orthogonal", "zeros"]


def glorot_uniform(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """Uniform(-a, a) with ``a = sqrt(6 / (fan_in + fan_out))``."""
    if len(shape) < 2:
        raise ValueError(f"glorot_uniform needs >=2-D shape, got {shape}")
    fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return as_generator(rng).uniform(-limit, limit, size=shape)


def orthogonal(shape: tuple[int, int], rng=None) -> np.ndarray:
    """Orthogonal init via QR of a Gaussian matrix (recurrent kernels)."""
    if len(shape) != 2:
        raise ValueError(f"orthogonal needs a 2-D shape, got {shape}")
    rows, cols = shape
    big = max(rows, cols)
    gauss = as_generator(rng).standard_normal((big, big))
    q, r = sla.qr(gauss)
    # Sign correction makes the distribution uniform over the orthogonal group.
    q = q * np.sign(np.diag(r))[None, :]
    return np.ascontiguousarray(q[:rows, :cols])


def zeros(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """All-zeros (biases)."""
    return np.zeros(shape)
