"""Batch-invariant inference arithmetic (the serving determinism contract).

NumPy dispatches a 2-D matmul with a single left-hand row to a GEMV
kernel and larger ones to GEMM, and OpenBLAS additionally picks different
blocking by the M dimension — so the bits of row ``i`` of ``H @ W``
depend on how many other rows happened to share the call. That is fatal
for :mod:`repro.serve`: a micro-batching engine coalesces concurrent
forecast requests into one stacked forward, and its contract
(docs/SERVING.md) is that a response is **bitwise identical** to the
one-request-at-a-time answer regardless of which requests it was batched
with.

:func:`recurrent_matmul` restores invariance on demand. Inside a
:func:`batch_invariant` context it computes ``a @ w`` through the 3-D
gufunc path ``(a[:, None, :] @ w)[:, 0, :]``: NumPy then evaluates each
row as an independent ``(1, K) @ (K, N)`` product with the *same* kernel
a genuine batch-of-one call uses, so every row's bits are independent of
the batch it rides in (verified by the differential suite in
tests/test_serve_engine.py). Outside the context it is a plain ``@`` —
training and the existing evaluation paths are untouched, numerically
and in cost.

The flag is **thread-local**: an engine worker thread can serve in
batch-invariant mode while other threads train or score normally.

Only matmuls whose M dimension is the example batch need the treatment —
in this codebase, the recurrent ``h_{t-1} @ Wh`` products of the LSTM /
GRU / SimpleRNN cells. Input projections (``x @ Wx``) and dense layers
contract 3-D operands, which NumPy already evaluates per example, and
every other op is elementwise.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

__all__ = ["batch_invariant", "batch_invariant_enabled", "recurrent_matmul"]

_LOCAL = threading.local()


def batch_invariant_enabled() -> bool:
    """Whether the calling thread is inside a :func:`batch_invariant`."""
    return getattr(_LOCAL, "enabled", False)


@contextmanager
def batch_invariant():
    """Make :func:`recurrent_matmul` row-independent on this thread."""
    previous = batch_invariant_enabled()
    _LOCAL.enabled = True
    try:
        yield
    finally:
        _LOCAL.enabled = previous


def recurrent_matmul(a: np.ndarray, w: np.ndarray,
                     out: np.ndarray | None = None) -> np.ndarray:
    """``a @ w`` for a 2-D ``(B, K)`` left operand whose rows are
    independent examples.

    Identical to ``a @ w`` unless the calling thread is inside
    :func:`batch_invariant`, in which case each row is computed by the
    batch-of-one kernel so the result's bits do not depend on ``B``.

    ``out`` optionally receives the result in place — the fused kernels
    (:mod:`repro.nn.fused`) reuse one pre-activation buffer across
    timesteps. Both modes honor it: the batch-invariant path routes the
    gufunc through a ``(B, 1, N)`` view of ``out``, so serving
    equivalence covers the fused matmuls too.
    """
    if not getattr(_LOCAL, "enabled", False):
        if out is None:
            return a @ w
        return np.matmul(a, w, out=out)
    if out is None:
        return (a[:, None, :] @ w)[:, 0, :]
    np.matmul(a[:, None, :], w, out=out[:, None, :])
    return out
