"""Benchmark-to-baseline comparison behind ``repro bench --compare``.

Compares a freshly measured suite against a committed baseline
(``BENCH_core.json`` from an earlier PR) and renders a per-benchmark
delta table. A benchmark regresses when its mean slows down by more than
``threshold`` (default 20%); any regression makes the comparison fail, so
CI can gate on ``python -m repro.cli bench --compare OLD.json``.
Benchmarks present on only one side are listed but never fail the run —
suites legitimately grow and shrink across PRs.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

__all__ = ["BenchComparison", "ComparisonRow", "compare_bench",
           "load_bench_file"]


@dataclass(frozen=True)
class ComparisonRow:
    """Delta of one benchmark present in both suites.

    Both means must be finite and positive — a zero mean would make
    ``delta``/``speedup`` divide by zero, and no real timing is zero or
    negative; :func:`load_bench_file` rejects such entries at the door,
    and the constructor enforces the same invariant for rows built from
    in-memory dicts.
    """

    name: str
    old_mean_s: float
    new_mean_s: float

    def __post_init__(self) -> None:
        for label, value in (("old", self.old_mean_s),
                             ("new", self.new_mean_s)):
            if not math.isfinite(value) or value <= 0:
                raise ValueError(
                    f"benchmark {self.name!r}: {label} mean_s must be a "
                    f"finite positive number, got {value!r}")

    @property
    def delta(self) -> float:
        """Relative change of the mean; positive means slower."""
        return (self.new_mean_s - self.old_mean_s) / self.old_mean_s

    @property
    def speedup(self) -> float:
        return self.old_mean_s / self.new_mean_s


@dataclass(frozen=True)
class BenchComparison:
    """Outcome of comparing a new suite against a baseline."""

    rows: tuple[ComparisonRow, ...]
    threshold: float
    missing_in_new: tuple[str, ...]
    only_in_new: tuple[str, ...]

    @property
    def regressions(self) -> tuple[ComparisonRow, ...]:
        return tuple(r for r in self.rows if r.delta > self.threshold)

    @property
    def improvements(self) -> tuple[ComparisonRow, ...]:
        return tuple(r for r in self.rows if r.delta < -self.threshold)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def table(self) -> str:
        """ASCII delta table, worst regression first."""
        lines = [f"{'benchmark':40s} {'old ms':>10s} {'new ms':>10s} "
                 f"{'delta':>8s}  verdict"]
        for row in sorted(self.rows, key=lambda r: -r.delta):
            if row.delta > self.threshold:
                verdict = "REGRESSED"
            elif row.delta < -self.threshold:
                verdict = "improved"
            else:
                verdict = "ok"
            lines.append(
                f"{row.name:40s} {row.old_mean_s * 1e3:10.3f} "
                f"{row.new_mean_s * 1e3:10.3f} {row.delta * 100:+7.1f}%  "
                f"{verdict}")
        for name in self.missing_in_new:
            lines.append(f"{name:40s} {'-':>10s} {'-':>10s} {'':8s}  "
                         f"missing from new run")
        for name in self.only_in_new:
            lines.append(f"{name:40s} {'-':>10s} {'-':>10s} {'':8s}  "
                         f"new benchmark (no baseline)")
        lines.append(
            f"-- {len(self.rows)} compared, "
            f"{len(self.regressions)} regressed (>{self.threshold:.0%}), "
            f"{len(self.improvements)} improved, "
            f"{len(self.missing_in_new)} missing, "
            f"{len(self.only_in_new)} new")
        return "\n".join(lines)


def compare_bench(old: dict, new: dict, *,
                  threshold: float = 0.20) -> BenchComparison:
    """Compare two BENCH_core.json payloads (``{name: {mean_s: ...}}``)."""
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    shared = sorted(set(old) & set(new))
    rows = tuple(ComparisonRow(name=name,
                               old_mean_s=float(old[name]["mean_s"]),
                               new_mean_s=float(new[name]["mean_s"]))
                 for name in shared)
    return BenchComparison(
        rows=rows, threshold=float(threshold),
        missing_in_new=tuple(sorted(set(old) - set(new))),
        only_in_new=tuple(sorted(set(new) - set(old))))


def load_bench_file(path) -> dict:
    """Load and check a benchmark JSON file.

    Rejects entries whose ``mean_s`` is missing, non-numeric, non-finite
    (``json.load`` happily parses ``NaN``/``Infinity``) or non-positive —
    any of which would poison the comparison arithmetic downstream.
    """
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: bench file must contain a JSON object")
    for name, entry in data.items():
        if not isinstance(entry, dict) or "mean_s" not in entry:
            raise ValueError(f"{path}: entry {name!r} lacks mean_s")
        mean_s = entry["mean_s"]
        if isinstance(mean_s, bool) or \
                not isinstance(mean_s, (int, float)) or \
                not math.isfinite(mean_s) or mean_s <= 0:
            raise ValueError(
                f"{path}: entry {name!r} has invalid mean_s {mean_s!r} "
                f"(must be a finite positive number)")
    return data
