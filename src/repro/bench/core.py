"""Microbenchmark harness core: timing, aggregation, BENCH_core.json.

A :class:`Benchmark` is a named factory: ``make()`` performs all setup
(allocations, network construction, data synthesis) and returns the
zero-argument thunk that is actually timed, so setup cost never leaks
into the measurement. :func:`run_suite` times every benchmark
``reps`` times after one untimed warmup call, then writes the perf
trajectory file::

    {"<name>": {"mean_s": float, "std_s": float, "reps": int,
                "metadata": {...}}, ...}

``BENCH_core.json`` seeds the repo's perf trajectory: future PRs rerun
the suite and compare means against the committed baseline, so "make the
hot path faster" claims are checkable (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Benchmark", "BenchResult", "run_benchmark", "run_suite",
           "validate_bench_data"]


@dataclass(frozen=True)
class Benchmark:
    """One named microbenchmark.

    ``make`` runs untimed setup and returns the thunk to time; ``metadata``
    records the workload shape (sizes, reps semantics) into the JSON.
    """

    name: str
    make: Callable[[], Callable[[], object]]
    metadata: dict = field(default_factory=dict)


@dataclass(frozen=True)
class BenchResult:
    """Aggregated timings of one benchmark."""

    name: str
    mean_s: float
    std_s: float
    reps: int
    metadata: dict

    def as_json(self) -> dict:
        return {"mean_s": self.mean_s, "std_s": self.std_s,
                "reps": self.reps, "metadata": self.metadata}


def run_benchmark(bench: Benchmark, *, reps: int = 5, warmup_s: float = 0.0,
                  clock=time.perf_counter) -> BenchResult:
    """Time one benchmark: setup once, warmup, ``reps`` timed.

    The warmup is always at least one call (first-call allocations and
    caches don't count); ``warmup_s > 0`` keeps calling until that much
    wall time has elapsed, so machines whose CPU frequency ramps up
    under sustained load (laptop/CI governors) are measured at steady
    state rather than mid-ramp. The CLI (`repro bench`) uses a 0.25 s
    floor; the default here stays a single call so fake-clock tests and
    embedders keep the historical behaviour.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    if warmup_s < 0:
        raise ValueError(f"warmup_s must be >= 0, got {warmup_s}")
    fn = bench.make()
    t_warm = clock()
    fn()
    while clock() - t_warm < warmup_s:
        fn()
    times = []
    for _ in range(reps):
        t0 = clock()
        fn()
        times.append(clock() - t0)
    mean = sum(times) / reps
    var = sum((t - mean) ** 2 for t in times) / (reps - 1) if reps > 1 else 0.0
    return BenchResult(name=bench.name, mean_s=mean, std_s=math.sqrt(var),
                       reps=reps, metadata=dict(bench.metadata))


def run_suite(benchmarks: list[Benchmark], *, reps: int = 5,
              warmup_s: float = 0.0, out_path=None,
              progress: Callable[[str], None] | None = None
              ) -> dict[str, BenchResult]:
    """Run every benchmark and (optionally) write the JSON trajectory."""
    names = [b.name for b in benchmarks]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate benchmark names in suite: {names}")
    results: dict[str, BenchResult] = {}
    for bench in benchmarks:
        result = run_benchmark(bench, reps=reps, warmup_s=warmup_s)
        results[bench.name] = result
        if progress is not None:
            progress(f"{bench.name:40s} {result.mean_s * 1e3:10.3f} ms "
                     f"± {result.std_s * 1e3:8.3f} ms  (n={result.reps})")
    if out_path is not None:
        data = {name: r.as_json() for name, r in results.items()}
        validate_bench_data(data)
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results


def validate_bench_data(data) -> None:
    """Schema-check a BENCH_core.json payload; raises ValueError on the
    first violation (used both by the writer and by the tier-1 test)."""
    if not isinstance(data, dict) or not data:
        raise ValueError("bench data must be a non-empty dict")
    for name, entry in data.items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"benchmark name must be a non-empty string, "
                             f"got {name!r}")
        if not isinstance(entry, dict):
            raise ValueError(f"{name}: entry must be a dict, got "
                             f"{type(entry).__name__}")
        missing = {"mean_s", "std_s", "reps", "metadata"} - set(entry)
        if missing:
            raise ValueError(f"{name}: missing keys {sorted(missing)}")
        mean_s, std_s, reps = entry["mean_s"], entry["std_s"], entry["reps"]
        if not isinstance(mean_s, (int, float)) or not mean_s > 0 \
                or not math.isfinite(mean_s):
            raise ValueError(f"{name}: mean_s must be finite and positive, "
                             f"got {mean_s!r}")
        if not isinstance(std_s, (int, float)) or std_s < 0 \
                or not math.isfinite(std_s):
            raise ValueError(f"{name}: std_s must be finite and "
                             f"non-negative, got {std_s!r}")
        if not isinstance(reps, int) or isinstance(reps, bool) or reps < 1:
            raise ValueError(f"{name}: reps must be a positive int, "
                             f"got {reps!r}")
        if not isinstance(entry["metadata"], dict):
            raise ValueError(f"{name}: metadata must be a dict")
