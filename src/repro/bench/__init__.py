"""repro.bench — microbenchmark harness seeding BENCH_core.json.

Run via ``python -m repro.cli bench [--quick]``; see
docs/OBSERVABILITY.md for the output schema and how the perf trajectory
is consumed.
"""

from repro.bench.core import (
    Benchmark,
    BenchResult,
    run_benchmark,
    run_suite,
    validate_bench_data,
)
from repro.bench.compare import (
    BenchComparison,
    ComparisonRow,
    compare_bench,
    load_bench_file,
)
from repro.bench.suite import default_suite

__all__ = ["Benchmark", "BenchResult", "run_benchmark", "run_suite",
           "validate_bench_data", "default_suite",
           "BenchComparison", "ComparisonRow", "compare_bench",
           "load_bench_file"]
