"""The core benchmark suite behind ``python -m repro.cli bench``.

Covers the four cost centres of the reproduction (ISSUE: the paths every
"make it faster" PR will touch):

* recurrent-cell forward+backward at several ``(B, T, H)`` points
  (LSTM / GRU / SimpleRNN — the BPTT inner loop);
* one full :class:`~repro.nn.training.Trainer` epoch (batching, loss,
  clipping, Adam);
* POD basis computation (method of snapshots) at archive-like shape;
* a 10-evaluation random-search slice over the surrogate (ask /
  evaluate / tell machinery, the NAS outer loop);
* a 200-evaluation RS campaign from a tabular benchmark archive
  (docs/NAS_BENCHMARK.md), with the extrapolated real-training cost of
  the same campaign recorded alongside for the speedup gate;
* a checkpoint save+load round-trip of a warm search (the per-write
  cost of campaign checkpointing, docs/CHECKPOINTING.md);
* the inference serving hot path (docs/SERVING.md): draining queued
  requests through the micro-batching engine at ``max_batch`` 1 vs 8,
  and closed-loop load-generator throughput at 4 clients.

Every benchmark is seeded and self-contained: ``make()`` builds all data
so only steady-state compute is timed. The ``quick`` suite is sized to
finish on one CPU core in well under two minutes.
"""

from __future__ import annotations

import numpy as np

from repro.bench.core import Benchmark

__all__ = ["default_suite"]

#: Input feature width of the cell benchmarks (the paper's POD setting
#: uses Nr = 5 modes; 8 keeps GEMM shapes BLAS-friendly).
_CELL_FEATURES = 8

#: (B, T, H) grid of the recurrent-cell benchmarks.
_QUICK_CELL_POINTS = (
    ("lstm", 32, 8, 32),
    ("lstm", 64, 16, 64),
    ("gru", 32, 8, 32),
    ("gru", 64, 16, 64),
    ("rnn", 64, 16, 64),
)
_FULL_CELL_POINTS = _QUICK_CELL_POINTS + (
    ("lstm", 64, 32, 96),
    ("gru", 64, 32, 96),
    ("rnn", 64, 32, 96),
)


#: ``(kind, B, T, H)`` points that also get an explicitly fused-pinned
#: ``*_fused`` entry (the unsuffixed entries run the process-default
#: kernel path, which today is also fused — the pinned entries keep the
#: fused trajectory comparable even if the default ever flips back).
_FUSED_CELL_POINTS = (
    ("lstm", 64, 16, 64),
    ("gru", 64, 16, 64),
)


def _cell_benchmark(kind: str, batch: int, steps: int, units: int,
                    fused: bool | None = None) -> Benchmark:
    def make():
        from repro.nn.fused import fused_kernels
        from repro.nn.layers import GRULayer, LSTMLayer, SimpleRNNLayer
        layer_cls = {"lstm": LSTMLayer, "gru": GRULayer,
                     "rnn": SimpleRNNLayer}[kind]
        layer = layer_cls(units)
        layer.build([_CELL_FEATURES], rng=0)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((batch, steps, _CELL_FEATURES))
        grad = rng.standard_normal((batch, steps, units))

        def run():
            import contextlib
            pin = contextlib.nullcontext() if fused is None \
                else fused_kernels(fused)
            with pin:
                layer.forward([x], training=True)
                layer.zero_grads()
                layer.backward(grad)
        return run

    suffix = "" if fused is None else ("_fused" if fused else "_ref")
    kernel = "process default" if fused is None \
        else ("fused (pinned)" if fused else "reference (pinned)")
    return Benchmark(
        name=f"{kind}_fwd_bwd_b{batch}_t{steps}_h{units}{suffix}",
        make=make,
        metadata={"kind": kind, "batch": batch, "steps": steps,
                  "units": units, "features": _CELL_FEATURES,
                  "kernel": kernel,
                  "measures": "forward+backward, full BPTT"})


def _trainer_epoch_benchmark(quick: bool) -> Benchmark:
    n, steps, features, units = (256, 8, 5, 16) if quick \
        else (1024, 8, 5, 64)

    def make():
        from repro.nn import LSTMLayer, Network, Trainer
        rng = np.random.default_rng(0)
        x = rng.standard_normal((n, steps, features))
        y = 0.3 * np.cumsum(x, axis=1)
        net = Network(input_dim=features, rng=0)
        net.add_node("l1", LSTMLayer(units), ["input"])
        net.add_node("output", LSTMLayer(features), ["l1"])
        net.set_output("output")
        trainer = Trainer(epochs=1, batch_size=64)

        def run():
            # Each rep continues training the same network: per-epoch cost
            # is weight-independent, so steady-state timing is unaffected.
            trainer.fit(net, x, y, rng=0)
        return run

    return Benchmark(
        name="trainer_epoch",
        make=make,
        metadata={"examples": n, "steps": steps, "features": features,
                  "units": units, "batch_size": 64,
                  "measures": "one Trainer epoch incl. validation pass"})


def _pod_basis_benchmark(quick: bool) -> Benchmark:
    n_state, n_snapshots = (1500, 120) if quick else (6000, 400)

    def make():
        from repro.pod import fit_pod
        rng = np.random.default_rng(0)
        # Low-rank structure + noise, the regime of a geophysical archive.
        basis = rng.standard_normal((n_state, 12))
        coeffs = rng.standard_normal((12, n_snapshots))
        snapshots = basis @ coeffs + 0.1 * rng.standard_normal(
            (n_state, n_snapshots))

        def run():
            fit_pod(snapshots, n_modes=5, method="snapshots")
        return run

    return Benchmark(
        name="pod_basis",
        make=make,
        metadata={"n_state": n_state, "n_snapshots": n_snapshots,
                  "n_modes": 5,
                  "measures": "POD method of snapshots (paper Eq. 3-5)"})


def _random_search_benchmark() -> Benchmark:
    n_evaluations = 10

    def make():
        from repro.nas import RandomSearch, StackedLSTMSpace, \
            SurrogateEvaluator
        from repro.nas.space.ops import default_operations
        space = StackedLSTMSpace(n_layers=5, input_dim=5, output_dim=5,
                                 operations=default_operations())
        evaluator = SurrogateEvaluator(space)

        def run():
            algorithm = RandomSearch(space, rng=0)
            rng = np.random.default_rng(1)
            for _ in range(n_evaluations):
                arch = algorithm.ask()
                result = evaluator.evaluate(arch, rng)
                algorithm.tell(arch, result.reward)
        return run

    return Benchmark(
        name=f"random_search_{n_evaluations}_evals",
        make=make,
        metadata={"n_evaluations": n_evaluations, "fidelity": "surrogate",
                  "measures": "ask/evaluate/tell loop over the paper's "
                              "full 5-layer space"})


def _checkpoint_roundtrip_benchmark() -> Benchmark:
    """Save + load of a warm aging-evolution search (docs/CHECKPOINTING.md)
    — the fixed cost every periodic campaign checkpoint pays, so it must
    stay cheap relative to the evaluations it snapshots between."""
    n_warm = 200

    def make():
        import tempfile
        from pathlib import Path

        from repro.nas import AgingEvolution, StackedLSTMSpace, \
            SurrogateEvaluator, load_search, save_search
        from repro.nas.space.ops import default_operations
        space = StackedLSTMSpace(n_layers=5, input_dim=5, output_dim=5,
                                 operations=default_operations())
        evaluator = SurrogateEvaluator(space)
        search = AgingEvolution(space, rng=0)
        rng = np.random.default_rng(1)
        for _ in range(n_warm):
            arch = search.ask()
            search.tell(arch, evaluator.evaluate(arch, rng).reward)
        tmpdir = tempfile.mkdtemp(prefix="repro_bench_ckpt_")
        path = Path(tmpdir) / "search.json"

        def run():
            save_search(search, path)
            load_search(path, space)
        return run

    return Benchmark(
        name="checkpoint_roundtrip",
        make=make,
        metadata={"n_warm_evaluations": n_warm,
                  "measures": "atomic JSON save + exact-RNG load of a "
                              "warm AgingEvolution search"})


#: Pool sizes of the serial-vs-pool throughput benchmarks.
_PARALLEL_WORKER_COUNTS = (1, 2, 4)


#: Modeled per-evaluation node latency of the pool benchmarks (seconds).
_PACE_SECONDS = 0.08


def _parallel_search_evaluator():
    """A latency-bound random-search slice: surrogate quality plus the
    per-evaluation node occupancy the real machine pays.

    An evaluation on Theta holds a node for minutes while the search
    master merely waits, so the quantity a dispatch backend improves is
    *overlapped latency* — which also keeps this benchmark meaningful on
    single-core CI runners, where compute-bound work cannot speed up.
    """
    from repro.nas.evaluation import PacedEvaluator, SurrogateEvaluator
    from repro.nas.space.ops import Operation
    from repro.nas.space.search_space import StackedLSTMSpace
    ops = (Operation("identity"), Operation("lstm", 8),
           Operation("lstm", 16), Operation("lstm", 24))
    space = StackedLSTMSpace(n_layers=3, input_dim=5, output_dim=5,
                             operations=ops, max_skip_depth=3)
    evaluator = PacedEvaluator(SurrogateEvaluator(space),
                               pace_seconds=_PACE_SECONDS)
    return space, evaluator


def _parallel_search_benchmark(workers: int | None,
                               quick: bool) -> Benchmark:
    """Throughput of one random-search slice through an evaluation
    backend: ``workers=None`` is the in-process serial reference, else a
    ``workers``-process pool (same tasks, bitwise-identical results)."""
    n_evaluations = 8 if quick else 16

    def make():
        from repro.hpc.parallel import ParallelEvaluator, SerialEvaluator
        from repro.utils.rng import child_sequence, spawn_sequences
        space, evaluator = _parallel_search_evaluator()
        rng = np.random.default_rng(1)
        archs = [space.random_architecture(rng)
                 for _ in range(n_evaluations)]
        seeds = spawn_sequences(2, n_evaluations)
        if workers is None:
            backend = SerialEvaluator(evaluator)
        else:
            backend = ParallelEvaluator(evaluator, n_workers=workers)

        def run():
            handles = [backend.submit(arch, seed)
                       for arch, seed in zip(archs, seeds)]
            for handle in handles:
                backend.gather(handle)
        return run

    label = "serial" if workers is None else f"w{workers}"
    return Benchmark(
        name=f"parallel_search_{label}",
        make=make,
        metadata={"workers": 0 if workers is None else workers,
                  "n_evaluations": n_evaluations,
                  "pace_seconds": _PACE_SECONDS, "fidelity": "surrogate",
                  "measures": "submit/gather throughput of a paced "
                              "random-search slice through the evaluation "
                              "backend (serial vs process pool)"})


def _serve_emulator():
    """A forecast-ready emulator for the serving benchmarks: pipeline
    fitted on a low-rank synthetic archive, network assembled untrained
    (inference cost is weight-independent)."""
    from repro.baselines.manual_lstm import build_manual_lstm
    from repro.forecast import PODCoefficientPipeline, PODLSTMEmulator
    rng = np.random.default_rng(0)
    n_state, n_snapshots = 400, 80
    base = rng.standard_normal((n_state, 8))
    snapshots = base @ rng.standard_normal((8, n_snapshots)) \
        + 0.05 * rng.standard_normal((n_state, n_snapshots))
    pipeline = PODCoefficientPipeline(n_modes=5, window=8)
    pipeline.fit(snapshots)
    network = build_manual_lstm(32, 1, input_dim=5, output_dim=5, rng=0)
    return PODLSTMEmulator.from_artifacts(pipeline, network)


def _serve_latency_benchmark(max_batch: int) -> Benchmark:
    """64 requests submitted at once through the engine, waited to
    completion — max_batch=1 is the no-coalescing reference, max_batch=8
    shows what micro-batching buys (cache off: compute, not lookups)."""
    n_requests = 64

    def make():
        from repro.serve import ForecastEngine
        emulator = _serve_emulator()
        rng = np.random.default_rng(1)
        windows = rng.uniform(-1.0, 1.0, size=(n_requests, 8, 5))
        engine = ForecastEngine(emulator, version=f"bench-b{max_batch}",
                                max_batch=max_batch, max_queue=n_requests,
                                cache_entries=0).start()

        def run():
            pendings = [engine.submit(w) for w in windows]
            for pending in pendings:
                pending.result(timeout=30.0)
        return run

    return Benchmark(
        name=f"serve_latency_b{max_batch}",
        make=make,
        metadata={"n_requests": n_requests, "max_batch": max_batch,
                  "cache": "off",
                  "measures": "drain 64 queued forecast requests through "
                              "the micro-batching engine (batch-invariant "
                              "kernels)"})


def _serve_throughput_benchmark() -> Benchmark:
    """Closed-loop load-generator throughput at 4 clients — the
    ``serve_throughput`` SLO trajectory entry of BENCH_core.json."""
    clients, requests_per_client = 4, 16

    def make():
        from repro.serve import ForecastEngine, run_loadgen
        emulator = _serve_emulator()
        rng = np.random.default_rng(2)
        windows = rng.uniform(
            -1.0, 1.0, size=(clients * requests_per_client, 8, 5))
        engine = ForecastEngine(emulator, version="bench-loadgen",
                                cache_entries=0).start()

        def run():
            run_loadgen(engine, windows, clients=clients,
                        requests_per_client=requests_per_client)
        return run

    return Benchmark(
        name="serve_throughput",
        make=make,
        metadata={"clients": clients,
                  "requests_per_client": requests_per_client,
                  "cache": "off",
                  "measures": "closed-loop load generation against the "
                              "engine (threads, queueing, batching, SLO "
                              "aggregation)"})


def _nas_benchmark_campaign_benchmark() -> Benchmark:
    """A 200-evaluation random-search campaign answered entirely from a
    tabular benchmark archive (docs/NAS_BENCHMARK.md).

    ``make()`` also times a few real short trainings of the same space
    and extrapolates what the identical campaign would cost on the
    training path; both numbers land in the metadata so the JSON itself
    witnesses the archive's speedup (the acceptance floor is 100x, the
    measured ratio is typically >> 1000x)."""
    n_evaluations = 200
    n_reference_evals = 3

    def make():
        import tempfile
        import time as _time
        from pathlib import Path

        from repro.nas import ArchitecturePerformanceModel, \
            BenchmarkEvaluator, RealTrainingEvaluator, build_archive, \
            run_benchmark_campaign
        from repro.nas.space.ops import Operation
        from repro.nas.space.search_space import StackedLSTMSpace
        from repro.nn.training import Trainer
        space = StackedLSTMSpace(
            3, input_dim=3, output_dim=3,
            operations=(Operation("identity"), Operation("lstm", 4),
                        Operation("lstm", 8), Operation("lstm", 12)),
            max_skip_depth=3)
        tmpdir = tempfile.mkdtemp(prefix="repro_bench_nasb_")
        path = build_archive(space, ArchitecturePerformanceModel(space),
                             Path(tmpdir) / "archive.npz")
        evaluator = BenchmarkEvaluator(path)

        # Reference: what each evaluation costs when it actually trains.
        # Tiny data and 4 epochs — still 5x below the search protocol's
        # 20 — so reference_campaign_s is a generous lower bound on the
        # per-candidate training the archive replaces.
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 6, 3))
        y = 0.3 * np.cumsum(x, axis=1)
        real = RealTrainingEvaluator(
            space, (x, y, x[:16], y[:16]),
            trainer=Trainer(epochs=4, batch_size=16))
        t0 = _time.perf_counter()
        for i in range(n_reference_evals):
            real.evaluate(space.random_architecture(rng),
                          np.random.default_rng(i))
        per_eval = (_time.perf_counter() - t0) / n_reference_evals
        metadata["real_training_per_eval_s"] = per_eval
        metadata["reference_campaign_s"] = per_eval * n_evaluations

        def run():
            run_benchmark_campaign(evaluator, algorithm="rs",
                                   n_evaluations=n_evaluations, seed=0)
        return run

    metadata = {"n_evaluations": n_evaluations,
                "n_records": 512, "fidelity": "benchmark (tabular)",
                "speedup_floor": 100.0,
                "measures": "200-evaluation RS campaign answered from an "
                            "exhaustive small-space archive; "
                            "reference_campaign_s extrapolates the same "
                            "campaign on the real-training path "
                            "(reference_campaign_s / mean_s must stay "
                            ">= speedup_floor)"}
    return Benchmark(name="nas_benchmark_campaign", make=make,
                     metadata=metadata)


def _hyperband_campaign_benchmark() -> Benchmark:
    """Hyperband on the 512-architecture benchmark archive vs the
    full-budget 200-evaluation random-search campaign (docs/SEARCH.md).

    ``make()`` runs the RS reference once and records both campaigns'
    noise-free archived quality and training-epoch totals into the
    metadata; the JSON itself witnesses the multi-fidelity win. CI
    (multifidelity-smoke) gates on ``epochs_saved_ratio >=
    epochs_saved_floor`` and ``hyperband_clean_quality >=
    rs_clean_quality`` — Hyperband must reach the full-budget random
    search's best quality in at most a third of the training epochs.
    The timed region is the Hyperband campaign itself."""
    seed = 0
    rs_evaluations = 200
    multiplier = 4

    def make():
        import tempfile
        from pathlib import Path

        from repro.nas import ArchitecturePerformanceModel, \
            BenchmarkEvaluator, Hyperband, build_archive, \
            run_benchmark_campaign, run_multifidelity_campaign
        from repro.nas.space.ops import Operation
        from repro.nas.space.search_space import StackedLSTMSpace
        space = StackedLSTMSpace(
            3, input_dim=3, output_dim=3,
            operations=(Operation("identity"), Operation("lstm", 4),
                        Operation("lstm", 8), Operation("lstm", 12)),
            max_skip_depth=3)
        model = ArchitecturePerformanceModel(space)
        tmpdir = tempfile.mkdtemp(prefix="repro_bench_hb_")
        path = build_archive(space, model, Path(tmpdir) / "archive.npz")
        evaluator = BenchmarkEvaluator(path)
        scheduler = Hyperband(min_epochs=1, max_epochs=evaluator.epochs,
                              eta=4, candidate_multiplier=multiplier)

        rs = run_benchmark_campaign(evaluator, algorithm="rs",
                                    n_evaluations=rs_evaluations,
                                    seed=seed)
        hb = run_multifidelity_campaign(scheduler, evaluator, seed=seed)
        rs_epochs = rs_evaluations * evaluator.epochs
        metadata["rs_clean_quality"] = model.quality(
            tuple(rs["best_architecture"]))
        metadata["hyperband_clean_quality"] = model.quality(
            tuple(hb["best_architecture"]))
        metadata["rs_epochs"] = rs_epochs
        metadata["hyperband_epochs"] = hb["epochs_incremental"]
        metadata["hyperband_evaluations"] = hb["n_evaluations"]
        metadata["epochs_saved_ratio"] = rs_epochs \
            / hb["epochs_incremental"]

        def run():
            run_multifidelity_campaign(scheduler, evaluator, seed=seed)
        return run

    metadata = {"seed": seed, "rs_evaluations": rs_evaluations,
                "eta": 4, "min_epochs": 1,
                "candidate_multiplier": multiplier, "n_records": 512,
                "epochs_saved_floor": 3.0,
                "measures": "Hyperband (eta=4, x4 brackets) over the "
                            "512-arch archive vs 200-evaluation "
                            "full-budget RS; *_clean_quality are the "
                            "noise-free archived qualities of each "
                            "campaign's best, epochs_saved_ratio = "
                            "rs_epochs / hyperband_epochs (must stay >= "
                            "epochs_saved_floor with hyperband quality "
                            ">= rs quality)"}
    return Benchmark(name="nas_hyperband_campaign", make=make,
                     metadata=metadata)


#: Per-request service-time floor of the router benchmarks. Like
#: ``_PACE_SECONDS`` above, a pace keeps the scaling measurement
#: meaningful on single-core CI runners: with paced workers the w4/w1
#: throughput ratio measures dispatch/sharding overlap, not how many
#: LSTM forward passes one core can interleave.
_ROUTER_PACE_SECONDS = 0.01


def _serve_router_benchmark(workers: int) -> Benchmark:
    """Closed-loop load through the sharded socket router at 1 vs 4
    paced workers — the distributed-tier scaling entries of
    BENCH_core.json (w4 must sustain >= 2x the w1 throughput)."""
    clients, requests_per_client = 8, 6

    def make():
        import tempfile

        from repro.serve import ModelRegistry, WorkerConfig
        from repro.serve.loadgen import run_router_loadgen
        from repro.serve.router import ForecastRouter
        emulator = _serve_emulator()
        registry_dir = tempfile.mkdtemp(prefix="repro-bench-router-")
        ModelRegistry(registry_dir).publish("bench", emulator,
                                            activate=True)
        # max_batch=1 + cache off: every request occupies its worker for
        # the full pace, so throughput scales with worker overlap only.
        worker_config = WorkerConfig(max_batch=1, cache_entries=0,
                                     pace_s=_ROUTER_PACE_SECONDS)
        router = ForecastRouter(registry_dir, n_workers=workers,
                                worker_config=worker_config).start()
        address = router.address
        rng = np.random.default_rng(3)
        windows = rng.uniform(
            -1.0, 1.0, size=(clients * requests_per_client, 8, 5))

        def run():
            run_router_loadgen(address, windows, clients=clients,
                               requests_per_client=requests_per_client)
        return run

    return Benchmark(
        name=f"serve_router_throughput_w{workers}",
        make=make,
        metadata={"workers": workers, "clients": clients,
                  "requests_per_client": requests_per_client,
                  "max_batch": 1, "cache": "off",
                  "pace_seconds": _ROUTER_PACE_SECONDS,
                  "measures": "closed-loop load through the sharded "
                              "socket router against paced engine "
                              "workers (framing, consistent-hash "
                              "dispatch, multi-process overlap)"})


def _pipeline_cycle_benchmark() -> Benchmark:
    """One full continuous-learning cycle — ingest a weekly batch, fold
    it into the incremental POD basis, retrain the emulator and run the
    promotion gate — the end-to-end cost of `repro pipeline run` per
    retraining batch."""
    batch_weeks = 6

    def make():
        import tempfile
        from pathlib import Path

        from repro.pipeline import (
            ContinuousPipeline,
            FeedConfig,
            PipelineConfig,
        )
        from repro.serve import ModelRegistry
        tmpdir = tempfile.mkdtemp(prefix="repro-bench-pipeline-")
        feed = FeedConfig(degrees=20.0, seed=0, batch_weeks=batch_weeks)
        config = PipelineConfig(n_modes=3, pod_rank=6, window=4,
                                retrain_every=1, train_weeks=36,
                                val_weeks=12, epochs=1, batch_size=32,
                                lstm_units=8)
        service = ContinuousPipeline(
            Path(tmpdir) / "state", ModelRegistry(Path(tmpdir) / "reg"),
            feed, config)
        # Pre-ingest past train+val depth so every timed cycle retrains
        # (the feed is unbounded; repetitions keep advancing the stream).
        while (service.state.snapshots_ingested
               < config.train_weeks + config.val_weeks):
            service.run(max_batches=1)

        def run():
            service.run(max_batches=1)
        return run

    return Benchmark(
        name="pipeline_cycle",
        make=make,
        metadata={"degrees": 20.0, "batch_weeks": batch_weeks,
                  "train_weeks": 36, "val_weeks": 12, "epochs": 1,
                  "measures": "one continuous-learning batch: incremental "
                              "POD fold, rolling emulator retrain, "
                              "validation-gated promotion and the atomic "
                              "state save"})


def default_suite(quick: bool = True, *,
                  max_workers: int = 4) -> list[Benchmark]:
    """The BENCH_core.json suite (23 benchmarks quick, 26 full).

    ``max_workers`` caps the pool sizes of the serial-vs-pool throughput
    benchmarks (``repro bench --workers``); 0 drops them entirely.
    """
    points = _QUICK_CELL_POINTS if quick else _FULL_CELL_POINTS
    suite = [_cell_benchmark(*p) for p in points]
    suite.extend(_cell_benchmark(*p, fused=True)
                 for p in _FUSED_CELL_POINTS)
    suite.append(_trainer_epoch_benchmark(quick))
    suite.append(_pod_basis_benchmark(quick))
    suite.append(_random_search_benchmark())
    suite.append(_nas_benchmark_campaign_benchmark())
    suite.append(_hyperband_campaign_benchmark())
    suite.append(_checkpoint_roundtrip_benchmark())
    if max_workers > 0:
        suite.append(_parallel_search_benchmark(None, quick))
        suite.extend(_parallel_search_benchmark(w, quick)
                     for w in _PARALLEL_WORKER_COUNTS if w <= max_workers)
    suite.append(_serve_latency_benchmark(1))
    suite.append(_serve_latency_benchmark(8))
    suite.append(_serve_throughput_benchmark())
    suite.append(_serve_router_benchmark(1))
    suite.append(_serve_router_benchmark(4))
    suite.append(_pipeline_cycle_benchmark())
    return suite
