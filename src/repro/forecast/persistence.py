"""Emulator persistence: one ``.npz`` holding POD basis, scaler state and
the trained network (structure + weights).

A saved emulator forecasts identically after a round trip — the archive
carries everything ``PODLSTMEmulator`` needs at inference time (training
state such as the epoch history is not persisted).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.forecast.pipeline import PODCoefficientPipeline
from repro.forecast.pod_lstm import PODLSTMEmulator
from repro.forecast.scaling import MinMaxScaler, StandardScaler
from repro.nn.serialization import layer_config
from repro.pod.basis import PODBasis
from repro.pod.snapshots import SnapshotStats

__all__ = ["save_emulator", "load_emulator"]

_SCALERS = {"MinMaxScaler": MinMaxScaler, "StandardScaler": StandardScaler}


def _scaler_state(scaler) -> tuple[dict, dict[str, np.ndarray]]:
    if isinstance(scaler, MinMaxScaler):
        if scaler.center_ is None:
            raise ValueError("cannot save an unfitted emulator")
        return ({"class": "MinMaxScaler", "limit": scaler.limit},
                {"scaler_center": scaler.center_,
                 "scaler_halfrange": scaler.halfrange_})
    if isinstance(scaler, StandardScaler):
        if scaler.mean_ is None:
            raise ValueError("cannot save an unfitted emulator")
        return ({"class": "StandardScaler"},
                {"scaler_mean": scaler.mean_,
                 "scaler_scale": scaler.scale_})
    raise TypeError(f"cannot serialize scaler {type(scaler).__name__}")


def _restore_scaler(header: dict, archive) -> MinMaxScaler | StandardScaler:
    cls_name = header["class"]
    if cls_name == "MinMaxScaler":
        scaler = MinMaxScaler(limit=header["limit"])
        scaler.center_ = archive["scaler_center"]
        scaler.halfrange_ = archive["scaler_halfrange"]
        return scaler
    if cls_name == "StandardScaler":
        scaler = StandardScaler()
        scaler.mean_ = archive["scaler_mean"]
        scaler.scale_ = archive["scaler_scale"]
        return scaler
    raise ValueError(f"unknown scaler class {cls_name!r}")


def save_emulator(emulator: PODLSTMEmulator, path) -> None:
    """Persist a fitted emulator to ``path`` (.npz)."""
    network = emulator.network
    basis = emulator.pipeline.basis
    if network is None or basis is None:
        raise ValueError("cannot save an unfitted emulator")
    nodes = []
    for name in network.topological_order:
        spec = network._specs[name]
        nodes.append({"name": name, "class": type(spec.layer).__name__,
                      "config": layer_config(spec.layer),
                      "inputs": list(spec.inputs)})
    scaler_header, scaler_arrays = _scaler_state(emulator.pipeline.scaler)
    header = {"format": "repro-emulator-v1",
              "n_modes": emulator.pipeline.n_modes,
              "window": emulator.pipeline.window,
              "scaler": scaler_header,
              "network": {"input_dim": network.input_dim,
                          "output": network.output_name,
                          "nodes": nodes}}
    arrays = {"basis_modes": basis.modes,
              "basis_energies": basis.energies,
              "basis_mean": basis.stats.mean,
              **scaler_arrays}
    arrays.update({f"w{i}": w for i, w in enumerate(network.get_weights())})
    np.savez(Path(path), __spec__=np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8), **arrays)


def load_emulator(path) -> PODLSTMEmulator:
    """Rebuild an emulator saved by :func:`save_emulator` (forecast-ready;
    no training history)."""
    from repro.nn.serialization import _LAYER_CLASSES
    from repro.nn.model import Network

    with np.load(Path(path)) as archive:
        header = json.loads(bytes(archive["__spec__"].tobytes()).decode("utf-8"))
        if header.get("format") != "repro-emulator-v1":
            raise ValueError(f"{path}: not a repro emulator archive")
        basis = PODBasis(modes=archive["basis_modes"],
                         energies=archive["basis_energies"],
                         stats=SnapshotStats(mean=archive["basis_mean"]))
        scaler = _restore_scaler(header["scaler"], archive)
        net_header = header["network"]
        n_weights = sum(1 for f in archive.files if f.startswith("w")
                        and f[1:].isdigit())
        weights = [archive[f"w{i}"] for i in range(n_weights)]

    network = Network(input_dim=int(net_header["input_dim"]), rng=0)
    for node in net_header["nodes"]:
        cls = _LAYER_CLASSES[node["class"]]
        network.add_node(node["name"], cls(**node["config"]),
                         node["inputs"])
    network.set_output(net_header["output"])
    network.set_weights(weights)

    emulator = PODLSTMEmulator(n_modes=header["n_modes"],
                               window=header["window"])
    emulator.pipeline = PODCoefficientPipeline(
        n_modes=header["n_modes"], window=header["window"], scaler=scaler)
    emulator.pipeline.basis = basis
    emulator.network = network
    return emulator
