"""Emulator persistence: one ``.npz`` holding POD basis, scaler state and
the trained network (structure + weights).

A saved emulator forecasts identically after a round trip — the archive
carries everything ``PODLSTMEmulator`` needs at inference time (training
state such as the epoch history is not persisted).

This is the plain single-file checkpoint; the *serving* artifact with a
schema version, metadata and registry integration is
:mod:`repro.serve.bundle`. Both delegate to the same state capture
(:meth:`PODCoefficientPipeline.fitted_state`,
:func:`~repro.nn.serialization.network_spec`), so the formats differ
only in envelope, never in fidelity.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.forecast.pipeline import PODCoefficientPipeline
from repro.forecast.pod_lstm import PODLSTMEmulator
from repro.nn.serialization import network_from_spec, network_spec

__all__ = ["save_emulator", "load_emulator"]

_FORMAT = "repro-emulator-v1"

#: fitted_state() array name -> legacy archive name (scaler arrays match).
_BASIS_KEYS = {"pod_modes": "basis_modes", "pod_energies": "basis_energies",
               "pod_mean": "basis_mean"}


def save_emulator(emulator: PODLSTMEmulator, path) -> None:
    """Persist a fitted emulator to ``path`` (.npz)."""
    network = emulator.network
    if network is None:
        raise ValueError("cannot save an unfitted emulator")
    try:
        config, state = emulator.pipeline.fitted_state()
    except RuntimeError:
        raise ValueError("cannot save an unfitted emulator") from None
    header = {"format": _FORMAT,
              "n_modes": config["n_modes"],
              "window": config["window"],
              "scaler": config["scaler"],
              "network": network_spec(network)}
    arrays = {_BASIS_KEYS.get(name, name): value
              for name, value in state.items()}
    arrays.update({f"w{i}": w for i, w in enumerate(network.get_weights())})
    np.savez(Path(path), __spec__=np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8), **arrays)


def load_emulator(path) -> PODLSTMEmulator:
    """Rebuild an emulator saved by :func:`save_emulator` (forecast-ready;
    no training history)."""
    with np.load(Path(path)) as archive:
        header = json.loads(
            bytes(archive["__spec__"].tobytes()).decode("utf-8"))
        if header.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a repro emulator archive")
        state = {new: archive[old] for new, old in _BASIS_KEYS.items()}
        state.update({name: archive[name] for name in archive.files
                      if name.startswith("scaler_")})
        pipeline = PODCoefficientPipeline.from_fitted_state(
            {"n_modes": header["n_modes"], "window": header["window"],
             "scaler": header["scaler"]}, state)
        n_weights = sum(1 for f in archive.files
                        if f.startswith("w") and f[1:].isdigit())
        weights = [archive[f"w{i}"] for i in range(n_weights)]
    network = network_from_spec(header["network"], weights,
                                source=f"emulator archive {path}")
    return PODLSTMEmulator.from_artifacts(pipeline, network)
