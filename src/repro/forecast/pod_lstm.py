"""The POD-LSTM emulator (paper Fig. 1), end to end.

Workflow::

    emulator = PODLSTMEmulator(n_modes=5, window=8)
    history = emulator.fit(train_snapshots, network=my_network, rng=0)
    r2 = emulator.score(test_snapshots)              # Table II metric
    fields = emulator.forecast_fields(test_snapshots, horizon=1)

Forecasting is **non-autoregressive** (paper Sec. II-A): every forecast
window is conditioned on *true* past observations; model outputs are never
fed back in.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.manual_lstm import build_manual_lstm
from repro.data.windowing import train_validation_split
from repro.forecast.pipeline import PODCoefficientPipeline
from repro.nn.metrics import r2_score
from repro.nn.model import Network
from repro.nn.training import History, Trainer
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["PODLSTMEmulator"]


class PODLSTMEmulator:
    """Data-driven geophysical emulator: POD compression + stacked LSTM.

    Parameters
    ----------
    n_modes / window:
        Compression and forecast-task geometry (paper: 5 / 8).
    trainer:
        Training protocol; defaults to the paper's post-training settings
        (batch 64, lr 1e-3, Adam) with 100 epochs.
    train_fraction:
        Random train/validation split of windowed examples (paper: 0.8).
    """

    def __init__(self, n_modes: int = 5, window: int = 8, *,
                 trainer: Trainer | None = None,
                 train_fraction: float = 0.8) -> None:
        self.pipeline = PODCoefficientPipeline(n_modes=n_modes, window=window)
        self.trainer = trainer or Trainer(epochs=100, batch_size=64,
                                          learning_rate=0.001)
        self.train_fraction = float(train_fraction)
        self.network: Network | None = None
        self.history: History | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, snapshots: np.ndarray, *, network: Network | None = None,
            rng=None, basis=None) -> History:
        """Fit POD + scaler on ``(N_h, N_s)`` training snapshots and train
        the forecast network on windowed coefficients.

        ``network`` defaults to a single-layer LSTM(80) stack; pass a NAS
        product (``build_network(space, best_arch)``) for the paper's
        NAS-POD-LSTM. ``basis`` substitutes an externally-computed POD
        basis (e.g. a streaming :class:`~repro.pod.IncrementalPOD`
        snapshot) for the batch POD of ``snapshots`` — the continuous
        pipeline (:mod:`repro.pipeline`) retrains this way.
        """
        gen = as_generator(rng)
        self.pipeline.fit(snapshots, basis=basis)
        examples = self.pipeline.windows_from_snapshots(snapshots)
        train, val = train_validation_split(
            examples, train_fraction=self.train_fraction, rng=gen)
        if network is None:
            network = build_manual_lstm(
                80, 1, input_dim=self.pipeline.n_modes,
                output_dim=self.pipeline.n_modes, rng=gen)
        expected = self.pipeline.n_modes
        if network.input_dim != expected:
            raise ValueError(
                f"network input_dim {network.input_dim} != n_modes {expected}")
        self.network = network
        self.history = self.trainer.fit(network, train.inputs, train.outputs,
                                        val.inputs, val.outputs, rng=gen)
        return self.history

    @classmethod
    def from_artifacts(cls, pipeline: PODCoefficientPipeline,
                       network: Network, *,
                       trainer: Trainer | None = None,
                       train_fraction: float = 0.8) -> "PODLSTMEmulator":
        """Assemble a ready-to-forecast emulator from restored parts.

        The deserialization entry point of :mod:`repro.serve.bundle`:
        ``pipeline`` must already be fitted and ``network`` trained. The
        result forecasts and scores exactly like the emulator the parts
        came from; ``history`` is ``None`` (training curves are not part
        of a bundle).
        """
        pipeline._require_fit()
        if network.input_dim != pipeline.n_modes:
            raise ValueError(
                f"network input_dim {network.input_dim} != n_modes "
                f"{pipeline.n_modes}")
        emulator = cls(n_modes=pipeline.n_modes, window=pipeline.window,
                       trainer=trainer, train_fraction=train_fraction)
        emulator.pipeline = pipeline
        emulator.network = network
        return emulator

    def _require_fit(self) -> Network:
        if self.network is None:
            raise RuntimeError("emulator used before fit")
        return self.network

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------
    def predict_windows(self, inputs: np.ndarray) -> np.ndarray:
        """Scaled-coefficient input windows ``(n, K, N_r)`` -> predicted
        output windows (scaled)."""
        net = self._require_fit()
        return net.predict(np.asarray(inputs, dtype=np.float64),
                           batch_size=256)

    def score(self, snapshots: np.ndarray) -> float:
        """Windowed forecast R^2 (scaled coefficient space) over a raw
        snapshot series — the Table II metric."""
        examples = self.pipeline.windows_from_snapshots(snapshots)
        preds = self.predict_windows(examples.inputs)
        return r2_score(examples.outputs, preds)

    def forecast_coefficient_series(self, snapshots: np.ndarray,
                                    horizon: int = 1
                                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Lead-``horizon`` coefficient forecasts along a series.

        For every window start ``s`` the model forecasts times
        ``s+K .. s+2K-1``; the lead-``h`` forecast of time ``t`` is output
        position ``h-1`` of the window starting at ``t-K-h+1``.

        Returns ``(time_indices, predicted, actual)`` where indices are
        relative to the first snapshot of ``snapshots`` and coefficient
        matrices are **unscaled**, shape ``(n_modes, n_windows)``.
        """
        horizon = check_positive_int(horizon, name="horizon")
        k = self.pipeline.window
        if horizon > k:
            raise ValueError(f"horizon {horizon} exceeds window {k}")
        scaled = self.pipeline.transform(snapshots)
        examples = self.pipeline.windows(scaled)
        preds = self.predict_windows(examples.inputs)
        n = examples.n_examples
        times = np.arange(n) + k + (horizon - 1)
        pred_scaled = preds[:, horizon - 1, :].T       # (N_r, n)
        actual_scaled = examples.outputs[:, horizon - 1, :].T
        return (times, self.pipeline.inverse(pred_scaled),
                self.pipeline.inverse(actual_scaled))

    def forecast_fields(self, snapshots: np.ndarray, horizon: int = 1
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Lead-``horizon`` physical-field forecasts along a series.

        Returns ``(time_indices, fields)`` with ``fields`` of shape
        ``(N_h, n_windows)`` — reconstructed through the POD basis with
        the mean state restored.
        """
        times, pred, _ = self.forecast_coefficient_series(snapshots, horizon)
        from repro.pod import reconstruct  # local import: avoids cycle
        return times, reconstruct(self.pipeline.basis, pred)

    @property
    def validation_r2(self) -> float:
        """Final validation R^2 of the fitted network (paper: 0.985 after
        post-training the best AE architecture)."""
        if self.history is None:
            raise RuntimeError("emulator used before fit")
        return self.history.final_val_r2
