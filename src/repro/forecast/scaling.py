"""Per-mode coefficient standardization.

POD coefficient magnitudes span orders of magnitude across modes (the
leading seasonal mode dwarfs the stochastic tail); standardizing each mode
before training keeps the MSE loss — and the R^2 metric — from being
dominated by mode 1 alone, matching standard POD-LSTM practice.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Row-wise (per-mode) zero-mean unit-variance scaling of a
    ``(n_modes, n_time)`` coefficient matrix."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, coefficients: np.ndarray) -> "StandardScaler":
        coeff = check_matrix(coefficients, name="coefficients")
        self.mean_ = coeff.mean(axis=1)
        std = coeff.std(axis=1)
        # Constant modes scale by 1 (they transform to exactly zero).
        self.scale_ = np.where(std > 0.0, std, 1.0)
        return self

    def _check(self, coefficients: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler used before fit")
        coeff = check_matrix(coefficients, name="coefficients")
        if coeff.shape[0] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} modes, got {coeff.shape[0]}")
        return coeff

    def transform(self, coefficients: np.ndarray) -> np.ndarray:
        coeff = self._check(coefficients)
        return (coeff - self.mean_[:, None]) / self.scale_[:, None]

    def inverse_transform(self, scaled: np.ndarray) -> np.ndarray:
        coeff = self._check(scaled)
        return coeff * self.scale_[:, None] + self.mean_[:, None]


class MinMaxScaler:
    """Row-wise (per-mode) min-max scaling to ``[-limit, limit]``.

    The forecast head is an LSTM whose outputs are tanh-bounded to
    (-1, 1); min-max scaling with ``limit < 1`` keeps every training
    target representable (a standardized seasonal mode would exceed the
    head's reachable range). Out-of-distribution test excursions saturate
    gracefully instead of exploding — the same behaviour the paper's
    Keras LSTMs exhibit on the warming test period.
    """

    def __init__(self, limit: float = 0.85) -> None:
        if not 0.0 < limit <= 1.0:
            raise ValueError(f"limit must be in (0, 1], got {limit}")
        self.limit = float(limit)
        self.center_: np.ndarray | None = None
        self.halfrange_: np.ndarray | None = None

    def fit(self, coefficients: np.ndarray) -> "MinMaxScaler":
        coeff = check_matrix(coefficients, name="coefficients")
        lo = coeff.min(axis=1)
        hi = coeff.max(axis=1)
        self.center_ = 0.5 * (lo + hi)
        half = 0.5 * (hi - lo)
        self.halfrange_ = np.where(half > 0.0, half, 1.0) / self.limit
        return self

    def _check(self, coefficients: np.ndarray) -> np.ndarray:
        if self.center_ is None:
            raise RuntimeError("scaler used before fit")
        coeff = check_matrix(coefficients, name="coefficients")
        if coeff.shape[0] != self.center_.shape[0]:
            raise ValueError(
                f"expected {self.center_.shape[0]} modes, got {coeff.shape[0]}")
        return coeff

    def transform(self, coefficients: np.ndarray) -> np.ndarray:
        coeff = self._check(coefficients)
        return (coeff - self.center_[:, None]) / self.halfrange_[:, None]

    def inverse_transform(self, scaled: np.ndarray) -> np.ndarray:
        coeff = self._check(scaled)
        return coeff * self.halfrange_[:, None] + self.center_[:, None]
