"""Post-training: retrain the best-found architecture from scratch.

Paper Sec. IV-B: searches train candidates for only 20 epochs; the best
architecture is then retrained from scratch for 100 epochs before the
science assessments ("posttraining", distinct from the augmentation phase
of other NAS algorithms — no layers are added).
"""

from __future__ import annotations

import numpy as np

from repro.forecast.pod_lstm import PODLSTMEmulator
from repro.nas.space.builder import build_network
from repro.nas.space.search_space import Architecture, StackedLSTMSpace
from repro.nn.training import Trainer
from repro.utils.rng import as_generator

__all__ = ["posttrain_architecture"]


def posttrain_architecture(space: StackedLSTMSpace, arch: Architecture,
                           train_snapshots: np.ndarray, *,
                           epochs: int = 100, rng=None) -> PODLSTMEmulator:
    """Build ``arch`` fresh and train it for ``epochs`` epochs inside a
    full POD-LSTM emulator fit on ``train_snapshots``.

    Returns the fitted emulator; its ``history`` carries the convergence
    curve of paper Fig. 5 (top row) and ``validation_r2`` the headline
    0.985-class number.
    """
    gen = as_generator(rng)
    emulator = PODLSTMEmulator(
        n_modes=space.input_dim, window=8,
        trainer=Trainer(epochs=epochs, batch_size=64, learning_rate=0.002))
    network = build_network(space, arch, rng=gen)
    emulator.fit(train_snapshots, network=network, rng=gen)
    return emulator
