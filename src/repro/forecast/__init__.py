"""POD-LSTM emulation — the paper's primary contribution as a public API.

``PODLSTMEmulator`` composes the pieces end-to-end: POD compression of
snapshots, per-mode coefficient standardization, windowed sequence-to-
sequence training of a (searched or manual) stacked LSTM, non-
autoregressive forecasting, and linear reconstruction back to physical
fields.
"""

from repro.forecast.scaling import StandardScaler
from repro.forecast.pipeline import PODCoefficientPipeline
from repro.forecast.pod_lstm import PODLSTMEmulator
from repro.forecast.posttraining import posttrain_architecture
from repro.forecast.persistence import load_emulator, save_emulator

__all__ = [
    "StandardScaler",
    "PODCoefficientPipeline",
    "PODLSTMEmulator",
    "posttrain_architecture",
    "save_emulator",
    "load_emulator",
]
