"""Shared data pipeline: snapshots <-> scaled POD coefficients <-> windows.

One pipeline instance is fit on the training snapshot matrix and then
reused verbatim by every model — the NAS POD-LSTM, the manual LSTMs and
the classical NARX baselines — so Table II comparisons share identical
compression, scaling and windowing (as the paper's comparisons do).
"""

from __future__ import annotations

import numpy as np

from repro.data.windowing import WindowedExamples, make_windowed_examples
from repro.pod import PODBasis, fit_pod, project_coefficients, reconstruct
from repro.pod.snapshots import SnapshotStats
from repro.forecast.scaling import MinMaxScaler, StandardScaler
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["PODCoefficientPipeline"]


def _scaler_state(scaler) -> tuple[dict, dict[str, np.ndarray]]:
    """(JSON config, named arrays) of a fitted scaler."""
    if isinstance(scaler, MinMaxScaler):
        if scaler.center_ is None:
            raise RuntimeError("scaler captured before fit")
        return ({"class": "MinMaxScaler", "limit": scaler.limit},
                {"scaler_center": scaler.center_,
                 "scaler_halfrange": scaler.halfrange_})
    if isinstance(scaler, StandardScaler):
        if scaler.mean_ is None:
            raise RuntimeError("scaler captured before fit")
        return ({"class": "StandardScaler"},
                {"scaler_mean": scaler.mean_, "scaler_scale": scaler.scale_})
    raise TypeError(f"cannot capture scaler type {type(scaler).__name__}; "
                    "expected MinMaxScaler or StandardScaler")


def _scaler_from_state(config: dict, arrays) -> object:
    """Rebuild a fitted scaler from :func:`_scaler_state` output."""
    kind = config.get("class")
    if kind == "MinMaxScaler":
        scaler = MinMaxScaler(limit=float(config["limit"]))
        scaler.center_ = np.asarray(arrays["scaler_center"],
                                    dtype=np.float64).copy()
        scaler.halfrange_ = np.asarray(arrays["scaler_halfrange"],
                                       dtype=np.float64).copy()
        return scaler
    if kind == "StandardScaler":
        scaler = StandardScaler()
        scaler.mean_ = np.asarray(arrays["scaler_mean"],
                                  dtype=np.float64).copy()
        scaler.scale_ = np.asarray(arrays["scaler_scale"],
                                   dtype=np.float64).copy()
        return scaler
    raise ValueError(f"unknown scaler class {kind!r}")


class PODCoefficientPipeline:
    """POD + standardization + windowing, fit on training snapshots.

    Parameters
    ----------
    n_modes:
        N_r — retained POD modes (paper: 5).
    window:
        K — input length and forecast length (paper: 8).
    """

    def __init__(self, n_modes: int = 5, window: int = 8,
                 scaler=None) -> None:
        self.n_modes = check_positive_int(n_modes, name="n_modes")
        self.window = check_positive_int(window, name="window")
        self.basis: PODBasis | None = None
        # Min-max by default: the LSTM forecast head is tanh-bounded, so
        # training targets must live inside (-1, 1) (see scaling module).
        self.scaler = scaler if scaler is not None else MinMaxScaler()

    # ------------------------------------------------------------------
    def fit(self, snapshots: np.ndarray, *,
            basis: PODBasis | None = None) -> "PODCoefficientPipeline":
        """Fit POD basis and coefficient scaler on ``(N_h, N_s)`` training
        snapshots.

        ``basis`` substitutes an externally-computed basis (e.g. a
        :class:`~repro.pod.IncrementalPOD` snapshot of a streaming
        archive) for the batch POD of ``snapshots``; the coefficient
        scaler is still fit on ``snapshots`` projected through it.
        """
        snaps = check_matrix(snapshots, name="snapshots")
        if basis is None:
            self.basis = fit_pod(snaps, self.n_modes)
        else:
            if basis.n_modes != self.n_modes:
                raise ValueError(
                    f"supplied basis has {basis.n_modes} modes, "
                    f"pipeline expects {self.n_modes}")
            self.basis = basis
        coeff = project_coefficients(self.basis, snaps)
        self.scaler.fit(coeff)
        return self

    def _require_fit(self) -> PODBasis:
        if self.basis is None:
            raise RuntimeError("pipeline used before fit")
        return self.basis

    # ------------------------------------------------------------------
    def transform(self, snapshots: np.ndarray) -> np.ndarray:
        """Raw snapshots -> scaled coefficients ``(n_modes, n)``."""
        basis = self._require_fit()
        return self.scaler.transform(project_coefficients(basis, snapshots))

    def coefficients(self, snapshots: np.ndarray) -> np.ndarray:
        """Raw snapshots -> unscaled coefficients (paper Fig. 5 plots)."""
        return project_coefficients(self._require_fit(), snapshots)

    def inverse(self, scaled: np.ndarray) -> np.ndarray:
        """Scaled coefficients -> unscaled coefficients."""
        self._require_fit()
        return self.scaler.inverse_transform(scaled)

    def reconstruct(self, scaled: np.ndarray) -> np.ndarray:
        """Scaled coefficients -> physical snapshot columns (with mean)."""
        basis = self._require_fit()
        return reconstruct(basis, self.scaler.inverse_transform(scaled))

    # ------------------------------------------------------------------
    def windows(self, scaled_coefficients: np.ndarray, *,
                stride: int = 1) -> WindowedExamples:
        """Window a scaled ``(n_modes, n_time)`` series into K-in/K-out
        sequence-to-sequence examples."""
        return make_windowed_examples(scaled_coefficients, self.window,
                                      stride=stride)

    def windows_from_snapshots(self, snapshots: np.ndarray, *,
                               stride: int = 1) -> WindowedExamples:
        """Convenience: snapshots -> scaled coefficients -> windows."""
        return self.windows(self.transform(snapshots), stride=stride)

    @property
    def energy_fraction(self) -> float:
        """Variance captured by the retained modes (paper: ~0.92)."""
        return self._require_fit().energy_fraction()

    # ------------------------------------------------------------------
    # Fitted-state capture (the substrate of repro.serve bundles)
    # ------------------------------------------------------------------
    def fitted_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The complete fitted state as ``(config, arrays)``.

        ``config`` is JSON-compatible geometry plus the scaler class and
        its scalar parameters; ``arrays`` holds the POD basis (modes,
        energies, removed mean) and the scaler's fitted vectors. Together
        they reconstruct the pipeline **exactly** — every transform /
        inverse / window of the restored pipeline is bitwise identical
        (round-trip tested in tests/test_forecast_pipeline.py).
        """
        basis = self._require_fit()
        scaler_config, scaler_arrays = _scaler_state(self.scaler)
        config = {"n_modes": self.n_modes, "window": self.window,
                  "scaler": scaler_config}
        arrays = {"pod_modes": basis.modes, "pod_energies": basis.energies,
                  "pod_mean": basis.stats.mean, **scaler_arrays}
        return config, arrays

    @classmethod
    def from_fitted_state(cls, config: dict,
                          arrays) -> "PODCoefficientPipeline":
        """Rebuild a fitted pipeline from :meth:`fitted_state` output.

        ``arrays`` is any mapping of the array names to arrays (a dict or
        an open ``npz`` archive).
        """
        pipeline = cls(n_modes=int(config["n_modes"]),
                       window=int(config["window"]),
                       scaler=_scaler_from_state(config["scaler"], arrays))
        modes = np.asarray(arrays["pod_modes"], dtype=np.float64).copy()
        energies = np.asarray(arrays["pod_energies"],
                              dtype=np.float64).copy()
        mean = np.asarray(arrays["pod_mean"], dtype=np.float64).copy()
        pipeline.basis = PODBasis(modes=modes, energies=energies,
                                  stats=SnapshotStats(mean=mean))
        return pipeline
