"""Proper orthogonal decomposition (method of snapshots).

Implements Sec. II-B of the paper: snapshot matrix assembly with mean
removal (Eq. 1-2), the correlation-matrix eigenproblem (Eq. 3-4), reduced
basis truncation (Eq. 5), coefficient extraction (Eq. 6), reconstruction
(Eq. 7), and the projection-error identity (Eq. 8).
"""

from repro.pod.snapshots import SnapshotStats, center_snapshots
from repro.pod.basis import PODBasis, fit_pod, pod_method_of_snapshots, pod_svd
from repro.pod.incremental import IncrementalPOD
from repro.pod.projection import (
    cumulative_energy,
    modes_for_energy,
    project_coefficients,
    projection_error,
    reconstruct,
)

__all__ = [
    "SnapshotStats",
    "center_snapshots",
    "PODBasis",
    "IncrementalPOD",
    "fit_pod",
    "pod_method_of_snapshots",
    "pod_svd",
    "cumulative_energy",
    "modes_for_energy",
    "project_coefficients",
    "projection_error",
    "reconstruct",
]
