"""POD basis construction (paper Eq. 3-5).

Two algebraically equivalent routes are provided:

* ``pod_method_of_snapshots`` — eigendecomposition of the small
  ``N_s x N_s`` correlation matrix ``C = S^T S`` (the paper's route;
  efficient because ``N_s << N_h`` for geophysical archives);
* ``pod_svd`` — thin SVD of ``S`` (numerically preferable for
  ill-conditioned snapshot sets; used to cross-validate the first).

Notation: the eigenvalues of ``C`` equal the squared singular values of
``S``; the mode-``i`` "energy" is that eigenvalue. The paper's Eq. 8
writes the projection-error identity with ``lambda_i^2``; consistency with
``C = S^T S`` (its own Eq. 3) requires ``lambda_i`` to the first power,
which is what we implement and verify by property test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg as sla

from repro.pod.snapshots import SnapshotStats, center_snapshots
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["PODBasis", "pod_method_of_snapshots", "pod_svd", "fit_pod"]

#: Relative eigenvalue floor below which trailing modes are treated as
#: numerical noise and excluded from the basis.
_EIG_RTOL = 1e-12

#: Relative eigenvalue spread beyond which the method-of-snapshots modes
#: are re-orthonormalized. Forming ``C = S^T S`` squares the conditioning,
#: so an eigenvector with ``lambda_i <~ 1e-10 * lambda_max`` carries
#: ``O(eps * lambda_max / lambda_i)`` direction error — enough to break
#: column orthonormality past 1e-6 after the ``1/sqrt(lambda_i)`` scaling.
_POLISH_RTOL = 1e-8


@dataclass(frozen=True)
class PODBasis:
    """A truncated orthonormal POD basis.

    Attributes
    ----------
    modes:
        ``psi`` of shape ``(N_h, N_r)``; columns are orthonormal.
    energies:
        Full eigenvalue spectrum of ``C = S^T S`` (descending), length
        ``rank`` — kept whole so projection-error accounting (Eq. 8) can be
        evaluated for any truncation.
    stats:
        The removed temporal mean.
    """

    modes: np.ndarray
    energies: np.ndarray
    stats: SnapshotStats

    def __post_init__(self) -> None:
        if self.modes.ndim != 2:
            raise ValueError(f"modes must be 2-D, got {self.modes.ndim}-D")
        if self.energies.ndim != 1:
            raise ValueError("energies must be 1-D")
        if self.modes.shape[1] > self.energies.shape[0]:
            raise ValueError(
                f"{self.modes.shape[1]} modes but only "
                f"{self.energies.shape[0]} energies")

    @property
    def n_modes(self) -> int:
        """``N_r`` — the retained basis size."""
        return self.modes.shape[1]

    @property
    def state_dim(self) -> int:
        """``N_h`` — the flattened snapshot dimension."""
        return self.modes.shape[0]

    def truncate(self, n_modes: int) -> "PODBasis":
        """A copy retaining only the first ``n_modes`` columns."""
        n_modes = check_positive_int(n_modes, name="n_modes")
        if n_modes > self.n_modes:
            raise ValueError(
                f"cannot truncate to {n_modes} modes, basis has {self.n_modes}")
        return PODBasis(self.modes[:, :n_modes], self.energies, self.stats)

    def energy_fraction(self, n_modes: int | None = None) -> float:
        """Fraction of total fluctuation energy captured by the leading
        ``n_modes`` (default: all retained modes)."""
        k = self.n_modes if n_modes is None else n_modes
        total = float(self.energies.sum())
        if total <= 0.0:
            return 1.0
        return float(self.energies[:k].sum()) / total


def _truncation_rank(energies: np.ndarray, n_modes: int | None) -> int:
    """Clip the requested mode count to the numerical rank."""
    floor = energies[0] * _EIG_RTOL if energies.size else 0.0
    rank = int(np.count_nonzero(energies > floor))
    rank = max(rank, 1)
    if n_modes is None:
        return rank
    return min(check_positive_int(n_modes, name="n_modes"), rank)


def pod_method_of_snapshots(snapshots: np.ndarray,
                            n_modes: int | None = None) -> PODBasis:
    """POD via the ``N_s x N_s`` correlation eigenproblem (paper Eq. 3-4).

    Orthonormal modes are obtained as ``psi_i = S w_i / sqrt(lambda_i)``.
    """
    snaps = check_matrix(snapshots, name="snapshots")
    centered, stats = center_snapshots(snaps)
    corr = centered.T @ centered
    # eigh returns ascending order; energies must be descending.
    eigvals, eigvecs = sla.eigh(corr)
    order = np.argsort(eigvals)[::-1]
    energies = np.clip(eigvals[order], 0.0, None)
    eigvecs = eigvecs[:, order]
    n_r = _truncation_rank(energies, n_modes)
    if energies[0] <= 0.0:
        # Constant snapshots: the fluctuation space is trivial; return a
        # canonical unit vector so the basis stays orthonormal.
        modes = np.zeros((centered.shape[0], 1))
        modes[0, 0] = 1.0
        return PODBasis(modes=modes, energies=np.zeros(1), stats=stats)
    scale = 1.0 / np.sqrt(energies[:n_r])
    modes = (centered @ eigvecs[:, :n_r]) * scale[None, :]
    if energies[n_r - 1] < energies[0] * _POLISH_RTOL:
        # A QR polish restores orthonormality to machine precision while
        # preserving the span (R ~ I, so the sign fix keeps each column
        # aligned with its unpolished direction). Well-separated spectra
        # never take this path and stay bitwise unchanged.
        q, r = np.linalg.qr(modes)
        signs = np.where(np.diag(r) >= 0.0, 1.0, -1.0)
        modes = q * signs[None, :]
    return PODBasis(modes=np.ascontiguousarray(modes), energies=energies,
                    stats=stats)


def pod_svd(snapshots: np.ndarray, n_modes: int | None = None) -> PODBasis:
    """POD via thin SVD of the centered snapshot matrix."""
    snaps = check_matrix(snapshots, name="snapshots")
    centered, stats = center_snapshots(snaps)
    u, s, _ = sla.svd(centered, full_matrices=False)
    energies = s ** 2
    n_r = _truncation_rank(energies, n_modes)
    return PODBasis(modes=np.ascontiguousarray(u[:, :n_r]),
                    energies=energies, stats=stats)


def fit_pod(snapshots: np.ndarray, n_modes: int | None = None,
            *, method: str = "snapshots") -> PODBasis:
    """Fit a POD basis with the selected algorithm.

    Parameters
    ----------
    snapshots:
        ``(N_h, N_s)`` snapshot matrix (not yet centered).
    n_modes:
        ``N_r``; ``None`` retains the full numerical rank.
    method:
        ``"snapshots"`` (paper's method of snapshots) or ``"svd"``.
    """
    if method == "snapshots":
        return pod_method_of_snapshots(snapshots, n_modes)
    if method == "svd":
        return pod_svd(snapshots, n_modes)
    raise ValueError(f"unknown POD method {method!r}; "
                     "expected 'snapshots' or 'svd'")
