"""Snapshot matrix preparation (paper Eq. 1-2).

The snapshot matrix collects flattened solution states column-wise; the
temporal mean is removed before the decomposition so the basis captures
fluctuations around the mean state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_matrix

__all__ = ["SnapshotStats", "center_snapshots"]


@dataclass(frozen=True)
class SnapshotStats:
    """Mean state retained for centring/uncentring new snapshots."""

    mean: np.ndarray  # shape (N_h,)

    def center(self, snapshots: np.ndarray) -> np.ndarray:
        """Subtract the stored mean from ``(N_h, n)`` snapshot columns."""
        snaps = check_matrix(snapshots, name="snapshots")
        if snaps.shape[0] != self.mean.shape[0]:
            raise ValueError(
                f"snapshot dimension {snaps.shape[0]} does not match the "
                f"mean dimension {self.mean.shape[0]}")
        return snaps - self.mean[:, None]

    def uncenter(self, snapshots: np.ndarray) -> np.ndarray:
        """Add the stored mean back onto ``(N_h, n)`` snapshot columns."""
        snaps = np.asarray(snapshots, dtype=np.float64)
        if snaps.ndim != 2 or snaps.shape[0] != self.mean.shape[0]:
            raise ValueError(
                f"expected shape ({self.mean.shape[0]}, n), got {snaps.shape}")
        return snaps + self.mean[:, None]


def center_snapshots(snapshots: np.ndarray) -> tuple[np.ndarray, SnapshotStats]:
    """Remove the temporal mean from a snapshot matrix.

    Parameters
    ----------
    snapshots:
        ``S`` of shape ``(N_h, N_s)``, one flattened state per column.

    Returns
    -------
    centered, stats:
        The mean-removed matrix (paper's ``q_hat``) and the mean state for
        later reconstruction.
    """
    snaps = check_matrix(snapshots, name="snapshots")
    mean = snaps.mean(axis=1)
    return snaps - mean[:, None], SnapshotStats(mean=mean)
