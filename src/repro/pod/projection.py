"""Projection, reconstruction and error accounting (paper Eq. 6-8)."""

from __future__ import annotations

import numpy as np

from repro.pod.basis import PODBasis
from repro.utils.validation import check_matrix

__all__ = [
    "project_coefficients",
    "reconstruct",
    "projection_error",
    "cumulative_energy",
    "modes_for_energy",
]


def project_coefficients(basis: PODBasis, snapshots: np.ndarray,
                         *, centered: bool = False) -> np.ndarray:
    """Coefficients ``A = psi^T q_hat`` of shape ``(N_r, n)`` (Eq. 6).

    Parameters
    ----------
    snapshots:
        ``(N_h, n)`` raw snapshots; the basis mean is removed first unless
        ``centered=True``.
    """
    snaps = check_matrix(snapshots, name="snapshots")
    if not centered:
        snaps = basis.stats.center(snaps)
    elif snaps.shape[0] != basis.state_dim:
        raise ValueError(
            f"snapshot dimension {snaps.shape[0]} does not match basis "
            f"dimension {basis.state_dim}")
    return basis.modes.T @ snaps


def reconstruct(basis: PODBasis, coefficients: np.ndarray,
                *, add_mean: bool = True) -> np.ndarray:
    """Approximate snapshots ``psi A (+ mean)`` of shape ``(N_h, n)`` (Eq. 7)."""
    coeff = check_matrix(coefficients, name="coefficients")
    if coeff.shape[0] != basis.n_modes:
        raise ValueError(
            f"coefficient rows {coeff.shape[0]} do not match basis size "
            f"{basis.n_modes}")
    fields = basis.modes @ coeff
    if add_mean:
        fields = basis.stats.uncenter(fields)
    return fields


def projection_error(basis: PODBasis, snapshots: np.ndarray) -> float:
    """Relative L2 projection error of raw ``(N_h, n)`` snapshots.

    ``sum_i ||q_hat_i - q_tilde_i||^2 / sum_i ||q_hat_i||^2``. For the
    snapshots the basis was fit on, this equals the tail-energy ratio
    ``sum_{i>N_r} lambda_i / sum_i lambda_i`` (Eq. 8, with the eigenvalue
    power corrected — see :mod:`repro.pod.basis`).
    """
    snaps = check_matrix(snapshots, name="snapshots")
    centered = basis.stats.center(snaps)
    coeff = basis.modes.T @ centered
    recon = basis.modes @ coeff
    denom = float(np.sum(centered ** 2))
    if denom == 0.0:
        return 0.0
    return float(np.sum((centered - recon) ** 2)) / denom


def cumulative_energy(energies: np.ndarray) -> np.ndarray:
    """Cumulative energy fractions of a descending eigenvalue spectrum."""
    e = np.asarray(energies, dtype=np.float64)
    if e.ndim != 1:
        raise ValueError("energies must be 1-D")
    if np.any(e < 0):
        raise ValueError("energies must be non-negative")
    total = e.sum()
    if total == 0.0:
        return np.ones_like(e)
    return np.cumsum(e) / total


def modes_for_energy(energies: np.ndarray, fraction: float) -> int:
    """Smallest ``N_r`` capturing at least ``fraction`` of the energy.

    The paper fixes ``N_r = 5``, noting it captures ~92 % of the variance;
    this helper inverts that choice for new data sets.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    cum = cumulative_energy(energies)
    idx = int(np.searchsorted(cum, fraction - 1e-12))
    return min(idx + 1, cum.size)
