"""Incremental (streaming) POD.

The paper's future work targets "larger and more finely resolved data
sets"; at full NOAA resolution the snapshot matrix no longer fits in
memory comfortably, so the basis must be built from snapshot *blocks*.
``IncrementalPOD`` maintains a rank-``r`` factorization (and the running
mean, with the standard rank-one mean-shift correction used by
incremental PCA) that converges to the batch POD of all data seen.

Invariants the continuous-learning pipeline (:mod:`repro.pipeline`)
relies on — do not weaken these without updating docs/PIPELINE.md and
``tests/test_pipeline.py``:

* **Updates are order-dependent.** ``partial_fit`` truncates to
  ``n_modes`` after every block, and truncation does not commute with
  concatenation: feeding blocks ``A`` then ``B`` generally yields a
  (slightly) different basis than ``B`` then ``A``, and both differ from
  the batch SVD of ``[A B]`` by the energy truncated in between. A
  resumable consumer must therefore replay the *same block sequence* —
  which the pipeline guarantees by persisting the exact factorization
  (:meth:`state`) at block boundaries and resuming from it, never by
  refolding.
* **State round-trips exactly.** :meth:`state` captures the complete
  factorization as float64 arrays plus scalar counters;
  :meth:`from_state` restores it bitwise, so
  ``restore(state()).partial_fit(block)`` equals
  ``self.partial_fit(block)`` bit for bit (pinned in
  tests/test_pod_incremental.py). This is what makes an interrupted
  pipeline's promotion sequence reproducible.
* **``basis_version`` counts successful updates.** It increments by
  exactly one per ``partial_fit`` and survives the state round-trip —
  downstream artifacts (published bundles, pipeline status reports) cite
  it as the provenance of "which basis trained this model".
* **Forgetting weights the past, never reorders it.** With
  ``forgetting < 1`` each update scales the retained singular values by
  ``sqrt(forgetting)`` and the running-mean weight by ``forgetting``
  before folding the new block, exponentially down-weighting stale
  statistics so the basis tracks drifting archives (the pipeline's
  drift scenarios). ``forgetting=1`` (default) is the exact historical
  behaviour, converging to the batch POD of all data seen.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.pod.basis import PODBasis
from repro.pod.snapshots import SnapshotStats
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["IncrementalPOD"]


class IncrementalPOD:
    """Streaming POD over snapshot blocks.

    Parameters
    ----------
    n_modes:
        Rank retained between updates. Keep a healthy margin above the
        rank you intend to use (truncation between updates loses the
        energy that later blocks might have reinforced).
    forgetting:
        Exponential down-weighting of previously-seen statistics per
        update, in ``(0, 1]``. ``1.0`` (default) weighs all history
        equally; smaller values track drifting archives at the cost of
        no longer converging to the all-data batch POD.
    """

    def __init__(self, n_modes: int, *, forgetting: float = 1.0) -> None:
        self.n_modes = check_positive_int(n_modes, name="n_modes")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError(f"forgetting must be in (0, 1], got {forgetting}")
        self.forgetting = float(forgetting)
        self.n_seen = 0
        self.basis_version = 0
        self._weight = 0.0  # effective (forgetting-discounted) sample mass
        self.mean_: np.ndarray | None = None
        self._modes: np.ndarray | None = None    # (N_h, r) orthonormal
        self._singular: np.ndarray | None = None  # descending

    # ------------------------------------------------------------------
    def partial_fit(self, snapshots: np.ndarray) -> "IncrementalPOD":
        """Fold a ``(N_h, m)`` snapshot block into the factorization."""
        block = check_matrix(snapshots, name="snapshots")
        m = block.shape[1]
        block_mean = block.mean(axis=1)

        if self.n_seen == 0:
            centered = block - block_mean[:, None]
            u, s, _ = sla.svd(centered, full_matrices=False)
            k = min(self.n_modes, s.size)
            self.mean_ = block_mean
            self._modes = np.ascontiguousarray(u[:, :k])
            self._singular = s[:k]
            self.n_seen = m
            self._weight = float(m)
            self.basis_version += 1
            return self

        if block.shape[0] != self.mean_.shape[0]:
            raise ValueError(
                f"snapshot dimension {block.shape[0]} does not match "
                f"{self.mean_.shape[0]}")
        # Exponential forgetting: discount the retained factorization
        # (singular values scale by sqrt(lambda) — they carry the
        # covariance weight quadratically) and the mean's sample mass.
        n = self._weight * self.forgetting
        singular = self._singular if self.forgetting == 1.0 \
            else np.sqrt(self.forgetting) * self._singular
        total = n + m
        # Mean-shift correction column (incremental-PCA identity): the
        # covariance of the union decomposes into both centered parts plus
        # a rank-one term along the mean difference.
        correction = np.sqrt(n * m / total) * (self.mean_ - block_mean)
        augmented = np.concatenate(
            [self._modes * singular[None, :],
             block - block_mean[:, None],
             correction[:, None]], axis=1)
        u, s, _ = sla.svd(augmented, full_matrices=False)
        k = min(self.n_modes, s.size)
        self._modes = np.ascontiguousarray(u[:, :k])
        self._singular = s[:k]
        self.mean_ = (n * self.mean_ + m * block_mean) / total
        self.n_seen += m
        self._weight = total
        self.basis_version += 1
        return self

    # ------------------------------------------------------------------
    def basis(self, n_modes: int | None = None) -> PODBasis:
        """The current basis as a :class:`~repro.pod.basis.PODBasis`."""
        if self._modes is None:
            raise RuntimeError("basis requested before any partial_fit")
        k = self._modes.shape[1] if n_modes is None else \
            check_positive_int(n_modes, name="n_modes")
        if k > self._modes.shape[1]:
            raise ValueError(
                f"only {self._modes.shape[1]} modes retained, asked for {k}")
        return PODBasis(modes=self._modes[:, :k],
                        energies=self._singular ** 2,
                        stats=SnapshotStats(mean=self.mean_.copy()))

    @property
    def energies(self) -> np.ndarray:
        if self._singular is None:
            raise RuntimeError("no data seen yet")
        return self._singular ** 2

    # ------------------------------------------------------------------
    # Exact state capture (the substrate of repro.pipeline durability)
    # ------------------------------------------------------------------
    def state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The complete factorization as ``(config, arrays)``.

        ``config`` is JSON-compatible scalars; ``arrays`` are float64 and
        restore **bitwise** through :meth:`from_state` — a restored
        instance continues the identical update sequence (see the module
        docstring's invariants).
        """
        config = {"n_modes": self.n_modes, "forgetting": self.forgetting,
                  "n_seen": self.n_seen, "weight": self._weight,
                  "basis_version": self.basis_version}
        arrays: dict[str, np.ndarray] = {}
        if self.n_seen:
            arrays = {"pod_mean": self.mean_, "pod_modes": self._modes,
                      "pod_singular": self._singular}
        return config, arrays

    @classmethod
    def from_state(cls, config: dict, arrays) -> "IncrementalPOD":
        """Rebuild an instance from :meth:`state` output (bitwise).

        ``arrays`` is any mapping of the array names to arrays (a dict
        or an open ``npz`` archive).
        """
        pod = cls(int(config["n_modes"]),
                  forgetting=float(config["forgetting"]))
        pod.n_seen = int(config["n_seen"])
        pod._weight = float(config["weight"])
        pod.basis_version = int(config["basis_version"])
        if pod.n_seen:
            pod.mean_ = np.asarray(arrays["pod_mean"],
                                   dtype=np.float64).copy()
            pod._modes = np.ascontiguousarray(
                np.asarray(arrays["pod_modes"], dtype=np.float64))
            pod._singular = np.asarray(arrays["pod_singular"],
                                       dtype=np.float64).copy()
        return pod
