"""Incremental (streaming) POD.

The paper's future work targets "larger and more finely resolved data
sets"; at full NOAA resolution the snapshot matrix no longer fits in
memory comfortably, so the basis must be built from snapshot *blocks*.
``IncrementalPOD`` maintains a rank-``r`` factorization (and the running
mean, with the standard rank-one mean-shift correction used by
incremental PCA) that converges to the batch POD of all data seen.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.pod.basis import PODBasis
from repro.pod.snapshots import SnapshotStats
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["IncrementalPOD"]


class IncrementalPOD:
    """Streaming POD over snapshot blocks.

    Parameters
    ----------
    n_modes:
        Rank retained between updates. Keep a healthy margin above the
        rank you intend to use (truncation between updates loses the
        energy that later blocks might have reinforced).
    """

    def __init__(self, n_modes: int) -> None:
        self.n_modes = check_positive_int(n_modes, name="n_modes")
        self.n_seen = 0
        self.mean_: np.ndarray | None = None
        self._modes: np.ndarray | None = None    # (N_h, r) orthonormal
        self._singular: np.ndarray | None = None  # descending

    # ------------------------------------------------------------------
    def partial_fit(self, snapshots: np.ndarray) -> "IncrementalPOD":
        """Fold a ``(N_h, m)`` snapshot block into the factorization."""
        block = check_matrix(snapshots, name="snapshots")
        m = block.shape[1]
        block_mean = block.mean(axis=1)

        if self.n_seen == 0:
            centered = block - block_mean[:, None]
            u, s, _ = sla.svd(centered, full_matrices=False)
            k = min(self.n_modes, s.size)
            self.mean_ = block_mean
            self._modes = np.ascontiguousarray(u[:, :k])
            self._singular = s[:k]
            self.n_seen = m
            return self

        if block.shape[0] != self.mean_.shape[0]:
            raise ValueError(
                f"snapshot dimension {block.shape[0]} does not match "
                f"{self.mean_.shape[0]}")
        n = self.n_seen
        total = n + m
        # Mean-shift correction column (incremental-PCA identity): the
        # covariance of the union decomposes into both centered parts plus
        # a rank-one term along the mean difference.
        correction = np.sqrt(n * m / total) * (self.mean_ - block_mean)
        augmented = np.concatenate(
            [self._modes * self._singular[None, :],
             block - block_mean[:, None],
             correction[:, None]], axis=1)
        u, s, _ = sla.svd(augmented, full_matrices=False)
        k = min(self.n_modes, s.size)
        self._modes = np.ascontiguousarray(u[:, :k])
        self._singular = s[:k]
        self.mean_ = (n * self.mean_ + m * block_mean) / total
        self.n_seen = total
        return self

    # ------------------------------------------------------------------
    def basis(self, n_modes: int | None = None) -> PODBasis:
        """The current basis as a :class:`~repro.pod.basis.PODBasis`."""
        if self._modes is None:
            raise RuntimeError("basis requested before any partial_fit")
        k = self._modes.shape[1] if n_modes is None else \
            check_positive_int(n_modes, name="n_modes")
        if k > self._modes.shape[1]:
            raise ValueError(
                f"only {self._modes.shape[1]} modes retained, asked for {k}")
        return PODBasis(modes=self._modes[:, :k],
                        energies=self._singular ** 2,
                        stats=SnapshotStats(mean=self.mean_.copy()))

    @property
    def energies(self) -> np.ndarray:
        if self._singular is None:
            raise RuntimeError("no data seen yet")
        return self._singular ** 2
