"""repro — reproduction of "Recurrent Neural Network Architecture Search
for Geophysical Emulation" (Maulik et al., SC 2020).

Top-level convenience exports; see the subpackages for the full API:

* :mod:`repro.data` — synthetic NOAA-OI-SST-shaped archive;
* :mod:`repro.pod` — proper orthogonal decomposition;
* :mod:`repro.nn` — NumPy deep-learning micro-framework;
* :mod:`repro.nas` — stacked-LSTM architecture search (AE / RL / RS);
* :mod:`repro.hpc` — simulated Theta cluster (scaling experiments);
* :mod:`repro.baselines` — classical and manual-LSTM baselines;
* :mod:`repro.comparators` — simulated CESM / HYCOM process models;
* :mod:`repro.forecast` — the POD-LSTM emulator (primary API);
* :mod:`repro.experiments` — drivers for every paper table and figure.
"""

from repro.data import SSTDataset, load_sst_dataset
from repro.forecast import PODCoefficientPipeline, PODLSTMEmulator
from repro.nas import (
    AgingEvolution,
    DistributedRL,
    RandomSearch,
    StackedLSTMSpace,
    SurrogateEvaluator,
    build_network,
)
from repro.pod import fit_pod

__version__ = "1.0.0"

__all__ = [
    "SSTDataset",
    "load_sst_dataset",
    "PODCoefficientPipeline",
    "PODLSTMEmulator",
    "AgingEvolution",
    "DistributedRL",
    "RandomSearch",
    "StackedLSTMSpace",
    "SurrogateEvaluator",
    "build_network",
    "fit_pod",
    "__version__",
]
