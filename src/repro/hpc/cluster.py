"""Cluster execution-overhead model.

On the real machine each evaluation pays launch/reporting overhead around
the training itself (DeepHyper dispatches tasks through a launcher; config
generation, environment setup and result collection leave a node briefly
idle between trainings). This is what keeps even fully asynchronous
searches below perfect utilization (Table III: AE/RS sit at 0.87-0.96,
not 1.0). The overhead is drawn per evaluation from a lognormal
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Per-node overhead parameters of the simulated machine.

    Parameters
    ----------
    launch_overhead_mean:
        Mean idle seconds between consecutive evaluations on a node
        (task launch + result reporting).
    launch_overhead_sigma:
        Lognormal sigma of that overhead.
    rl_update_seconds:
        Busy time on each agent node for one synchronous PPO update
        (gradient all-reduce + policy step).
    failure_rate:
        Probability that an evaluation dies mid-training (node crash,
        NaN loss, OOM). Failed evaluations burn a random fraction of
        their training time, return no reward, and are not counted as
        completed — the fault model behind the failure-injection tests.
    failure_reward:
        Reward reported to *synchronous* searches for a failed worker
        (the barrier still needs a number; DeepHyper uses a punishment
        reward). Asynchronous searches simply skip the tell.
    """

    launch_overhead_mean: float = 15.0
    launch_overhead_sigma: float = 0.4
    rl_update_seconds: float = 20.0
    failure_rate: float = 0.0
    failure_reward: float = 0.0

    def __post_init__(self) -> None:
        if self.launch_overhead_mean < 0:
            raise ValueError("launch_overhead_mean must be non-negative")
        if self.launch_overhead_sigma < 0:
            raise ValueError("launch_overhead_sigma must be non-negative")
        if self.rl_update_seconds < 0:
            raise ValueError("rl_update_seconds must be non-negative")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}")

    def sample_failure(self, rng: np.random.Generator) -> float | None:
        """Return the fraction of training time burnt before a failure,
        or ``None`` if this evaluation succeeds."""
        if self.failure_rate == 0.0 or rng.random() >= self.failure_rate:
            return None
        obs.counter_add("hpc/failures_injected")
        return float(rng.uniform(0.05, 1.0))

    def sample_launch_overhead(self, rng: np.random.Generator) -> float:
        """One launch-overhead draw (mean-preserving lognormal)."""
        if self.launch_overhead_mean == 0.0:
            return 0.0
        sigma = self.launch_overhead_sigma
        overhead = float(self.launch_overhead_mean
                         * np.exp(rng.normal(0.0, sigma) - 0.5 * sigma ** 2))
        obs.counter_add("hpc/launch_overhead_seconds", overhead)
        return overhead
