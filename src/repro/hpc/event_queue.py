"""Minimal discrete-event simulation core.

A priority queue of timestamped callbacks. Determinism: ties in time are
broken by insertion sequence, so a seeded simulation replays identically.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventQueue"]


class EventQueue:
    """Discrete-event scheduler with simulated wall-clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule in the past (now={self.now}, when={when})")
        heapq.heappush(self._heap, (when, self._seq, callback))
        self._seq += 1

    def run_until(self, end_time: float) -> None:
        """Process events in time order until the queue drains or the
        next event lies beyond ``end_time`` (the clock then advances to
        ``end_time`` exactly — the 3-hour wall limit)."""
        if end_time < self.now:
            raise ValueError(
                f"end_time {end_time} precedes current time {self.now}")
        while self._heap and self._heap[0][0] <= end_time:
            when, _, callback = heapq.heappop(self._heap)
            self.now = when
            callback()
        self.now = end_time

    @property
    def pending(self) -> int:
        return len(self._heap)
