"""Simulated HPC execution substrate.

Substitutes for the Theta Cray XC40 (paper Sec. IV): a discrete-event
simulation of a node pool running NAS evaluations, with the two execution
models the paper contrasts —

* fully **asynchronous** workers (aging evolution, random search): every
  node independently asks the search for a configuration, trains it, and
  reports back;
* **synchronous multimaster-multiworker** (distributed RL): 11 agent
  nodes each drive a worker group; a round completes only when every
  worker in every group has reported (the barrier responsible for RL's
  poor node utilization).

Node utilization, evaluation counts, reward trajectories and unique
high-performer counts are tracked exactly as the paper reports them
(trapezoidal/step AUC over 3 hours of simulated wall time).
"""

from repro.hpc.event_queue import EventQueue
from repro.hpc.theta import ThetaPartition, rl_node_allocation
from repro.hpc.tracking import EvaluationRecord, SearchTracker
from repro.hpc.cluster import ClusterConfig
from repro.hpc.parallel import (
    EvaluationBackend,
    ParallelEvaluator,
    SerialEvaluator,
    evaluation_backend,
)
from repro.hpc.executor import (
    resume_search,
    run_asynchronous_search,
    run_synchronous_rl_search,
    run_search,
)

__all__ = [
    "EventQueue",
    "ThetaPartition",
    "rl_node_allocation",
    "EvaluationRecord",
    "SearchTracker",
    "ClusterConfig",
    "EvaluationBackend",
    "ParallelEvaluator",
    "SerialEvaluator",
    "evaluation_backend",
    "run_asynchronous_search",
    "run_synchronous_rl_search",
    "run_search",
    "resume_search",
]
