"""Search instrumentation: the paper's three scaling metrics.

* **Reward trajectory** — moving-window average (window 100) of validation
  rewards against completion wall-clock (Figs. 3, 9a/c);
* **Node utilization** — AUC of the busy-node step curve divided by the
  ideal AUC (Table III, Figs. 9b/d);
* **Unique high performers** — count of distinct architectures whose
  reward exceeded a threshold (0.96), cumulatively over time (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.smoothing import moving_average

__all__ = ["EvaluationRecord", "SearchTracker"]


@dataclass(frozen=True)
class EvaluationRecord:
    """One completed evaluation on the simulated machine."""

    architecture: tuple
    reward: float
    start_time: float
    end_time: float
    node: int
    n_parameters: int

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


@dataclass
class SearchTracker:
    """Accumulates evaluation records and busy-node transitions."""

    n_nodes: int
    wall_seconds: float
    records: list[EvaluationRecord] = field(default_factory=list)
    #: Evaluations that died mid-run (failure injection; see
    #: :class:`repro.hpc.cluster.ClusterConfig`).
    n_failures: int = 0
    _busy_events: list[tuple[float, int]] = field(default_factory=list)

    def record_evaluation(self, record: EvaluationRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------
    # Checkpointing (docs/CHECKPOINTING.md)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-compatible snapshot: records, busy transitions, failures."""
        return {
            "n_nodes": self.n_nodes,
            "wall_seconds": self.wall_seconds,
            "n_failures": self.n_failures,
            "records": [[list(r.architecture), r.reward, r.start_time,
                         r.end_time, r.node, r.n_parameters]
                        for r in self.records],
            "busy_events": [[t, delta] for t, delta in self._busy_events],
        }

    @classmethod
    def from_state(cls, state: dict) -> "SearchTracker":
        """Rebuild the tracker captured by :meth:`state_dict`."""
        tracker = cls(n_nodes=int(state["n_nodes"]),
                      wall_seconds=float(state["wall_seconds"]),
                      n_failures=int(state["n_failures"]))
        for arch, reward, start, end, node, n_params in state["records"]:
            tracker.records.append(EvaluationRecord(
                architecture=tuple(arch), reward=float(reward),
                start_time=float(start), end_time=float(end),
                node=int(node), n_parameters=int(n_params)))
        tracker._busy_events = [(float(t), int(delta))
                                for t, delta in state["busy_events"]]
        return tracker

    def node_busy(self, t: float) -> None:
        """A node transitioned idle -> busy at simulated time ``t``."""
        self._busy_events.append((t, +1))

    def node_idle(self, t: float) -> None:
        """A node transitioned busy -> idle at simulated time ``t``."""
        self._busy_events.append((t, -1))

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def n_evaluations(self) -> int:
        return len(self.records)

    def busy_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """Step curve ``(times, busy_counts)`` clipped to the wall window."""
        events = sorted(self._busy_events)
        times = [0.0]
        counts = [0]
        current = 0
        for t, delta in events:
            t = min(t, self.wall_seconds)
            current += delta
            if t == times[-1]:
                counts[-1] = current
            else:
                times.append(t)
                counts.append(current)
        if times[-1] < self.wall_seconds:
            times.append(self.wall_seconds)
            counts.append(current)
        return np.asarray(times), np.asarray(counts)

    def node_utilization(self) -> float:
        """Observed busy AUC / ideal AUC (Table III's metric).

        The busy curve is a step function, for which the trapezoidal rule
        the paper cites reduces to exact step integration of left values.
        """
        times, counts = self.busy_curve()
        if times.size < 2:
            return 0.0
        widths = np.diff(times)
        auc = float(np.sum(widths * counts[:-1]))
        return auc / (self.n_nodes * self.wall_seconds)

    def reward_trajectory(self, window: int = 100
                          ) -> tuple[np.ndarray, np.ndarray]:
        """``(completion_times, moving_average_rewards)`` (Fig. 3)."""
        ordered = sorted(self.records, key=lambda r: r.end_time)
        if not ordered:
            return np.array([]), np.array([])
        times = np.array([r.end_time for r in ordered])
        rewards = np.array([r.reward for r in ordered])
        return times, moving_average(rewards, window)

    def best_reward_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """``(completion_times, best_so_far)``."""
        ordered = sorted(self.records, key=lambda r: r.end_time)
        if not ordered:
            return np.array([]), np.array([])
        times = np.array([r.end_time for r in ordered])
        rewards = np.array([r.reward for r in ordered])
        return times, np.maximum.accumulate(rewards)

    def unique_high_performers(self, threshold: float = 0.96
                               ) -> tuple[np.ndarray, np.ndarray]:
        """Cumulative count of distinct architectures with reward above
        ``threshold`` vs completion time (Fig. 8)."""
        ordered = sorted(self.records, key=lambda r: r.end_time)
        seen: set = set()
        times, counts = [], []
        for rec in ordered:
            if rec.reward > threshold and rec.architecture not in seen:
                seen.add(rec.architecture)
                times.append(rec.end_time)
                counts.append(len(seen))
        return np.asarray(times), np.asarray(counts)

    def n_unique_high_performers(self, threshold: float = 0.96) -> int:
        return len({r.architecture for r in self.records
                    if r.reward > threshold})

    def mean_evaluation_seconds(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([r.duration for r in self.records]))
