"""Process-pool parallel evaluation backend (docs/PARALLELISM.md).

The discrete-event executors in :mod:`repro.hpc.executor` model a cluster
whose concurrency the process never actually had: every
``Evaluator.evaluate`` call ran serially inside the event loop. This
module supplies the real concurrency. An :class:`EvaluationBackend`
decouples *requesting* an evaluation (``submit``) from *consuming* its
result (``gather``); between the two, :class:`ParallelEvaluator` fans the
work out to a ``multiprocessing`` worker pool while the executors keep
assigning simulated timestamps exactly as before.

Determinism contract
--------------------
Every task is seeded by an order-stable
:func:`repro.utils.rng.child_sequence` child of a per-run root: task ``k``
receives stream ``(root, k)`` no matter which worker runs it, in which
order results return, or whether the backend is the in-process
:class:`SerialEvaluator`. Results are therefore bitwise identical across
worker counts — guaranteed by tests/test_parallel_equivalence.py, not by
hoping the pool is quiet.

Failure semantics
-----------------
A worker that raises, crashes, or hangs past ``task_timeout`` is
terminated and replaced by a fresh process; the task is retried up to
``max_retries`` times. On retry exhaustion the task degrades to one
guarded in-process attempt (never after a timeout — an evaluator that
hung a worker would hang the parent too) and finally surfaces as a
*failure* :class:`~repro.nas.evaluation.EvaluationResult`
(``metadata["failed"]``, punishment reward) rather than an exception, so
the event queue keeps draining. If the pool cannot be built at all (no
``fork``/``spawn``, resource limits), the backend degrades whole-sale to
in-process serial evaluation.
"""

from __future__ import annotations

import pickle
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
import multiprocessing as mp

import numpy as np

from repro import obs
from repro.nas.evaluation import EvaluationResult, Evaluator
from repro.utils.rng import as_seed_sequence, child_sequence

__all__ = ["EvaluationBackend", "SerialEvaluator", "ParallelEvaluator",
           "TaskFeed", "evaluation_backend", "FAILURE_REWARD"]

#: Reward reported for an evaluation whose every recovery path failed —
#: finite (so ``tell`` comparisons stay ordered) and clearly punishing.
FAILURE_REWARD = -1.0


class EvaluationBackend:
    """Submit/gather protocol over an :class:`Evaluator`.

    ``submit`` registers an architecture + task seed and returns an
    integer handle; ``gather`` blocks until that task's
    :class:`EvaluationResult` is available. Implementations must be
    deterministic in ``(architecture, seed)`` only — never in scheduling.
    """

    def __init__(self, evaluator: Evaluator) -> None:
        self.evaluator = evaluator

    #: How many tasks the executor should keep in flight to saturate the
    #: backend (1 for serial; ~2x workers for the pool).
    capacity: int = 1

    def submit(self, arch, seed: np.random.SeedSequence,
               epochs: int | None = None) -> int:
        """Register a task. ``epochs`` (optional) asks the evaluator at a
        truncated budget via ``evaluate_at`` — the multi-fidelity path;
        ``None`` keeps the evaluator's full-budget ``evaluate``."""
        raise NotImplementedError

    def gather(self, handle: int) -> EvaluationResult:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; gather() must not be called afterwards."""

    def __enter__(self) -> "EvaluationBackend":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class SerialEvaluator(EvaluationBackend):
    """In-process backend: the serial reference the pool must match.

    Evaluation is deferred to ``gather`` so the submit/gather pattern is
    exercised identically to the pool; because every task carries its own
    seed stream, deferral order cannot affect results.
    """

    capacity = 1

    def __init__(self, evaluator: Evaluator) -> None:
        super().__init__(evaluator)
        self._pending: dict[int, tuple[tuple, np.random.SeedSequence,
                                       int | None]] = {}
        self._next_handle = 0

    def submit(self, arch, seed: np.random.SeedSequence,
               epochs: int | None = None) -> int:
        handle = self._next_handle
        self._next_handle += 1
        self._pending[handle] = (tuple(arch), seed, epochs)
        obs.counter_add("parallel/tasks_dispatched")
        return handle

    def gather(self, handle: int) -> EvaluationResult:
        arch, seed, epochs = self._pending.pop(handle)
        result = _evaluate_task(self.evaluator, arch, seed, epochs)
        obs.counter_add("parallel/tasks_completed")
        return result


def _evaluate_task(evaluator: Evaluator, arch,
                   seed: np.random.SeedSequence,
                   epochs: int | None = None) -> EvaluationResult:
    """The single definition of how a task seed becomes an evaluation —
    shared by workers, the serial backend, and every fallback path. A
    task carrying an epoch budget routes to ``evaluate_at`` (the
    multi-fidelity ask); the evaluator decides whether it can answer."""
    if epochs is None:
        return evaluator.evaluate(tuple(arch), np.random.default_rng(seed))
    return evaluator.evaluate_at(tuple(arch), epochs,
                                 np.random.default_rng(seed))


def _worker_main(conn) -> None:
    """Worker process loop: receive pickled evaluator, then tasks.

    Messages are length-prefixed pickle bytes (``send_bytes``) so the
    parent can meter IPC volume. Any exception inside ``evaluate`` is
    reported as an ``("error", ...)`` message; the worker itself only
    exits on EOF, a ``None`` sentinel, or an unreportable failure.
    """
    try:
        evaluator = pickle.loads(conn.recv_bytes())
    except (EOFError, OSError):
        return
    while True:
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError):
            return
        msg = pickle.loads(payload)
        if msg is None:
            return
        handle, arch, seed, epochs = msg
        try:
            result = _evaluate_task(evaluator, arch, seed, epochs)
            out = ("ok", handle, result)
        except Exception as exc:
            out = ("error", handle,
                   f"{type(exc).__name__}: {exc}", traceback.format_exc())
        try:
            blob = pickle.dumps(out)
        except Exception as exc:  # unpicklable result: report, keep worker
            blob = pickle.dumps(("error", handle,
                                 f"result not picklable: {exc}", ""))
        try:
            conn.send_bytes(blob)
        except (BrokenPipeError, OSError):
            return


@dataclass
class _Task:
    """Parent-side bookkeeping for one submitted evaluation."""

    handle: int
    arch: tuple
    seed: np.random.SeedSequence
    epochs: int | None = None
    attempts: int = 0
    worker: "_Worker | None" = None
    dispatched_at: float = field(default=0.0)


class _Worker:
    """One pool process plus its duplex pipe."""

    def __init__(self, ctx, evaluator_blob: bytes, index: int) -> None:
        self.index = index
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_worker_main, args=(child_conn,),
                                   daemon=True, name=f"repro-eval-{index}")
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.conn.send_bytes(evaluator_blob)
        self.task: _Task | None = None

    def kill(self) -> None:
        try:
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stuck kill
                self.process.kill()
                self.process.join(timeout=2.0)
        finally:
            self.conn.close()


class ParallelEvaluator(EvaluationBackend):
    """Fan ``Evaluator.evaluate`` calls out to a process pool.

    Parameters
    ----------
    evaluator:
        The (picklable) evaluator; shipped to each worker once at startup.
    n_workers:
        Pool size. Real speedup requires evaluations whose compute
        dominates the ~0.5 ms/task IPC cost (see BENCH_core.json's
        ``parallel_search_*`` entries).
    task_timeout:
        Per-task wall-clock budget in seconds; a worker exceeding it is
        terminated and the task retried. ``None`` disables timeouts.
    max_retries:
        How many times a task is re-dispatched (always onto a fresh
        worker) after a crash, raise, or timeout before the failure
        surfaces as an :class:`EvaluationResult`.
    serial_fallback:
        Attempt one guarded in-process evaluation when pool retries are
        exhausted for a non-timeout reason, and degrade to fully serial
        operation when the pool itself cannot be (re)built.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (no re-import, instant startup), else ``spawn``.
    """

    def __init__(self, evaluator: Evaluator, n_workers: int = 2, *,
                 task_timeout: float | None = None, max_retries: int = 2,
                 serial_fallback: bool = True,
                 start_method: str | None = None) -> None:
        super().__init__(evaluator)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, "
                             f"got {task_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.n_workers = int(n_workers)
        self.task_timeout = task_timeout
        self.max_retries = int(max_retries)
        self.serial_fallback = bool(serial_fallback)
        self.capacity = 2 * self.n_workers
        self._tasks: dict[int, _Task] = {}
        self._done: dict[int, EvaluationResult] = {}
        self._queue: deque[_Task] = deque()
        self._workers: list[_Worker] = []
        self._next_handle = 0
        self._next_worker_index = 0
        self._degraded = False
        self._closed = False
        self._busy_s = 0.0
        self._created_at = time.monotonic()
        try:
            if start_method is None:
                methods = mp.get_all_start_methods()
                start_method = "fork" if "fork" in methods else "spawn"
            self._ctx = mp.get_context(start_method)
            self._evaluator_blob = pickle.dumps(evaluator)
            obs.counter_add("parallel/pickle_bytes_out",
                            len(self._evaluator_blob) * self.n_workers)
            for _ in range(self.n_workers):
                self._workers.append(self._spawn_worker())
        except Exception:
            # Platform without usable process support, unpicklable
            # evaluator, resource exhaustion: run everything in-process.
            self._teardown_workers()
            self._degrade()

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def submit(self, arch, seed: np.random.SeedSequence,
               epochs: int | None = None) -> int:
        if self._closed:
            raise RuntimeError("backend is closed")
        handle = self._next_handle
        self._next_handle += 1
        task = _Task(handle=handle, arch=tuple(arch), seed=seed,
                     epochs=epochs)
        self._tasks[handle] = task
        obs.counter_add("parallel/tasks_dispatched")
        if not self._degraded:
            self._queue.append(task)
            self._dispatch_pending()
        return handle

    def gather(self, handle: int) -> EvaluationResult:
        if handle not in self._tasks and handle not in self._done:
            raise KeyError(f"unknown task handle {handle}")
        while handle not in self._done:
            if self._degraded:
                self._run_degraded(self._tasks[handle])
            else:
                self._pump()
        self._tasks.pop(handle, None)
        obs.counter_add("parallel/tasks_completed")
        return self._done.pop(handle)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        elapsed = time.monotonic() - self._created_at
        if self._workers and elapsed > 0:
            obs.gauge_set("parallel/worker_utilization",
                          self._busy_s / (self.n_workers * elapsed))
        self._teardown_workers()

    # ------------------------------------------------------------------
    # Pool mechanics
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _Worker:
        worker = _Worker(self._ctx, self._evaluator_blob,
                         self._next_worker_index)
        self._next_worker_index += 1
        return worker

    def _teardown_workers(self) -> None:
        for worker in self._workers:
            try:
                worker.kill()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._workers.clear()

    def _degrade(self) -> None:
        """Switch to in-process evaluation for every remaining task."""
        self._degraded = True
        obs.counter_add("parallel/serial_fallbacks")

    def _run_degraded(self, task: _Task) -> None:
        try:
            result = _evaluate_task(self.evaluator, task.arch, task.seed,
                                    task.epochs)
        except Exception as exc:
            result = self._failure_result(
                task, f"degraded in-process evaluation raised: {exc}")
        self._done[task.handle] = result

    def _dispatch_pending(self) -> None:
        for worker in self._workers:
            if worker.task is None and self._queue:
                task = self._queue.popleft()
                self._send_task(worker, task)

    def _send_task(self, worker: _Worker, task: _Task) -> None:
        blob = pickle.dumps((task.handle, task.arch, task.seed,
                             task.epochs))
        obs.counter_add("parallel/pickle_bytes_out", len(blob))
        task.worker = worker
        task.dispatched_at = time.monotonic()
        worker.task = task
        try:
            worker.conn.send_bytes(blob)
        except (BrokenPipeError, OSError):
            self._replace_worker(worker, task, "worker pipe broken at send")

    def _pump(self) -> None:
        """Advance the pool: collect results, expire timeouts, refill."""
        inflight = [w for w in self._workers if w.task is not None]
        if not inflight:
            if self._queue:
                self._dispatch_pending()
                if any(w.task is not None for w in self._workers):
                    return
            # No worker accepted work — pool is unusable.
            self._degrade()
            return
        timeout = self._next_deadline_in(inflight)
        ready = mp_connection.wait([w.conn for w in inflight],
                                   timeout=timeout)
        conn_to_worker = {w.conn: w for w in inflight}
        for conn in ready:
            self._receive(conn_to_worker[conn])
        self._expire_timeouts()
        self._dispatch_pending()

    def _next_deadline_in(self, inflight: list[_Worker]) -> float | None:
        if self.task_timeout is None:
            return None
        now = time.monotonic()
        remaining = [w.task.dispatched_at + self.task_timeout - now
                     for w in inflight]
        return max(min(remaining), 0.0)

    def _receive(self, worker: _Worker) -> None:
        task = worker.task
        try:
            payload = worker.conn.recv_bytes()
        except (EOFError, OSError):
            self._replace_worker(worker, task, "worker process died")
            return
        obs.counter_add("parallel/pickle_bytes_in", len(payload))
        msg = pickle.loads(payload)
        if task is not None:
            self._busy_s += time.monotonic() - task.dispatched_at
        if msg[0] == "ok":
            _, handle, result = msg
            worker.task = None
            if task is not None and handle == task.handle:
                self._done[handle] = result
        else:
            _, handle, error = msg[0], msg[1], msg[2]
            # A raising evaluator may have corrupted worker state (C
            # extensions, leaked globals): retry on a fresh process.
            self._replace_worker(worker, task,
                                 f"worker raised: {error}")

    def _expire_timeouts(self) -> None:
        if self.task_timeout is None:
            return
        now = time.monotonic()
        for worker in list(self._workers):
            task = worker.task
            if task is not None and \
                    now - task.dispatched_at > self.task_timeout:
                obs.counter_add("parallel/timeouts")
                self._replace_worker(
                    worker, task,
                    f"task exceeded timeout of {self.task_timeout:g}s",
                    timed_out=True)

    def _replace_worker(self, worker: _Worker, task: _Task | None,
                        reason: str, *, timed_out: bool = False) -> None:
        worker.kill()
        obs.counter_add("parallel/workers_restarted")
        try:
            replacement = self._spawn_worker()
        except Exception:
            self._workers.remove(worker)
            if not self._workers:
                self._degrade()
        else:
            self._workers[self._workers.index(worker)] = replacement
        if task is None:
            return
        task.worker = None
        task.attempts += 1
        if task.attempts <= self.max_retries:
            obs.counter_add("parallel/retries")
            self._queue.appendleft(task)
        else:
            self._finalize_failure(task, reason, timed_out=timed_out)

    def _finalize_failure(self, task: _Task, reason: str, *,
                          timed_out: bool) -> None:
        # A timed-out evaluator would hang the parent too; only crash /
        # raise exhaustion earns the guarded in-process attempt.
        if self.serial_fallback and not timed_out:
            obs.counter_add("parallel/serial_fallbacks")
            try:
                result = _evaluate_task(self.evaluator, task.arch,
                                        task.seed, task.epochs)
                result.metadata["recovered"] = "in-process"
                self._done[task.handle] = result
                return
            except Exception as exc:
                reason = f"{reason}; in-process fallback raised: {exc}"
        self._done[task.handle] = self._failure_result(task, reason)

    def _failure_result(self, task: _Task, reason: str) -> EvaluationResult:
        obs.counter_add("parallel/task_failures")
        return EvaluationResult(
            architecture=task.arch, reward=FAILURE_REWARD, duration=0.0,
            n_parameters=0,
            metadata={"failed": True, "error": reason,
                      "attempts": task.attempts})


class TaskFeed:
    """Sequenced ask -> submit -> gather pipeline for the executors.

    Preserves serial ask order (proposal ``k`` is always the ``k``-th
    ``algorithm.ask()`` and carries task stream ``k``) while keeping up to
    ``backend.capacity`` evaluations in flight for algorithms that declare
    ``speculative_ask`` — i.e. whose proposal stream does not depend on
    pending tells (random search). Feedback-driven algorithms run at depth
    1: correct, just not overlapped.
    """

    def __init__(self, algorithm, backend: EvaluationBackend,
                 task_root: np.random.SeedSequence) -> None:
        self.algorithm = algorithm
        self.backend = backend
        self.task_root = as_seed_sequence(task_root)
        self.depth = backend.capacity \
            if getattr(algorithm, "speculative_ask", False) else 1
        self._inflight: deque[tuple[tuple, int]] = deque()
        self._n_issued = 0

    def next_sequence(self) -> np.random.SeedSequence:
        seq = child_sequence(self.task_root, self._n_issued)
        self._n_issued += 1
        return seq

    def next_result(self):
        """The next ``(architecture, EvaluationResult)`` in ask order."""
        while len(self._inflight) < max(self.depth, 1):
            arch = tuple(self.algorithm.ask())
            handle = self.backend.submit(arch, self.next_sequence())
            self._inflight.append((arch, handle))
        arch, handle = self._inflight.popleft()
        return arch, self.backend.gather(handle)

    # ------------------------------------------------------------------
    # Checkpointing (docs/CHECKPOINTING.md)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the feed's sequencing position.

        Backend handles are process-local and cannot be persisted; what
        *is* persisted is the pair that makes them reproducible — the
        task counter and the architectures still in flight. Because task
        ``k`` always receives seed stream ``(root, k)``, re-submitting
        the in-flight architectures after a restore yields bitwise the
        same results the lost handles would have.
        """
        return {"n_issued": self._n_issued,
                "inflight": [list(arch) for arch, _ in self._inflight]}

    def load_state_dict(self, state: dict) -> None:
        """Re-create in-flight work captured by :meth:`state_dict`.

        Must be called on a fresh feed (same algorithm/backend/task root):
        rewinds the counter to before the in-flight proposals, then
        re-submits each with its original task stream. The restored
        algorithm's RNG already sits *past* these asks, so they are not
        re-asked — only re-dispatched.
        """
        if self._n_issued or self._inflight:
            raise RuntimeError("can only restore into a fresh TaskFeed")
        inflight = state["inflight"]
        self._n_issued = int(state["n_issued"]) - len(inflight)
        if self._n_issued < 0:
            raise ValueError("corrupt feed state: more in-flight tasks "
                             "than issued sequences")
        for arch in inflight:
            arch = tuple(arch)
            handle = self.backend.submit(arch, self.next_sequence())
            self._inflight.append((arch, handle))


def evaluation_backend(evaluator: Evaluator, workers: int | None,
                       **kwargs) -> EvaluationBackend | None:
    """Backend for a ``--workers`` value: ``None`` -> no backend (legacy
    in-loop evaluation), ``0`` -> :class:`SerialEvaluator`, ``n >= 1`` ->
    :class:`ParallelEvaluator` with ``n`` workers."""
    if workers is None:
        return None
    if workers <= 0:
        return SerialEvaluator(evaluator)
    return ParallelEvaluator(evaluator, n_workers=workers, **kwargs)
