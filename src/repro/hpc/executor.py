"""Discrete-event executors for the two execution models.

``run_asynchronous_search`` drives aging evolution / random search: every
node independently cycles (launch overhead -> ask -> train -> tell). No
barrier ever forms; a node is idle only during launch overhead.

``run_synchronous_rl_search`` drives distributed RL with the paper's
multimaster-multiworker layout: per round, each agent's workers each train
one architecture; the round's gradient all-reduce happens only when the
slowest worker anywhere finishes (the global barrier), after which agents
are briefly busy applying the PPO update and the next round starts.
Unused remainder nodes (e.g. 7 of 128) never run anything.

Both return the populated :class:`~repro.hpc.tracking.SearchTracker`.
Evaluations still in flight at the wall limit keep their node busy
(counted in utilization) but are not recorded as completed — matching how
the paper counts evaluations.

Both executors optionally route evaluations through an
:class:`~repro.hpc.parallel.EvaluationBackend` (``backend=`` or
``workers=``): simulated timestamps are assigned exactly as in the
in-loop path, but the evaluations themselves run on a process pool.
Backend mode derives one order-stable task stream per evaluation
(:func:`repro.utils.rng.child_sequence`) instead of threading the node
streams through ``evaluate``, so a backend run is bitwise identical
across worker counts — though not to the legacy ``backend=None`` path,
whose historical node-stream threading is preserved untouched
(docs/PARALLELISM.md).

Walltime-bounded campaigns (docs/CHECKPOINTING.md)
--------------------------------------------------
The paper's searches ran inside fixed 3-hour Theta allocations; a
campaign longer than one allocation must checkpoint and resume. Both
executors therefore accept a simulated ``walltime`` budget (how far this
invocation may advance the clock towards ``partition.wall_seconds``) and
a :class:`~repro.nas.checkpoint.CheckpointPolicy` (where to write, how
often). Node lifecycles are kept as plain-data *pending event*
descriptors rather than closures, so a campaign checkpoint captures the
executor mid-flight exactly: the clock, every node's next event, every
RNG bit-stream, the task-feed position, and the tracker. Resuming via
:func:`resume_search` replays nothing and reseeds nothing — the restored
campaign continues the bit-identical trajectory the uninterrupted run
would have produced (enforced by tests/test_campaign_resume.py). The
synchronous RL search checkpoints at its round barriers — its only
quiescent points — and re-runs any partial round after a resume, which
yields the same trajectory because rounds are deterministic functions of
the boundary state.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from repro import obs
from repro.hpc.cluster import ClusterConfig
from repro.hpc.event_queue import EventQueue
from repro.hpc.parallel import EvaluationBackend, TaskFeed, \
    evaluation_backend
from repro.hpc.theta import ThetaPartition, rl_node_allocation
from repro.hpc.tracking import EvaluationRecord, SearchTracker
from repro.nas.algorithms.base import SearchAlgorithm
from repro.nas.algorithms.rl_nas import DistributedRL
from repro.nas.checkpoint import CAMPAIGN_FORMAT, CHECKPOINT_VERSION, \
    CheckpointPolicy, atomic_write_json, load_checkpoint, restore_search, \
    search_state
from repro.nas.evaluation import Evaluator, evaluator_identity
from repro.utils.rng import as_generator, as_seed_sequence, \
    generator_from_state, generator_state, sequence_from_state, \
    sequence_state, spawn

__all__ = ["run_asynchronous_search", "run_synchronous_rl_search",
           "run_search", "resume_search"]


def _resolve_backend(evaluator: Evaluator,
                     backend: EvaluationBackend | None,
                     workers: int | None
                     ) -> tuple[EvaluationBackend | None, bool]:
    """``(backend, owned)`` for the ``backend=``/``workers=`` pair; an
    executor closes a backend only if it built it here."""
    if backend is not None:
        if workers is not None:
            raise ValueError("pass either backend= or workers=, not both")
        return backend, False
    return evaluation_backend(evaluator, workers), True


def _evaluator_identity(evaluator: Evaluator) -> dict | None:
    """What a campaign checkpoint records about the evaluation backend.

    Evaluators that represent external state — e.g. a
    :class:`~repro.nas.benchmark.BenchmarkEvaluator` bound to an archive
    file by content digest — expose ``checkpoint_identity()``; a resume
    must then present an evaluator with the same identity, so a campaign
    can never silently continue against a different benchmark. Evaluators
    without the hook (surrogate, real training) record ``None`` and skip
    the check, exactly as all pre-existing checkpoints do.

    (Shared with the multi-fidelity campaign checkpoints — the logic
    lives in :func:`repro.nas.evaluation.evaluator_identity`.)
    """
    return evaluator_identity(evaluator)


def _check_resume_state(resume_state: dict | None, mode: str,
                        partition: ThetaPartition,
                        uses_backend: bool,
                        evaluator: Evaluator) -> dict | None:
    if resume_state is None:
        return None
    if resume_state.get("format") != CAMPAIGN_FORMAT:
        raise ValueError("resume_state is not a campaign checkpoint")
    if int(resume_state.get("version", 0)) > CHECKPOINT_VERSION:
        raise ValueError(
            f"campaign checkpoint version {resume_state.get('version')} "
            f"is newer than supported ({CHECKPOINT_VERSION})")
    if resume_state.get("mode") != mode:
        raise ValueError(
            f"checkpoint was written by a {resume_state.get('mode')!r} "
            f"campaign, cannot resume as {mode!r}")
    saved = resume_state["partition"]
    if int(saved["n_nodes"]) != partition.n_nodes or \
            float(saved["wall_seconds"]) != partition.wall_seconds:
        raise ValueError(
            f"checkpoint partition ({saved['n_nodes']} nodes, "
            f"{saved['wall_seconds']}s) does not match "
            f"({partition.n_nodes} nodes, {partition.wall_seconds}s)")
    if bool(resume_state.get("uses_backend")) != uses_backend:
        raise ValueError(
            "checkpoint evaluation mode (backend vs in-loop) does not "
            "match this invocation; resume with the same --workers choice")
    saved_identity = resume_state.get("evaluator")
    if saved_identity is not None:
        identity = _evaluator_identity(evaluator)
        if identity != saved_identity:
            raise ValueError(
                f"checkpoint was written against evaluator "
                f"{saved_identity!r} but this invocation provides "
                f"{identity!r}; resuming would continue a different "
                f"experiment (for benchmark campaigns: same archive, "
                f"same epochs, same surrogate mode)")
    return resume_state


def _campaign_end(queue: EventQueue, partition: ThetaPartition,
                  walltime: float | None) -> float:
    if walltime is None:
        return partition.wall_seconds
    if walltime <= 0:
        raise ValueError(f"walltime must be positive, got {walltime}")
    return min(queue.now + walltime, partition.wall_seconds)


def _drive(queue: EventQueue, end: float,
           checkpoint: CheckpointPolicy | None, payload) -> None:
    """Advance the clock to ``end``, writing periodic checkpoints.

    ``payload()`` must return the campaign state dict for *the current
    instant* — chunking ``run_until`` at checkpoint marks is trajectory
    neutral, so a checkpointed run and a bare run process the identical
    event sequence.
    """
    if checkpoint is not None and checkpoint.every_seconds is not None:
        next_mark = queue.now + checkpoint.every_seconds
        while next_mark < end:
            queue.run_until(next_mark)
            atomic_write_json(checkpoint.path, payload())
            next_mark += checkpoint.every_seconds
    queue.run_until(end)
    if checkpoint is not None:
        atomic_write_json(checkpoint.path, payload())


# ---------------------------------------------------------------------------
# Asynchronous execution (aging evolution, random search)
# ---------------------------------------------------------------------------

class _AsyncCampaign:
    """Node lifecycles as data: each node owns exactly one pending event.

    Descriptor kinds (``when`` is absolute simulated time):

    * ``launch`` — launch overhead elapses at ``when``; the evaluation is
      requested when it fires;
    * ``finish`` — a successful evaluation completes at ``when``; carries
      the reward/duration/parameter data needed to tell and record;
    * ``fail``  — an injected failure frees the node at ``when``.

    ``order`` preserves heap insertion order across checkpoint/restore so
    simultaneous events keep their tie-break.
    """

    def __init__(self, algorithm: SearchAlgorithm, evaluator: Evaluator,
                 cluster: ClusterConfig, tracker: SearchTracker,
                 queue: EventQueue, node_rngs: list[np.random.Generator],
                 feed: TaskFeed | None) -> None:
        self.algorithm = algorithm
        self.evaluator = evaluator
        self.cluster = cluster
        self.tracker = tracker
        self.queue = queue
        self.node_rngs = node_rngs
        self.feed = feed
        self.pending: dict[int, dict] = {}
        self._order = 0

    # -- event plumbing -----------------------------------------------------
    def _schedule(self, desc: dict) -> None:
        desc["order"] = self._order
        self._order += 1
        self.pending[desc["node"]] = desc
        self.queue.schedule_at(desc["when"],
                               lambda node=desc["node"]: self._fire(node))

    def _fire(self, node: int) -> None:
        desc = self.pending.pop(node)
        if desc["kind"] == "launch":
            self._launch(node)
        elif desc["kind"] == "finish":
            self._finish(desc)
        else:
            self._fail(desc)

    # -- node lifecycle -----------------------------------------------------
    def start_cycle(self, node: int) -> None:
        overhead = self.cluster.sample_launch_overhead(self.node_rngs[node])
        self._schedule({"kind": "launch", "node": node,
                        "when": float(self.queue.now + overhead)})

    def _launch(self, node: int) -> None:
        if self.feed is not None:
            arch, result = self.feed.next_result()
        else:
            arch = self.algorithm.ask()
            result = self.evaluator.evaluate(arch, self.node_rngs[node])
        start = self.queue.now
        self.tracker.node_busy(start)
        failure_frac = self.cluster.sample_failure(self.node_rngs[node])
        if failure_frac is not None:
            # Node crash / NaN loss: the node frees up after the partial
            # run; no reward is reported (asynchronous searches move on).
            self._schedule({
                "kind": "fail", "node": node,
                "when": float(start + failure_frac * result.duration)})
        else:
            self._schedule({
                "kind": "finish", "node": node,
                "when": float(start + result.duration),
                "start": float(start), "arch": list(arch),
                "reward": float(result.reward),
                "n_parameters": int(result.n_parameters)})

    def _finish(self, desc: dict) -> None:
        node = desc["node"]
        self.tracker.node_idle(self.queue.now)
        arch = tuple(desc["arch"])
        self.algorithm.tell(arch, desc["reward"])
        self.tracker.record_evaluation(EvaluationRecord(
            architecture=arch, reward=desc["reward"],
            start_time=desc["start"], end_time=self.queue.now, node=node,
            n_parameters=desc["n_parameters"]))
        self.start_cycle(node)

    def _fail(self, desc: dict) -> None:
        self.tracker.node_idle(self.queue.now)
        self.tracker.n_failures += 1
        self.start_cycle(desc["node"])

    # -- checkpointing ------------------------------------------------------
    def executor_state(self) -> dict:
        return {
            "pending": sorted(self.pending.values(),
                              key=lambda d: d["order"]),
            "order": self._order,
            "node_rngs": [generator_state(g) for g in self.node_rngs],
        }

    def restore(self, state: dict) -> None:
        self.node_rngs = [generator_from_state(s)
                          for s in state["node_rngs"]]
        for desc in sorted(state["pending"], key=lambda d: d["order"]):
            desc = dict(desc, node=int(desc["node"]),
                        when=float(desc["when"]))
            self.pending[desc["node"]] = desc
            self.queue.schedule_at(
                desc["when"], lambda node=desc["node"]: self._fire(node))
        self._order = int(state["order"])


def run_asynchronous_search(algorithm: SearchAlgorithm, evaluator: Evaluator,
                            partition: ThetaPartition, *,
                            cluster: ClusterConfig | None = None,
                            rng=None,
                            backend: EvaluationBackend | None = None,
                            workers: int | None = None,
                            walltime: float | None = None,
                            checkpoint: CheckpointPolicy | None = None,
                            resume_state: dict | None = None
                            ) -> SearchTracker:
    """Simulate a fully asynchronous search (AE or RS).

    ``walltime`` bounds how many simulated seconds this invocation may
    advance the campaign; ``checkpoint`` makes it persist resumable state
    (periodically and at the end); ``resume_state`` is a loaded campaign
    checkpoint to continue from — use :func:`resume_search` rather than
    passing it directly. ``rng`` is ignored on resume (every stream
    continues from its checkpointed position).
    """
    if not algorithm.asynchronous:
        raise ValueError(
            f"{type(algorithm).__name__} is synchronous; use "
            "run_synchronous_rl_search")
    backend, owned = _resolve_backend(evaluator, backend, workers)
    resume_state = _check_resume_state(resume_state, "asynchronous",
                                       partition, backend is not None,
                                       evaluator)
    cluster = cluster or ClusterConfig()
    queue = EventQueue()

    if resume_state is None:
        tracker = SearchTracker(partition.n_nodes, partition.wall_seconds)
        gen = as_generator(rng)
        node_rngs = spawn(gen, partition.n_nodes)
        task_root = None
        feed = None
        if backend is not None:
            # Task streams are grandchildren of the run root (the node
            # streams are its first n_nodes children) — no collisions.
            task_root = as_seed_sequence(gen).spawn(1)[0]
            feed = TaskFeed(algorithm, backend, task_root)
    else:
        tracker = SearchTracker.from_state(resume_state["tracker"])
        queue.now = float(resume_state["now"])
        node_rngs = []  # replaced by campaign.restore below
        task_root = None
        feed = None
        if backend is not None:
            task_root = sequence_from_state(resume_state["task_root"])
            feed = TaskFeed(algorithm, backend, task_root)
            feed.load_state_dict(resume_state["feed"])

    campaign = _AsyncCampaign(algorithm, evaluator, cluster, tracker,
                              queue, node_rngs, feed)

    def payload() -> dict:
        return {
            "format": CAMPAIGN_FORMAT, "version": CHECKPOINT_VERSION,
            "mode": "asynchronous",
            "now": float(queue.now),
            "partition": {"n_nodes": partition.n_nodes,
                          "wall_seconds": partition.wall_seconds},
            "cluster": asdict(cluster),
            "uses_backend": feed is not None,
            "evaluator": _evaluator_identity(evaluator),
            "task_root": (sequence_state(task_root)
                          if task_root is not None else None),
            "feed": feed.state_dict() if feed is not None else None,
            "algorithm": search_state(algorithm),
            "tracker": tracker.state_dict(),
            **campaign.executor_state(),
        }

    run_scope = obs.scope("hpc/run_asynchronous_search")
    try:
        with run_scope:
            if resume_state is None:
                for node in range(partition.n_nodes):
                    campaign.start_cycle(node)
            else:
                campaign.restore(resume_state)
            end = _campaign_end(queue, partition, walltime)
            _drive(queue, end, checkpoint, payload)
    finally:
        if owned and backend is not None:
            backend.close()
    _record_run_metrics(tracker, partition, run_scope.elapsed_s)
    return tracker


def _record_run_metrics(tracker: SearchTracker, partition: ThetaPartition,
                        wall_s: float) -> None:
    """Simulated vs wall-clock accounting of one executor run."""
    if not obs.enabled():
        return
    obs.counter_add("hpc/evaluations_completed", tracker.n_evaluations)
    obs.counter_add("hpc/failures", tracker.n_failures)
    obs.counter_add("hpc/simulated_node_seconds",
                    partition.n_nodes * partition.wall_seconds)
    if tracker.n_evaluations:
        obs.gauge_set("hpc/simulated_seconds_per_evaluation",
                      sum(r.duration for r in tracker.records)
                      / tracker.n_evaluations)
    # How much simulated machine time one wall-clock second buys — the
    # speedup of the discrete-event simulation over the real cluster.
    obs.gauge_set("hpc/simulated_per_wall_second",
                  partition.n_nodes * partition.wall_seconds
                  / max(wall_s, 1e-12))


# ---------------------------------------------------------------------------
# Synchronous execution (distributed RL)
# ---------------------------------------------------------------------------

def run_synchronous_rl_search(algorithm: DistributedRL, evaluator: Evaluator,
                              partition: ThetaPartition, *,
                              cluster: ClusterConfig | None = None,
                              rng=None,
                              backend: EvaluationBackend | None = None,
                              workers: int | None = None,
                              walltime: float | None = None,
                              checkpoint: CheckpointPolicy | None = None,
                              resume_state: dict | None = None
                              ) -> SearchTracker:
    """Simulate the synchronous multi-agent RL search.

    Campaign kwargs as in :func:`run_asynchronous_search`. Checkpoints
    are taken at round barriers (the executor's only quiescent points):
    at expiry the file holds the last completed boundary, and a resume
    re-runs the partial round — deterministically identical to the
    uninterrupted continuation.
    """
    if algorithm.asynchronous:
        raise ValueError("expected a synchronous (DistributedRL) algorithm")
    alloc = rl_node_allocation(partition.n_nodes, algorithm.n_agents)
    if alloc.workers_per_agent != algorithm.workers_per_agent:
        raise ValueError(
            f"algorithm configured for {algorithm.workers_per_agent} "
            f"workers/agent but {partition.n_nodes} nodes allocate "
            f"{alloc.workers_per_agent}")
    backend, owned = _resolve_backend(evaluator, backend, workers)
    resume_state = _check_resume_state(resume_state, "synchronous_rl",
                                       partition, backend is not None,
                                       evaluator)
    cluster = cluster or ClusterConfig()
    queue = EventQueue()

    if resume_state is None:
        tracker = SearchTracker(partition.n_nodes, partition.wall_seconds)
        gen = as_generator(rng)
        # Node ids: [0, n_agents) are agents; workers follow.
        worker_rngs = spawn(gen, alloc.n_workers)
        task_root = None
        feed = None
        if backend is not None:
            task_root = as_seed_sequence(gen).spawn(1)[0]
            feed = TaskFeed(algorithm, backend, task_root)
    else:
        tracker = SearchTracker.from_state(resume_state["tracker"])
        queue.now = float(resume_state["now"])
        worker_rngs = [generator_from_state(s)
                       for s in resume_state["node_rngs"]]
        task_root = None
        feed = None
        if backend is not None:
            task_root = sequence_from_state(resume_state["task_root"])
            feed = TaskFeed(algorithm, backend, task_root)
            feed.load_state_dict(resume_state["feed"])

    def boundary_payload() -> dict:
        """Campaign state at a round barrier (no events in flight)."""
        return {
            "format": CAMPAIGN_FORMAT, "version": CHECKPOINT_VERSION,
            "mode": "synchronous_rl",
            "now": float(queue.now),
            "partition": {"n_nodes": partition.n_nodes,
                          "wall_seconds": partition.wall_seconds},
            "cluster": asdict(cluster),
            "uses_backend": feed is not None,
            "evaluator": _evaluator_identity(evaluator),
            "task_root": (sequence_state(task_root)
                          if task_root is not None else None),
            "feed": feed.state_dict() if feed is not None else None,
            "algorithm": search_state(algorithm),
            "tracker": tracker.state_dict(),
            "node_rngs": [generator_state(g) for g in worker_rngs],
        }

    # The latest quiescent snapshot; what every checkpoint write persists.
    boundary = {"state": boundary_payload()}

    def evaluate_round(batches):
        """Evaluate one round's batch; a whole round is independent given
        its task seeds, so backend mode submits all of it before the
        first gather — the round is the pool's natural unit of
        concurrency."""
        if feed is None:
            return [[evaluator.evaluate(batches[agent_idx][w],
                                        worker_rngs[agent_idx
                                                    * alloc.workers_per_agent
                                                    + w])
                     for w in range(alloc.workers_per_agent)]
                    for agent_idx in range(alloc.n_agents)]
        handles = [[backend.submit(tuple(batches[agent_idx][w]),
                                   feed.next_sequence())
                    for w in range(alloc.workers_per_agent)]
                   for agent_idx in range(alloc.n_agents)]
        return [[backend.gather(h) for h in row] for row in handles]

    def start_round() -> None:
        batches = algorithm.propose_round()
        rewards = [[0.0] * alloc.workers_per_agent
                   for _ in range(alloc.n_agents)]
        state = {"remaining": alloc.n_workers}

        def worker_finished() -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                barrier_reached()

        overheads = [cluster.sample_launch_overhead(worker_rngs[worker])
                     for worker in range(alloc.n_workers)]
        results = evaluate_round(batches)
        failure_fracs = [cluster.sample_failure(worker_rngs[worker])
                         for worker in range(alloc.n_workers)]
        for agent_idx in range(alloc.n_agents):
            for w in range(alloc.workers_per_agent):
                worker = agent_idx * alloc.workers_per_agent + w
                node = alloc.n_agents + worker
                arch = batches[agent_idx][w]
                overhead = overheads[worker]
                result = results[agent_idx][w]
                failure_frac = failure_fracs[worker]

                def launch(agent_idx=agent_idx, w=w, node=node, arch=arch,
                           result=result, failure_frac=failure_frac) -> None:
                    start = queue.now
                    tracker.node_busy(start)

                    def fail() -> None:
                        # The barrier still needs a number: report the
                        # punishment reward, count no completed evaluation.
                        tracker.node_idle(queue.now)
                        tracker.n_failures += 1
                        rewards[agent_idx][w] = cluster.failure_reward
                        worker_finished()

                    def finish() -> None:
                        tracker.node_idle(queue.now)
                        rewards[agent_idx][w] = result.reward
                        tracker.record_evaluation(EvaluationRecord(
                            architecture=tuple(arch), reward=result.reward,
                            start_time=start, end_time=queue.now, node=node,
                            n_parameters=result.n_parameters))
                        worker_finished()

                    if failure_frac is not None:
                        queue.schedule(failure_frac * result.duration, fail)
                    else:
                        queue.schedule(result.duration, finish)

                queue.schedule(overhead, launch)

        def barrier_reached() -> None:
            # All-reduce + PPO update: agent nodes busy briefly.
            for agent_node in range(alloc.n_agents):
                tracker.node_busy(queue.now)

            def update_done() -> None:
                for agent_node in range(alloc.n_agents):
                    tracker.node_idle(queue.now)
                algorithm.finish_round(batches, rewards)
                boundary["state"] = boundary_payload()
                start_round()

            queue.schedule(cluster.rl_update_seconds, update_done)

    run_scope = obs.scope("hpc/run_synchronous_rl_search")
    try:
        with run_scope:
            start_round()
            end = _campaign_end(queue, partition, walltime)
            _drive(queue, end, checkpoint, lambda: boundary["state"])
    finally:
        if owned and backend is not None:
            backend.close()
    _record_run_metrics(tracker, partition, run_scope.elapsed_s)
    return tracker


# ---------------------------------------------------------------------------
# Dispatch and resume
# ---------------------------------------------------------------------------

def run_search(algorithm: SearchAlgorithm, evaluator: Evaluator,
               partition: ThetaPartition, *,
               cluster: ClusterConfig | None = None,
               rng=None, backend: EvaluationBackend | None = None,
               workers: int | None = None,
               walltime: float | None = None,
               checkpoint: CheckpointPolicy | None = None,
               resume_state: dict | None = None) -> SearchTracker:
    """Dispatch on the algorithm's execution model."""
    if algorithm.asynchronous:
        return run_asynchronous_search(algorithm, evaluator, partition,
                                       cluster=cluster, rng=rng,
                                       backend=backend, workers=workers,
                                       walltime=walltime,
                                       checkpoint=checkpoint,
                                       resume_state=resume_state)
    if not isinstance(algorithm, DistributedRL):
        raise TypeError(
            f"synchronous execution supports DistributedRL, got "
            f"{type(algorithm).__name__}")
    return run_synchronous_rl_search(algorithm, evaluator, partition,
                                     cluster=cluster, rng=rng,
                                     backend=backend, workers=workers,
                                     walltime=walltime,
                                     checkpoint=checkpoint,
                                     resume_state=resume_state)


def resume_search(source, space, evaluator: Evaluator, *,
                  backend: EvaluationBackend | None = None,
                  workers: int | None = None,
                  walltime: float | None = None,
                  checkpoint: CheckpointPolicy | None = None,
                  cluster: ClusterConfig | None = None):
    """Continue a campaign from a checkpoint file (or loaded dict).

    Rebuilds the algorithm (exact RNG state included), the partition and
    the cluster model from the checkpoint, then drives the matching
    executor from where the clock stopped. Returns ``(algorithm,
    tracker)`` — the tracker covers the *whole* campaign so far, not just
    this allocation.

    A checkpoint written in backend mode defaults to the in-process
    serial backend on resume (bitwise identical to any pool size); one
    written with in-loop evaluation must be resumed without ``workers``.
    """
    state = source if isinstance(source, dict) else load_checkpoint(source)
    if state.get("format") != CAMPAIGN_FORMAT:
        raise ValueError(
            f"{source!r} is not a campaign checkpoint (use load_search "
            f"for algorithm-only checkpoints)")
    algorithm = restore_search(state["algorithm"], space)
    partition = ThetaPartition(
        n_nodes=int(state["partition"]["n_nodes"]),
        wall_seconds=float(state["partition"]["wall_seconds"]))
    if cluster is None:
        cluster = ClusterConfig(**state["cluster"])
    if state.get("uses_backend") and backend is None and workers is None:
        workers = 0
    tracker = run_search(algorithm, evaluator, partition, cluster=cluster,
                         backend=backend, workers=workers,
                         walltime=walltime, checkpoint=checkpoint,
                         resume_state=state)
    return algorithm, tracker
