"""Discrete-event executors for the two execution models.

``run_asynchronous_search`` drives aging evolution / random search: every
node independently cycles (launch overhead -> ask -> train -> tell). No
barrier ever forms; a node is idle only during launch overhead.

``run_synchronous_rl_search`` drives distributed RL with the paper's
multimaster-multiworker layout: per round, each agent's workers each train
one architecture; the round's gradient all-reduce happens only when the
slowest worker anywhere finishes (the global barrier), after which agents
are briefly busy applying the PPO update and the next round starts.
Unused remainder nodes (e.g. 7 of 128) never run anything.

Both return the populated :class:`~repro.hpc.tracking.SearchTracker`.
Evaluations still in flight at the wall limit keep their node busy
(counted in utilization) but are not recorded as completed — matching how
the paper counts evaluations.

Both executors optionally route evaluations through an
:class:`~repro.hpc.parallel.EvaluationBackend` (``backend=`` or
``workers=``): simulated timestamps are assigned exactly as in the
in-loop path, but the evaluations themselves run on a process pool.
Backend mode derives one order-stable task stream per evaluation
(:func:`repro.utils.rng.child_sequence`) instead of threading the node
streams through ``evaluate``, so a backend run is bitwise identical
across worker counts — though not to the legacy ``backend=None`` path,
whose historical node-stream threading is preserved untouched
(docs/PARALLELISM.md).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.hpc.cluster import ClusterConfig
from repro.hpc.event_queue import EventQueue
from repro.hpc.parallel import EvaluationBackend, TaskFeed, \
    evaluation_backend
from repro.hpc.theta import ThetaPartition, rl_node_allocation
from repro.hpc.tracking import EvaluationRecord, SearchTracker
from repro.nas.algorithms.base import SearchAlgorithm
from repro.nas.algorithms.rl_nas import DistributedRL
from repro.nas.evaluation import Evaluator
from repro.utils.rng import as_generator, as_seed_sequence, spawn

__all__ = ["run_asynchronous_search", "run_synchronous_rl_search",
           "run_search"]


def _resolve_backend(evaluator: Evaluator,
                     backend: EvaluationBackend | None,
                     workers: int | None
                     ) -> tuple[EvaluationBackend | None, bool]:
    """``(backend, owned)`` for the ``backend=``/``workers=`` pair; an
    executor closes a backend only if it built it here."""
    if backend is not None:
        if workers is not None:
            raise ValueError("pass either backend= or workers=, not both")
        return backend, False
    return evaluation_backend(evaluator, workers), True


def run_asynchronous_search(algorithm: SearchAlgorithm, evaluator: Evaluator,
                            partition: ThetaPartition, *,
                            cluster: ClusterConfig | None = None,
                            rng=None,
                            backend: EvaluationBackend | None = None,
                            workers: int | None = None) -> SearchTracker:
    """Simulate a fully asynchronous search (AE or RS)."""
    if not algorithm.asynchronous:
        raise ValueError(
            f"{type(algorithm).__name__} is synchronous; use "
            "run_synchronous_rl_search")
    backend, owned = _resolve_backend(evaluator, backend, workers)
    cluster = cluster or ClusterConfig()
    tracker = SearchTracker(partition.n_nodes, partition.wall_seconds)
    queue = EventQueue()
    gen = as_generator(rng)
    node_rngs = spawn(gen, partition.n_nodes)
    feed = None
    if backend is not None:
        # Task streams are grandchildren of the run root (the node
        # streams are its first n_nodes children) — no collisions.
        feed = TaskFeed(algorithm, backend,
                        as_seed_sequence(gen).spawn(1)[0])

    def start_cycle(node: int) -> None:
        overhead = cluster.sample_launch_overhead(node_rngs[node])

        def launch() -> None:
            if feed is not None:
                arch, result = feed.next_result()
            else:
                arch = algorithm.ask()
                result = evaluator.evaluate(arch, node_rngs[node])
            start = queue.now
            tracker.node_busy(start)
            failure_frac = cluster.sample_failure(node_rngs[node])

            if failure_frac is not None:
                def fail() -> None:
                    # Node crash / NaN loss: the node frees up after the
                    # partial run; no reward is reported (asynchronous
                    # searches simply move on).
                    tracker.node_idle(queue.now)
                    tracker.n_failures += 1
                    start_cycle(node)

                queue.schedule(failure_frac * result.duration, fail)
                return

            def finish() -> None:
                tracker.node_idle(queue.now)
                algorithm.tell(arch, result.reward)
                tracker.record_evaluation(EvaluationRecord(
                    architecture=tuple(arch), reward=result.reward,
                    start_time=start, end_time=queue.now, node=node,
                    n_parameters=result.n_parameters))
                start_cycle(node)

            queue.schedule(result.duration, finish)

        queue.schedule(overhead, launch)

    run_scope = obs.scope("hpc/run_asynchronous_search")
    try:
        with run_scope:
            for node in range(partition.n_nodes):
                start_cycle(node)
            queue.run_until(partition.wall_seconds)
    finally:
        if owned and backend is not None:
            backend.close()
    _record_run_metrics(tracker, partition, run_scope.elapsed_s)
    return tracker


def _record_run_metrics(tracker: SearchTracker, partition: ThetaPartition,
                        wall_s: float) -> None:
    """Simulated vs wall-clock accounting of one executor run."""
    if not obs.enabled():
        return
    obs.counter_add("hpc/evaluations_completed", tracker.n_evaluations)
    obs.counter_add("hpc/failures", tracker.n_failures)
    obs.counter_add("hpc/simulated_node_seconds",
                    partition.n_nodes * partition.wall_seconds)
    if tracker.n_evaluations:
        obs.gauge_set("hpc/simulated_seconds_per_evaluation",
                      sum(r.duration for r in tracker.records)
                      / tracker.n_evaluations)
    # How much simulated machine time one wall-clock second buys — the
    # speedup of the discrete-event simulation over the real cluster.
    obs.gauge_set("hpc/simulated_per_wall_second",
                  partition.n_nodes * partition.wall_seconds
                  / max(wall_s, 1e-12))


def run_synchronous_rl_search(algorithm: DistributedRL, evaluator: Evaluator,
                              partition: ThetaPartition, *,
                              cluster: ClusterConfig | None = None,
                              rng=None,
                              backend: EvaluationBackend | None = None,
                              workers: int | None = None) -> SearchTracker:
    """Simulate the synchronous multi-agent RL search."""
    if algorithm.asynchronous:
        raise ValueError("expected a synchronous (DistributedRL) algorithm")
    alloc = rl_node_allocation(partition.n_nodes, algorithm.n_agents)
    if alloc.workers_per_agent != algorithm.workers_per_agent:
        raise ValueError(
            f"algorithm configured for {algorithm.workers_per_agent} "
            f"workers/agent but {partition.n_nodes} nodes allocate "
            f"{alloc.workers_per_agent}")
    backend, owned = _resolve_backend(evaluator, backend, workers)
    cluster = cluster or ClusterConfig()
    tracker = SearchTracker(partition.n_nodes, partition.wall_seconds)
    queue = EventQueue()
    gen = as_generator(rng)
    # Node ids: [0, n_agents) are agents; workers follow.
    worker_rngs = spawn(gen, alloc.n_workers)
    feed = None
    if backend is not None:
        feed = TaskFeed(algorithm, backend, as_seed_sequence(gen).spawn(1)[0])

    def evaluate_round(batches):
        """Evaluate one round's batch; a whole round is independent given
        its task seeds, so backend mode submits all of it before the
        first gather — the round is the pool's natural unit of
        concurrency."""
        if feed is None:
            return [[evaluator.evaluate(batches[agent_idx][w],
                                        worker_rngs[agent_idx
                                                    * alloc.workers_per_agent
                                                    + w])
                     for w in range(alloc.workers_per_agent)]
                    for agent_idx in range(alloc.n_agents)]
        handles = [[backend.submit(tuple(batches[agent_idx][w]),
                                   feed.next_sequence())
                    for w in range(alloc.workers_per_agent)]
                   for agent_idx in range(alloc.n_agents)]
        return [[backend.gather(h) for h in row] for row in handles]

    def start_round() -> None:
        batches = algorithm.propose_round()
        rewards = [[0.0] * alloc.workers_per_agent
                   for _ in range(alloc.n_agents)]
        state = {"remaining": alloc.n_workers}

        def worker_finished() -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                barrier_reached()

        overheads = [cluster.sample_launch_overhead(worker_rngs[worker])
                     for worker in range(alloc.n_workers)]
        results = evaluate_round(batches)
        failure_fracs = [cluster.sample_failure(worker_rngs[worker])
                         for worker in range(alloc.n_workers)]
        for agent_idx in range(alloc.n_agents):
            for w in range(alloc.workers_per_agent):
                worker = agent_idx * alloc.workers_per_agent + w
                node = alloc.n_agents + worker
                arch = batches[agent_idx][w]
                overhead = overheads[worker]
                result = results[agent_idx][w]
                failure_frac = failure_fracs[worker]

                def launch(agent_idx=agent_idx, w=w, node=node, arch=arch,
                           result=result, failure_frac=failure_frac) -> None:
                    start = queue.now
                    tracker.node_busy(start)

                    def fail() -> None:
                        # The barrier still needs a number: report the
                        # punishment reward, count no completed evaluation.
                        tracker.node_idle(queue.now)
                        tracker.n_failures += 1
                        rewards[agent_idx][w] = cluster.failure_reward
                        worker_finished()

                    def finish() -> None:
                        tracker.node_idle(queue.now)
                        rewards[agent_idx][w] = result.reward
                        tracker.record_evaluation(EvaluationRecord(
                            architecture=tuple(arch), reward=result.reward,
                            start_time=start, end_time=queue.now, node=node,
                            n_parameters=result.n_parameters))
                        worker_finished()

                    if failure_frac is not None:
                        queue.schedule(failure_frac * result.duration, fail)
                    else:
                        queue.schedule(result.duration, finish)

                queue.schedule(overhead, launch)

        def barrier_reached() -> None:
            # All-reduce + PPO update: agent nodes busy briefly.
            for agent_node in range(alloc.n_agents):
                tracker.node_busy(queue.now)

            def update_done() -> None:
                for agent_node in range(alloc.n_agents):
                    tracker.node_idle(queue.now)
                algorithm.finish_round(batches, rewards)
                start_round()

            queue.schedule(cluster.rl_update_seconds, update_done)

    run_scope = obs.scope("hpc/run_synchronous_rl_search")
    try:
        with run_scope:
            start_round()
            queue.run_until(partition.wall_seconds)
    finally:
        if owned and backend is not None:
            backend.close()
    _record_run_metrics(tracker, partition, run_scope.elapsed_s)
    return tracker


def run_search(algorithm: SearchAlgorithm, evaluator: Evaluator,
               partition: ThetaPartition, *,
               cluster: ClusterConfig | None = None,
               rng=None, backend: EvaluationBackend | None = None,
               workers: int | None = None) -> SearchTracker:
    """Dispatch on the algorithm's execution model."""
    if algorithm.asynchronous:
        return run_asynchronous_search(algorithm, evaluator, partition,
                                       cluster=cluster, rng=rng,
                                       backend=backend, workers=workers)
    if not isinstance(algorithm, DistributedRL):
        raise TypeError(
            f"synchronous execution supports DistributedRL, got "
            f"{type(algorithm).__name__}")
    return run_synchronous_rl_search(algorithm, evaluator, partition,
                                     cluster=cluster, rng=rng,
                                     backend=backend, workers=workers)
