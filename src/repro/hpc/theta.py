"""Theta machine description and the paper's RL node-allocation rule.

Theta (ALCF): 4,392 Intel Knights Landing nodes; the paper's experiments
use partitions of 33, 64, 128, 256 and 512 nodes for 3 hours. For the RL
method the node pool is split into 11 agents plus equal worker groups
(paper Sec. IV): ``workers_per_agent = (n_nodes - n_agents) // n_agents``,
leaving a remainder of unused nodes — e.g. 128 nodes -> 11 agents x 10
workers = 121 used, 7 idle.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ThetaPartition", "rl_node_allocation", "PAPER_NODE_COUNTS"]

#: The node counts of the paper's scaling study (Sec. IV-D).
PAPER_NODE_COUNTS = (33, 64, 128, 256, 512)

#: The paper fixes the number of RL agents at 11 in every experiment.
DEFAULT_N_AGENTS = 11

#: Wall-time of every search in the paper: 3 hours.
DEFAULT_WALL_SECONDS = 3 * 3600.0


@dataclass(frozen=True)
class ThetaPartition:
    """A node allocation on the simulated machine."""

    n_nodes: int
    wall_seconds: float = DEFAULT_WALL_SECONDS

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.wall_seconds <= 0:
            raise ValueError(
                f"wall_seconds must be positive, got {self.wall_seconds}")

    @property
    def ideal_node_seconds(self) -> float:
        """Denominator of the utilization AUC metric."""
        return self.n_nodes * self.wall_seconds


@dataclass(frozen=True)
class RLAllocation:
    """RL split of a partition into agents/workers/idle nodes."""

    n_agents: int
    workers_per_agent: int

    @property
    def n_workers(self) -> int:
        return self.n_agents * self.workers_per_agent

    @property
    def n_used(self) -> int:
        return self.n_agents + self.n_workers

    def n_idle(self, n_nodes: int) -> int:
        return n_nodes - self.n_used


def rl_node_allocation(n_nodes: int,
                       n_agents: int = DEFAULT_N_AGENTS) -> RLAllocation:
    """The paper's equal-division allocation rule."""
    if n_agents <= 0:
        raise ValueError(f"n_agents must be positive, got {n_agents}")
    if n_nodes <= n_agents:
        raise ValueError(
            f"need more nodes ({n_nodes}) than agents ({n_agents})")
    wpa = (n_nodes - n_agents) // n_agents
    if wpa == 0:
        raise ValueError(
            f"{n_nodes} nodes leave no workers for {n_agents} agents")
    return RLAllocation(n_agents=n_agents, workers_per_agent=wpa)
