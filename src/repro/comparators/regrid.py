"""Grid refinement / coarsening for the comparator models.

CESM's ocean component runs on a 320x384 grid and HYCOM on a 1/12-degree
grid; the paper interpolates both onto the NOAA one-degree grid (cubic)
and notes that "some errors may be due to cubic interpolation onto the
remote sensing grid". ``regrid_roundtrip`` reproduces that representation
error: refine to the model grid, then spline-interpolate back.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["refine_field", "coarsen_field", "regrid_roundtrip"]


def _check_field(field: np.ndarray) -> np.ndarray:
    arr = np.asarray(field, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"field must be 2-D (lat, lon), got {arr.shape}")
    return arr


def refine_field(field: np.ndarray, factor: int) -> np.ndarray:
    """Spline-upsample a (lat, lon) field by an integer factor.

    NaNs (land) are filled by nearest-ocean values before interpolation so
    splines do not propagate them, then re-masked on the refined grid.
    """
    arr = _check_field(field)
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    nan_mask = np.isnan(arr)
    filled = fill_nan_nearest(arr)
    fine = ndimage.zoom(filled, factor, order=3, mode="grid-wrap", grid_mode=True)
    if nan_mask.any():
        fine_mask = ndimage.zoom(nan_mask.astype(np.float64), factor, order=0,
                                 mode="grid-wrap", grid_mode=True) > 0.5
        fine[fine_mask] = np.nan
    return fine


def coarsen_field(field: np.ndarray, factor: int) -> np.ndarray:
    """Cubic-spline sample a fine (lat, lon) field back down by ``factor``.

    Deliberately *interpolates* (as the paper did) rather than
    conservatively averaging, so small-scale structure aliases slightly —
    the representation-error component of the CESM/HYCOM comparisons.
    """
    arr = _check_field(field)
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if arr.shape[0] % factor or arr.shape[1] % factor:
        raise ValueError(
            f"shape {arr.shape} not divisible by factor {factor}")
    nan_mask = np.isnan(arr)
    filled = fill_nan_nearest(arr)
    coarse = ndimage.zoom(filled, 1.0 / factor, order=3, mode="grid-wrap",
                          grid_mode=True)
    if nan_mask.any():
        coarse_mask = ndimage.zoom(nan_mask.astype(np.float64), 1.0 / factor,
                                   order=0, mode="grid-wrap",
                                   grid_mode=True) > 0.5
        coarse[coarse_mask] = np.nan
    return coarse


def fill_nan_nearest(field: np.ndarray) -> np.ndarray:
    """Replace NaNs with the nearest finite value (Euclidean index metric)."""
    arr = _check_field(field)
    mask = np.isnan(arr)
    if not mask.any():
        return arr.copy()
    if mask.all():
        raise ValueError("field is entirely NaN")
    idx = ndimage.distance_transform_edt(mask, return_distances=False,
                                         return_indices=True)
    return arr[tuple(idx)]


def regrid_roundtrip(field: np.ndarray, factor: int = 4,
                     smooth_sigma: float = 0.0) -> np.ndarray:
    """Model-grid round trip: refine, optionally smooth (model effective
    resolution), and interpolate back. Adds the representation error of a
    finer-grid model reported on the NOAA grid."""
    fine = refine_field(field, factor)
    if smooth_sigma > 0.0:
        nan_mask = np.isnan(fine)
        fine = ndimage.gaussian_filter(fill_nan_nearest(fine), smooth_sigma,
                                       mode=("nearest", "wrap"))
        fine[nan_mask] = np.nan
    return coarsen_field(fine, factor)
