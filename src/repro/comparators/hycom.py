"""Simulated HYCOM operational short-term forecast.

HYCOM properties the paper measures (Sec. IV-B, Table I, Figs. 6-7):

* re-initialized daily from assimilated observations, so it tracks the
  observed state closely — weekly Eastern-Pacific RMSE ~0.99-1.05 C,
  nearly flat across the 8 assessment weeks (each week's aggregate comes
  from fresh 4-day forecasts, not one long integration);
* runs at 1/12 degree and is interpolated onto the NOAA grid, adding
  representation error (the paper suspects part of HYCOM's error is this
  interpolation).

The simulator: truth + a damped anomaly error (it slightly under-tracks
the observed anomaly, as any assimilation system does), plus spatially
correlated model error and a fine-grid interpolation round trip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.comparators.regrid import fill_nan_nearest, regrid_roundtrip
from repro.data.sst import SyntheticSST
from repro.utils.validation import check_positive_int

__all__ = ["SimulatedHYCOM"]


@dataclass
class SimulatedHYCOM:
    """HYCOM-like assimilating short-term forecast of a truth archive.

    Parameters
    ----------
    truth:
        The observed (synthetic NOAA) archive.
    anomaly_damping:
        Fraction of the observed anomaly retained by the forecast
        (1.0 = perfect tracking). Applied to the deviation from the
        truth archive's own weekly climatology proxy.
    error_std:
        Std (degrees C) of spatially correlated model error per week.
    error_smooth_cells:
        Spatial correlation length of the model error, in grid cells.
    """

    truth: SyntheticSST
    anomaly_damping: float = 0.90
    error_std: float = 1.15
    error_smooth_cells: float = 3.0
    regrid_factor: int = 3
    seed: int = 77

    def __post_init__(self) -> None:
        check_positive_int(self.regrid_factor, name="regrid_factor")
        if not 0.0 <= self.anomaly_damping <= 1.0:
            raise ValueError(
                f"anomaly_damping must be in [0, 1], got {self.anomaly_damping}")
        if self.error_std < 0:
            raise ValueError(f"error_std must be non-negative, got {self.error_std}")

    def _model_error(self, t: int) -> np.ndarray:
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, self.truth.seed, t + (1 << 20))))
        white = rng.standard_normal(self.truth.grid.shape)
        smooth = ndimage.gaussian_filter(white, self.error_smooth_cells,
                                         mode=("nearest", "wrap"))
        std = smooth.std()
        if std > 0:
            smooth /= std
        return self.error_std * smooth

    def field(self, t: int) -> np.ndarray:
        """HYCOM forecast for week ``t`` on the NOAA grid (land NaN)."""
        return self.fields(np.asarray([t]))[0]

    def fields(self, indices) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        truth = self.truth.fields(idx)
        out = np.empty_like(truth)
        clim = self.truth._climatology  # slowly varying reference state
        for row, t in enumerate(idx):
            t = int(t)
            anomaly = truth[row] - clim
            forecast = clim + self.anomaly_damping * np.where(
                np.isnan(anomaly), 0.0, anomaly) + self._model_error(t)
            frame = regrid_roundtrip(
                np.where(self.truth.ocean_mask, forecast, np.nan),
                self.regrid_factor)
            frame[~self.truth.ocean_mask] = np.nan
            out[row] = frame
        return out

    def snapshots(self, indices) -> np.ndarray:
        """Flattened ocean-only forecast columns ``(N_h, n)``."""
        stack = self.fields(indices)
        return np.ascontiguousarray(stack[:, self.truth.ocean_mask].T)
