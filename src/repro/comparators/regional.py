"""Regional error metrics (paper Table I).

The paper reports weekly RMSE in the Eastern Pacific box (-10..+10
latitude, 200..250 longitude East) between April 5, 2015 and June 24,
2018, broken down by forecast week 1..8.
"""

from __future__ import annotations

import numpy as np

from repro.data.grid import LatLonGrid, Region

__all__ = ["regional_rmse", "weekly_rmse_breakdown"]


def regional_rmse(truth_fields: np.ndarray, forecast_fields: np.ndarray,
                  grid: LatLonGrid, region: Region,
                  ocean_mask: np.ndarray) -> float:
    """RMSE over all region ocean cells and all supplied weeks.

    Both field stacks have shape ``(n_weeks, n_lat, n_lon)`` with NaN land.
    """
    truth = np.asarray(truth_fields, dtype=np.float64)
    fc = np.asarray(forecast_fields, dtype=np.float64)
    if truth.shape != fc.shape:
        raise ValueError(
            f"truth {truth.shape} and forecast {fc.shape} shapes differ")
    if truth.ndim != 3:
        raise ValueError(f"expected (n, lat, lon) stacks, got {truth.shape}")
    cells = region.mask(grid) & ocean_mask
    if not cells.any():
        raise ValueError(f"region {region.name!r} contains no ocean cells")
    diff = truth[:, cells] - fc[:, cells]
    if np.isnan(diff).any():
        raise ValueError("NaNs inside the region ocean cells")
    return float(np.sqrt(np.mean(diff ** 2)))


def weekly_rmse_breakdown(truth_by_week: dict[int, np.ndarray],
                          forecast_by_week: dict[int, np.ndarray],
                          grid: LatLonGrid, region: Region,
                          ocean_mask: np.ndarray) -> dict[int, float]:
    """Per-lead-week RMSE (Table I rows).

    ``*_by_week`` map lead week (1-based) to ``(n, lat, lon)`` stacks.
    """
    if set(truth_by_week) != set(forecast_by_week):
        raise ValueError("truth and forecast lead weeks differ")
    return {week: regional_rmse(truth_by_week[week], forecast_by_week[week],
                                grid, region, ocean_mask)
            for week in sorted(truth_by_week)}
