"""Simulated process-based comparator models (paper Sec. IV-B).

The paper benchmarks the POD-LSTM against two PDE-based forecast systems:

* **CESM** — the Community Earth System Model large ensemble: century-
  scale coupled climate runs on a finer ocean grid, initialized once
  (decades before the assessment window) and never re-assimilated;
* **HYCOM** — the Navy's operational 1/12-degree short-term ocean
  forecast, re-initialized daily from observations.

Neither archive is reachable offline, so both are *simulated* with error
models that reproduce the properties the paper measures: CESM tracks the
climatology and the largest-scale modes but is uncorrelated with the
observed interannual state (Eastern-Pacific RMSE ~1.85 C); HYCOM tracks
the observed state closely with small lead-dependent error (~1.0 C);
both are produced on finer grids and interpolated onto the NOAA grid,
contributing representation error (explicitly noted by the paper).
"""

from repro.comparators.regrid import refine_field, coarsen_field, regrid_roundtrip
from repro.comparators.cesm import SimulatedCESM
from repro.comparators.hycom import SimulatedHYCOM
from repro.comparators.regional import regional_rmse, weekly_rmse_breakdown

__all__ = [
    "refine_field",
    "coarsen_field",
    "regrid_roundtrip",
    "SimulatedCESM",
    "SimulatedHYCOM",
    "regional_rmse",
    "weekly_rmse_breakdown",
]
