"""Simulated CESM large-ensemble forecast.

CESM properties the paper measures (Sec. IV-B, Table I, Figs. 5-7):

* initialized once, decades before the assessment window, so its
  interannual variability (ENSO phase, weather) is **uncorrelated** with
  the observed trajectory — "the POD coefficients of the CESM forecasts
  tend to pick up trends in the large-scale features (modes 1 and 2)
  appropriately but show distinct misalignment with increasing modes";
* it does capture climatology (seasonal cycle) and the secular trend;
* it runs on a finer ocean grid and is cubic-interpolated onto the NOAA
  grid, with its own systematic bias; Eastern-Pacific weekly RMSE
  ~1.83-1.88 C, flat in lead time (the forecast never re-initializes).

The simulator realizes exactly that: the truth generator's deterministic
*climatology + seasonal + trend* components, plus CESM-internal ENSO/
weather/eddy variability drawn from an independent seed (its own climate
trajectory), a small systematic bias, and a regrid round trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comparators.regrid import regrid_roundtrip
from repro.data.sst import SSTConfig, SyntheticSST
from repro.utils.validation import check_positive_int

__all__ = ["SimulatedCESM"]


@dataclass
class SimulatedCESM:
    """CESM-like long-horizon climate forecast aligned to a truth archive.

    Parameters
    ----------
    truth:
        The observed (synthetic NOAA) archive being forecast.
    member_seed:
        Which internal-variability trajectory this ensemble member rolls
        (independent of the truth seed by construction).
    bias:
        Systematic surface bias in degrees C (coupled models are rarely
        unbiased; the paper suspects interpolation/bias artifacts).
    regrid_factor:
        Ocean-grid refinement factor for the interpolation round trip.
    """

    truth: SyntheticSST
    member_seed: int = 1
    bias: float = 0.35
    regrid_factor: int = 2
    smooth_sigma: float = 1.2
    #: Fraction of interannual/eddy variance the coupled model carries —
    #: the simulated model under-disperses relative to observations (a
    #: common coupled-model deficiency), which keeps the mismatch RMSE
    #: near the paper's ~1.85 C instead of double-counting two
    #: independent full-variance ENSO trajectories.
    interannual_fraction: float = 0.3
    _internal: SyntheticSST = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.regrid_factor, name="regrid_factor")
        if self.member_seed == self.truth.seed:
            raise ValueError(
                "member_seed must differ from the truth seed — CESM's "
                "internal variability is uncorrelated with observations")
        if not 0.0 <= self.interannual_fraction <= 1.0:
            raise ValueError("interannual_fraction must be in [0, 1]")
        # The member's own climate trajectory: same climatology/seasonal/
        # trend physics, damped internal variability, different
        # realization of ENSO / weather / eddies.
        cfg = self.truth.config
        frac = self.interannual_fraction
        member_cfg = SSTConfig(
            seasonal_amplitude=cfg.seasonal_amplitude,
            seasonal_lag_fraction=cfg.seasonal_lag_fraction,
            semiannual_amplitude=cfg.semiannual_amplitude,
            enso_amplitude=frac * cfg.enso_amplitude,
            enso_lag_amplitude=frac * cfg.enso_lag_amplitude,
            enso_sq_amplitude=frac * cfg.enso_sq_amplitude,
            enso_growth_per_37y=cfg.enso_growth_per_37y,
            dipole_amplitude=frac * cfg.dipole_amplitude,
            weather_amplitude=frac * cfg.weather_amplitude,
            weather_week_units=cfg.weather_week_units,
            trend_per_year=cfg.trend_per_year,
            seasonal_drift=cfg.seasonal_drift,
            eddy_amplitude=frac * cfg.eddy_amplitude,
            eddy_rho=cfg.eddy_rho,
            eddy_smooth_cells=cfg.eddy_smooth_cells,
            eddy_truncation=cfg.eddy_truncation)
        self._internal = SyntheticSST(grid=self.truth.grid,
                                      seed=self.member_seed,
                                      config=member_cfg)

    def field(self, t: int) -> np.ndarray:
        """CESM forecast field for week ``t`` on the NOAA grid (land NaN)."""
        member = self._internal.field(t)
        out = regrid_roundtrip(member + self.bias, self.regrid_factor,
                               smooth_sigma=self.smooth_sigma)
        out[~self.truth.ocean_mask] = np.nan
        return out

    def fields(self, indices) -> np.ndarray:
        """Stack of forecasts, shape ``(len(indices), n_lat, n_lon)``."""
        idx = np.asarray(indices, dtype=np.int64)
        member = self._internal.fields(idx)
        out = np.empty_like(member)
        for row in range(idx.size):
            frame = regrid_roundtrip(member[row] + self.bias,
                                     self.regrid_factor,
                                     smooth_sigma=self.smooth_sigma)
            frame[~self.truth.ocean_mask] = np.nan
            out[row] = frame
        return out

    def snapshots(self, indices) -> np.ndarray:
        """Flattened ocean-only forecast columns ``(N_h, n)``."""
        stack = self.fields(indices)
        return np.ascontiguousarray(stack[:, self.truth.ocean_mask].T)
