"""Hybrid-cell architecture search (the paper's future-work direction).

The paper searches over stacked *LSTM* layers only; its related-work
section highlights neuroevolution over hybrid memory structures (LSTM vs
simpler cells) as a promising direction. This example runs aging
evolution over an extended operation catalog that mixes LSTM, GRU and
SimpleRNN cells, post-trains the winner with real NumPy training, and
saves the fitted emulator to disk.

Usage::

    python examples/hybrid_cells.py [--evals 1200]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import load_sst_dataset
from repro.forecast import load_emulator, posttrain_architecture, save_emulator
from repro.nas import AgingEvolution, ArchitecturePerformanceModel, SurrogateEvaluator
from repro.nas.space import StackedLSTMSpace, describe_architecture, hybrid_operations


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--evals", type=int, default=1200)
    parser.add_argument("--posttrain-epochs", type=int, default=40)
    args = parser.parse_args()

    space = StackedLSTMSpace(operations=hybrid_operations())
    kinds = sorted({op.kind for op in space.operations})
    print(f"Hybrid search space: {space.size:,} architectures over cell "
          f"kinds {kinds}")

    model = ArchitecturePerformanceModel(space, seed=0)
    evaluator = SurrogateEvaluator(space, model)
    search = AgingEvolution(space, rng=0)
    eval_rng = np.random.default_rng(1)
    for i in range(args.evals):
        arch = search.ask()
        search.tell(arch, evaluator.evaluate(arch, eval_rng).reward)
    print(f"best surrogate reward after {args.evals} evaluations: "
          f"{search.best_reward:.4f}")

    best = search.best_architecture
    print("\nBest hybrid architecture:")
    print(describe_architecture(space, best))

    print(f"\nPost-training for {args.posttrain_epochs} epochs ...")
    dataset = load_sst_dataset(degrees=4.0, seed=0)
    emulator = posttrain_architecture(space, best,
                                      dataset.training_snapshots(),
                                      epochs=args.posttrain_epochs, rng=0)
    print(f"  validation R^2: {emulator.validation_r2:.4f}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "hybrid-emulator.npz"
        save_emulator(emulator, path)
        loaded = load_emulator(path)
        test = dataset.snapshots(np.asarray(dataset.test_indices)[:120])
        print(f"  reloaded-from-disk test R^2: {loaded.score(test):.4f}")
    print("Done.")


if __name__ == "__main__":
    main()
