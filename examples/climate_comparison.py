"""Compare the POD-LSTM emulator against process-based forecast systems.

Reproduces the paper's Sec. IV-B science assessment on the synthetic
archive: Eastern-Pacific RMSE against the simulated CESM large-ensemble
member and the simulated HYCOM operational forecast, plus temperature
probes at the paper's three Eastern-Pacific locations (Fig. 7).

Usage::

    python examples/climate_comparison.py
"""

import numpy as np

from repro.comparators import SimulatedCESM, SimulatedHYCOM, regional_rmse
from repro.data import EASTERN_PACIFIC, load_sst_dataset
from repro.forecast import PODLSTMEmulator
from repro.nn.training import Trainer

PROBES = ((-5.0, 210.0), (5.0, 250.0), (10.0, 230.0))


def main() -> None:
    dataset = load_sst_dataset(degrees=4.0, seed=0)
    generator = dataset.generator

    print("Training the emulator (1981-1989) ...")
    emulator = PODLSTMEmulator(
        trainer=Trainer(epochs=60, batch_size=64, learning_rate=0.002))
    emulator.fit(dataset.training_snapshots(), rng=0)

    # Assessment window inside the test period (~2015-2016 analogue).
    targets = np.arange(1750, 1810)
    series_start = int(targets.min()) - emulator.pipeline.window
    series = dataset.snapshots(np.arange(series_start, targets.max() + 9))
    times, forecast_cols = emulator.forecast_fields(series, horizon=1)
    absolute = times + series_start
    keep = np.isin(absolute, targets)
    pod_fields = np.stack([generator.unflatten(col)
                           for col in forecast_cols[:, keep].T])

    truth = generator.fields(targets)
    cesm = SimulatedCESM(generator).fields(targets)
    hycom = SimulatedHYCOM(generator).fields(targets)

    print("\nEastern-Pacific RMSE over the assessment window (deg C):")
    for name, fields in [("POD-LSTM", pod_fields), ("HYCOM", hycom),
                         ("CESM", cesm)]:
        rmse = regional_rmse(truth, fields, generator.grid,
                             EASTERN_PACIFIC, generator.ocean_mask)
        print(f"  {name:9s}: {rmse:.2f}")

    print("\nProbe correlations with the observed series (Fig. 7):")
    for lat, lon in PROBES:
        i, j = generator.grid.nearest_index(lat, lon)
        t = truth[:, i, j]
        row = [f"({lat:+.0f}, {lon:.0f})"]
        for name, fields in [("POD-LSTM", pod_fields), ("HYCOM", hycom),
                             ("CESM", cesm)]:
            series_m = fields[:, i, j]
            corr = np.corrcoef(t, series_m)[0, 1]
            row.append(f"{name}={corr:+.2f}")
        print("  " + "  ".join(row))

    print("\nExpected shape (paper): POD-LSTM and HYCOM track the truth; "
          "CESM follows its own climate trajectory.")


if __name__ == "__main__":
    main()
