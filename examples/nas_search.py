"""Neural architecture search on the simulated Theta cluster.

Reproduces the paper's workflow end to end:

1. define the stacked-LSTM search space (8,605,184 architectures);
2. run aging evolution on a simulated 128-node partition against the
   calibrated surrogate evaluator (paper Fig. 3 conditions);
3. compare against random search;
4. post-train the best discovered architecture with *real* NumPy LSTM
   training on the synthetic archive (paper Sec. IV-B).

Usage::

    python examples/nas_search.py [--nodes 128] [--minutes 60]
"""

import argparse

import numpy as np

from repro import AgingEvolution, RandomSearch, StackedLSTMSpace, load_sst_dataset
from repro.forecast import posttrain_architecture
from repro.hpc import ThetaPartition, run_search
from repro.nas import ArchitecturePerformanceModel, SurrogateEvaluator
from repro.nas.space import describe_architecture


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=128)
    parser.add_argument("--minutes", type=float, default=60.0)
    parser.add_argument("--posttrain-epochs", type=int, default=60)
    args = parser.parse_args()

    space = StackedLSTMSpace()
    print(f"Search space: {space.size:,} architectures "
          f"({space.n_layers} LSTM nodes, {space.n_skip_nodes} skip nodes)")
    model = ArchitecturePerformanceModel(space, seed=0)
    partition = ThetaPartition(n_nodes=args.nodes,
                               wall_seconds=args.minutes * 60.0)

    results = {}
    for name, algorithm in [("aging evolution", AgingEvolution(space, rng=1)),
                            ("random search", RandomSearch(space, rng=1))]:
        evaluator = SurrogateEvaluator(space, model)
        tracker = run_search(algorithm, evaluator, partition, rng=7)
        times, rewards = tracker.reward_trajectory()
        print(f"\n{name} on {args.nodes} simulated nodes, "
              f"{args.minutes:.0f} simulated minutes:")
        print(f"  evaluations completed : {tracker.n_evaluations:,}")
        print(f"  node utilization      : {tracker.node_utilization():.3f}")
        print(f"  final avg reward      : {rewards[-1]:.4f}")
        print(f"  best reward           : {algorithm.best_reward:.4f}")
        results[name] = algorithm

    best = results["aging evolution"].best_architecture
    print("\nBest architecture found by aging evolution:")
    print(describe_architecture(space, best))

    print(f"\nPost-training the best architecture for "
          f"{args.posttrain_epochs} epochs on the synthetic archive ...")
    dataset = load_sst_dataset(degrees=4.0, seed=0)
    emulator = posttrain_architecture(space, best,
                                      dataset.training_snapshots(),
                                      epochs=args.posttrain_epochs, rng=0)
    print(f"  post-training validation R^2: {emulator.validation_r2:.4f} "
          f"(paper: 0.985)")
    test = dataset.snapshots(np.asarray(dataset.test_indices)[:260])
    print(f"  test-period windowed R^2    : {emulator.score(test):.4f}")


if __name__ == "__main__":
    main()
