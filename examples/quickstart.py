"""Quickstart: train a POD-LSTM emulator and forecast sea-surface
temperature.

Runs in under a minute on a laptop. Steps:

1. generate the synthetic NOAA-OI-SST-shaped archive (4-degree grid);
2. fit the emulator on the 1981-1989 training period (POD compression,
   per-mode scaling, windowed seq2seq LSTM training);
3. score windowed forecasts on held-out test years;
4. reconstruct a full temperature field from a forecast.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import PODLSTMEmulator, load_sst_dataset
from repro.nn.training import Trainer


def main() -> None:
    print("Loading the synthetic SST archive (4-degree grid) ...")
    dataset = load_sst_dataset(degrees=4.0, seed=0)
    train = dataset.training_snapshots()
    print(f"  training snapshots: {train.shape[1]} weeks x "
          f"{train.shape[0]} ocean cells")

    print("Fitting POD-LSTM emulator (Nr=5 modes, K=8 week windows) ...")
    emulator = PODLSTMEmulator(
        n_modes=5, window=8,
        trainer=Trainer(epochs=60, batch_size=64, learning_rate=0.002))
    history = emulator.fit(train, rng=0)
    print(f"  POD captures {emulator.pipeline.energy_fraction:.1%} of the "
          f"variance with 5 modes (paper: ~92%)")
    print(f"  validation R^2 after training: {history.final_val_r2:.3f}")

    print("Scoring on unseen test years (1990s) ...")
    test_idx = np.asarray(dataset.test_indices)[:260]  # five years
    test = dataset.snapshots(test_idx)
    print(f"  windowed forecast R^2: {emulator.score(test):.3f}")

    print("Reconstructing a forecast field ...")
    times, fields = emulator.forecast_fields(test, horizon=1)
    forecast = fields[:, 0]
    truth = test[:, times[0]]
    rmse = float(np.sqrt(np.mean((forecast - truth) ** 2)))
    date = dataset.calendar.date_of(int(test_idx[0] + times[0]))
    print(f"  week of {date}: global ocean RMSE = {rmse:.2f} deg C")
    grid_field = dataset.generator.unflatten(forecast)
    print(f"  forecast field range: {np.nanmin(grid_field):.1f} .. "
          f"{np.nanmax(grid_field):.1f} deg C")
    print("Done.")


if __name__ == "__main__":
    main()
