"""Scaling study: search methods across simulated node counts.

Reproduces the paper's Table III / Fig. 8 methodology: run aging
evolution, distributed PPO reinforcement learning and random search on
simulated Theta partitions of increasing size, reporting node
utilization, completed evaluations and unique high-performing
architectures.

Usage::

    python examples/scaling_study.py [--node-counts 33 64 128]
"""

import argparse

import numpy as np

from repro import AgingEvolution, DistributedRL, RandomSearch, StackedLSTMSpace
from repro.hpc import ThetaPartition, rl_node_allocation, run_search
from repro.nas import ArchitecturePerformanceModel, SurrogateEvaluator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--node-counts", type=int, nargs="+",
                        default=[33, 64, 128])
    parser.add_argument("--minutes", type=float, default=90.0)
    args = parser.parse_args()

    space = StackedLSTMSpace()
    model = ArchitecturePerformanceModel(space, seed=0)

    header = (f"{'nodes':>5}  {'method':>6}  {'util':>6}  {'evals':>7}  "
              f"{'uniq>0.96':>9}  {'best':>7}")
    print(header)
    print("-" * len(header))
    for n_nodes in args.node_counts:
        partition = ThetaPartition(n_nodes=n_nodes,
                                   wall_seconds=args.minutes * 60.0)
        wpa = rl_node_allocation(n_nodes).workers_per_agent
        methods = {
            "AE": AgingEvolution(space, rng=np.random.default_rng(
                (n_nodes, 1))),
            "RL": DistributedRL(space, rng=np.random.default_rng(
                (n_nodes, 2)), workers_per_agent=wpa),
            "RS": RandomSearch(space, rng=np.random.default_rng(
                (n_nodes, 3))),
        }
        for name, algorithm in methods.items():
            evaluator = SurrogateEvaluator(space, model)
            tracker = run_search(algorithm, evaluator, partition,
                                 rng=np.random.default_rng((n_nodes, 4)))
            print(f"{n_nodes:>5}  {name:>6}  "
                  f"{tracker.node_utilization():>6.3f}  "
                  f"{tracker.n_evaluations:>7,}  "
                  f"{tracker.n_unique_high_performers():>9,}  "
                  f"{algorithm.best_reward:>7.4f}")

    print("\nExpected shape (paper Table III): AE/RS utilization > 0.85, "
          "RL ~0.5; AE evaluates ~2x as many architectures as RL; counts "
          "scale ~linearly with node count.")


if __name__ == "__main__":
    main()
