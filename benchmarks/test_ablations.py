"""Ablation benchmarks for the design decisions DESIGN.md Sec. 5 lists.

These are extensions beyond the paper's figures: they probe the *claims*
behind the paper's design choices (ageing as noise regularization, the
value of skip connections, Nr=5, surrogate fidelity).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    ablate_aging,
    ablate_fidelity_ordering,
    ablate_pod_rank,
    ablate_sample_size,
    ablate_skip_connections,
)


def test_ablation_aging_regularizes_noise(benchmark, preset):
    result = run_once(benchmark, ablate_aging, preset)
    aging = np.mean(result["aging"])
    non_aging = np.mean(result["non-aging"])
    print(f"\nAblation: aging={aging:.4f} non-aging={non_aging:.4f} "
          f"(true quality of the best find, high-noise evaluations)")
    # The paper's claim (Sec. IV-A): ageing navigates training noise.
    # Replace-worst keeps lucky noisy scores forever; it must not beat
    # ageing, and typically trails it.
    assert aging >= non_aging - 0.002


def test_ablation_sample_size(benchmark, preset):
    result = run_once(benchmark, ablate_sample_size, preset)
    means = {s: float(np.mean(v)) for s, v in result.items()}
    print(f"\nAblation: best true quality by tournament size: {means}")
    # The paper's s=10 must be competitive with both extremes: too-greedy
    # (s=50) and too-random (s=2) selection should not dominate it.
    assert means[10] >= means[2] - 0.004
    assert means[10] >= means[50] - 0.004


def test_ablation_skip_connections(benchmark, preset):
    result = run_once(benchmark, ablate_skip_connections, preset)
    print(f"\nAblation: {result}")
    # Removing the discovered skips must not *improve* the architecture
    # (the search kept them for a reason); allow a small noise margin.
    assert result["with skips"] >= result["without skips"] - 0.02


def test_ablation_pod_rank(benchmark, preset):
    points = run_once(benchmark, ablate_pod_rank, preset)
    print("\nAblation: POD rank sweep")
    for p in points:
        print(f"  Nr={p.n_modes}: energy={p.energy_fraction:.3f} "
              f"proj_err={p.projection_error:.4f} val_R2={p.validation_r2:.3f}")
    # Reconstruction improves monotonically with Nr (paper Eq. 8) ...
    errs = [p.projection_error for p in points]
    assert all(b < a for a, b in zip(errs, errs[1:]))
    fracs = [p.energy_fraction for p in points]
    assert all(b > a for a, b in zip(fracs, fracs[1:]))
    # ... but forecastability does not: the added high modes are noisy
    # (the paper's justification for stopping at Nr=5).
    r2 = {p.n_modes: p.validation_r2 for p in points}
    assert r2[max(r2)] < r2[min(r2)] + 0.05


def test_ablation_surrogate_fidelity(benchmark, preset):
    result = run_once(benchmark, ablate_fidelity_ordering, preset)
    print(f"\nAblation: surrogate-vs-real ordering: {result}")
    # A clearly surrogate-strong architecture must also train better for
    # real than a clearly surrogate-weak one — the minimum property for
    # the surrogate-driven scale experiments to be meaningful.
    assert result["strong"]["surrogate"] > result["weak"]["surrogate"]
    assert result["strong"]["real"] > result["weak"]["real"]
