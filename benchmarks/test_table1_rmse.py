"""Table I benchmark: Eastern-Pacific weekly RMSE breakdown.

Paper shape: Predicted (POD-LSTM) <= HYCOM < CESM; all three systems
roughly flat across forecast weeks 1-8 (Predicted 0.62-0.69, HYCOM
0.99-1.05, CESM 1.83-1.88 on the real archive).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.table1_rmse import PAPER_TABLE1, run_table1
from repro.experiments.reporting import format_table


def test_table1_rmse_breakdown(benchmark, preset):
    result = run_once(benchmark, run_table1, preset)

    print("\nTable I — Eastern Pacific RMSE (deg C) by forecast week")
    headers = ["model"] + [f"wk{w}" for w in result.weeks]
    rows = [[name] + values for name, values in result.rmse.items()]
    print(format_table(headers, rows, float_fmt="{:.2f}"))
    print("paper:", {k: v[:3] for k, v in PAPER_TABLE1.items()})

    predicted = np.asarray(result.rmse["Predicted"])
    cesm = np.asarray(result.rmse["CESM"])
    hycom = np.asarray(result.rmse["HYCOM"])

    # Ordering at every lead week: the emulator is competitive with the
    # assimilating system and clearly beats the uninitialized climate run.
    assert np.all(cesm > hycom)
    assert np.all(predicted < cesm)
    if preset == "full":
        assert predicted.mean() <= hycom.mean() * 1.1
    # Flat rows: within-row spread is small relative to the level.
    for name, values in result.rmse.items():
        values = np.asarray(values)
        assert values.std() < 0.15 * values.mean(), name
    # CESM/Predicted ratio in the paper is ~2.9x; ours should exceed ~1.5x.
    assert cesm.mean() / predicted.mean() > 1.4
