"""Figure 7 benchmark: temporal probes at three Eastern-Pacific points.

Paper shape: HYCOM and POD-LSTM both track the observed series well
("shown to perform equally well"); CESM makes clear errors because of its
long-horizon formulation. Both data-driven systems capture the seasonal
trend at each probe.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig7_probes import PROBES, run_fig7
from repro.experiments.reporting import format_table


def test_fig7_temporal_probes(benchmark, preset):
    result = run_once(benchmark, run_fig7, preset)

    print("\nFigure 7 — probe correlation/RMSE (2015-04 .. 2018-06)")
    headers = ["model"] + [f"({lat:+.0f},{lon:.0f})" for lat, lon in PROBES]
    rows = []
    for name in result.rmse:
        rows.append([name] + [
            f"{result.correlation[name][p]:.2f}/{result.rmse[name][p]:.2f}"
            for p in PROBES])
    print(format_table(headers, rows))

    mean = lambda d: sum(d[p] for p in PROBES) / len(PROBES)
    # POD-LSTM and HYCOM both track the truth...
    assert mean(result.correlation["POD-LSTM"]) > 0.55
    assert mean(result.correlation["HYCOM"]) > 0.55
    # ...and both beat CESM on average correlation and RMSE.
    assert mean(result.correlation["POD-LSTM"]) > \
        mean(result.correlation["CESM"])
    assert mean(result.rmse["POD-LSTM"]) < mean(result.rmse["CESM"])
    assert mean(result.rmse["HYCOM"]) < mean(result.rmse["CESM"])
