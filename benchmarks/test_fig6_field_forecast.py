"""Figure 6 benchmark: sample field forecast for the week of 2015-06-14.

Paper shape: all three systems capture the large-scale temperature
structure; the POD-LSTM reproduces the large scales (its spectral content
is limited to the retained POD modes) and is closest to the truth in the
Eastern Pacific; CESM shows only qualitative agreement.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig6_field_forecast import run_fig6
from repro.experiments.reporting import format_table

import numpy as np


def test_fig6_field_forecast(benchmark, preset):
    result = run_once(benchmark, run_fig6, preset)

    print(f"\nFigure 6 — field forecast, week of {result.date}")
    rows = [[name, result.global_rmse[name],
             result.eastern_pacific_rmse[name],
             float(np.nanmin(field)), float(np.nanmax(field))]
            for name, field in result.fields.items()]
    print(format_table(["model", "global RMSE", "EP RMSE", "min T",
                        "max T"], rows, float_fmt="{:.2f}"))

    truth = result.fields["NOAA (truth)"]
    for name, field in result.fields.items():
        # Large-scale agreement: global pattern correlation is high.
        mask = np.isfinite(truth)
        corr = np.corrcoef(truth[mask], field[mask])[0, 1]
        assert corr > 0.95, name
        # Physically plausible temperature range.
        assert np.nanmin(field) > -15 and np.nanmax(field) < 45, name

    # The emulator beats CESM where it matters (Eastern Pacific).
    assert (result.eastern_pacific_rmse["POD-LSTM"]
            < result.eastern_pacific_rmse["CESM"])
