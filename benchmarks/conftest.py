"""Benchmark configuration.

Each benchmark regenerates one paper table/figure, prints the same rows/
series the paper reports, and asserts the *shape* findings (who wins, by
roughly what factor). Set ``REPRO_PRESET=full`` for paper-equivalent
budgets; the default ``quick`` preset keeps the whole harness laptop-fast
while preserving every qualitative conclusion.
"""

import os

import pytest


@pytest.fixture(scope="session")
def preset() -> str:
    return os.environ.get("REPRO_PRESET", "quick")


@pytest.fixture(scope="session")
def ctx(preset):
    from repro.experiments import get_context
    return get_context(preset)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
