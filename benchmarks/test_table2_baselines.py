"""Table II benchmark: R^2 of every forecasting method, train and test.

Paper shape reproduced here: the NAS architecture is the best LSTM on the
training period (paper: 0.985) and every LSTM beats the linear baseline
in-sample; the tree ensembles overfit (high train R^2, large test drop).

Documented deviation (EXPERIMENTS.md): on the synthetic archive the
classical baselines do not *collapse* on the 1990-2018 test period the
way they do on real SST (paper: linear 0.17, XGBoost -0.06, RF 0.00) —
the synthetic modal dynamics are smoother than the real ocean's.
"""

from benchmarks.conftest import run_once
from repro.experiments.table2_baselines import PAPER_TABLE2, run_table2
from repro.experiments.reporting import format_table


def test_table2_baselines(benchmark, preset):
    result = run_once(benchmark, run_table2, preset)

    print("\nTable II — forecast R^2 (uniform per-mode average)")
    rows = [[name, tr, te, *PAPER_TABLE2.get(name, ("-", "-"))]
            for name, (tr, te) in result.scores.items()]
    print(format_table(["model", "train", "test", "paper train",
                        "paper test"], rows))

    scores = result.scores
    lstm_names = [n for n in scores if n.startswith("LSTM-")]

    # NAS-POD-LSTM is the best LSTM-family model on the training period
    # (the paper's headline: automated design beats manual design).
    nas_train = scores["NAS-POD-LSTM"][0]
    assert all(nas_train >= scores[n][0] - 0.015 for n in lstm_names)
    if preset == "full":
        assert nas_train > 0.93  # paper: 0.985

    # The NAS LSTM beats the linear baseline in-sample (paper: 0.985 vs
    # 0.801); the manual variants need the full training budget for this.
    assert scores["NAS-POD-LSTM"][0] > scores["Linear"][0] - 0.01
    if preset == "full":
        for name in lstm_names:
            assert scores[name][0] > scores["Linear"][0] - 0.05, name

    # Tree ensembles overfit: large train-test generalization gap,
    # bigger than the linear model's gap (paper: XGB 0.97 -> -0.06).
    rf_gap = scores["Random Forest"][0] - scores["Random Forest"][1]
    lin_gap = scores["Linear"][0] - scores["Linear"][1]
    assert rf_gap > lin_gap

    # Everyone degrades out of distribution (paper: all columns drop).
    for name, (train, test) in scores.items():
        assert test < train, name
