"""Figure 4 benchmark: the best AE-discovered architecture.

Paper shape: the discovered architecture is a stacked LSTM with multiple
skip connections ("one can observe the unusual nature of our network").
"""

from benchmarks.conftest import run_once
from repro.experiments.fig4_best_architecture import run_fig4


def test_fig4_best_architecture(benchmark, preset):
    result = run_once(benchmark, run_fig4, preset)

    print("\nFigure 4 — best AE-discovered architecture")
    print(result.description)

    # A meaningful network was found: at least one LSTM layer plus the
    # constant head, and skip connections in use (paper Fig. 4 shows many).
    assert result.n_active_layers >= 1
    assert result.n_skip_connections >= 1
    assert result.n_parameters > 1000
