"""Figure 8 benchmark: unique high-performing architectures discovered.

Paper shape: the number of unique architectures with reward above the
threshold grows strongly with AE's node count (each doubling reaches the
previous size's final count well before the wall); at the end of the
search AE beats RL and RS comprehensively.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig8_scaling_architectures import run_fig8
from repro.experiments.reporting import format_table


def test_fig8_high_performers(benchmark, preset):
    node_counts = (33, 64, 128, 256, 512) if preset == "full" \
        else (33, 64, 128)
    result = run_once(benchmark, run_fig8, preset, node_counts=node_counts,
                      seed=23)

    print("\nFigure 8 — unique architectures with reward > 0.96")
    rows = [[n, c["AE"], c["RL"], c["RS"]]
            for n, c in sorted(result.final_counts.items())]
    print(format_table(["nodes", "AE", "RL", "RS"], rows))

    sizes = sorted(result.final_counts)
    # (a) AE's unique count grows with node count.
    ae_counts = [result.final_counts[n]["AE"] for n in sizes]
    assert all(b > a for a, b in zip(ae_counts, ae_counts[1:]))
    # Doubling nodes reaches the smaller run's final count early.
    for small, big in zip(sizes, sizes[1:]):
        target = result.final_counts[small]["AE"]
        times, counts = result.ae_curves[big]
        reached = times[np.searchsorted(counts, target)] if \
            counts.size and counts[-1] >= target else np.inf
        assert reached < 0.8 * times[-1], (small, big)
    # (b) AE beats RL and RS comprehensively at every size.
    for n in sizes:
        c = result.final_counts[n]
        assert c["AE"] > c["RL"], n
        assert c["AE"] > c["RS"], n
