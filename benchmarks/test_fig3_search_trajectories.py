"""Figure 3 benchmark: AE/RL/RS search trajectories on 128 nodes.

Paper shape: AE reaches ~0.96 within ~50 min (here: the first third of the
simulated wall time); RS plateaus at 0.93-0.94; RL starts with strong
exploration and trails AE throughout most of the search.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig3_trajectories import run_fig3
from repro.experiments.reporting import format_series


def test_fig3_search_trajectories(benchmark, preset):
    result = run_once(benchmark, run_fig3, preset, n_nodes=128, seed=7)

    print("\nFigure 3 — search trajectories (moving-average reward)")
    for name, (times, rewards) in result.trajectories.items():
        print(format_series(times, rewards, label=f"  {name}"))

    wall_min = result.trajectories["AE"][0][-1] / 60.0
    third = wall_min / 3.0
    # AE converges early to ~0.96+ (paper: 0.96 within 50 of 180 min).
    assert result.reward_at("AE", third) > 0.955
    # RS plateaus in the 0.93-0.94 band.
    assert 0.92 < result.reward_at("RS", wall_min) < 0.945
    # Ordering at the end: AE > RL > RS (paper Fig. 3).
    ae_end = result.reward_at("AE", wall_min)
    rl_end = result.reward_at("RL", wall_min)
    rs_end = result.reward_at("RS", wall_min)
    assert ae_end > rl_end > rs_end
    # RL improves over its own start (feedback works).
    assert rl_end > result.reward_at("RL", third) - 0.002
