"""Table III benchmark: node utilization and evaluation counts at scale.

Paper shape: AE/RS utilization > 0.85 at every node count while RL hovers
near 0.5 (synchronous barriers + idle agent nodes); AE completes roughly
2x the evaluations of RL everywhere; counts grow ~linearly with nodes.
"""

from benchmarks.conftest import run_once
from repro.experiments.table3_scaling import PAPER_TABLE3, run_table3
from repro.experiments.reporting import format_table
from repro.hpc.theta import PAPER_NODE_COUNTS


def test_table3_scaling(benchmark, preset):
    node_counts = PAPER_NODE_COUNTS if preset == "full" else (33, 64, 128)
    result = run_once(benchmark, run_table3, preset,
                      node_counts=node_counts, seed=11)

    print("\nTable III — node utilization / evaluations")
    rows = []
    for n_nodes, methods in sorted(result.table.items()):
        row = [n_nodes]
        for name in ("AE", "RL", "RS"):
            util, evals = methods[name]
            paper_util, paper_evals = PAPER_TABLE3[n_nodes][name]
            row.append(f"{util:.3f}/{evals} (paper {paper_util}/{paper_evals})")
        rows.append(row)
    print(format_table(["nodes", "AE", "RL", "RS"], rows))

    for n_nodes, methods in result.table.items():
        ae_util, ae_evals = methods["AE"]
        rl_util, rl_evals = methods["RL"]
        rs_util, rs_evals = methods["RS"]
        # Asynchronous methods keep nodes busy; RL does not.
        assert ae_util > 0.85, n_nodes
        assert rs_util > 0.85, n_nodes
        assert rl_util < 0.65, n_nodes
        # AE evaluates the most architectures; RL the fewest
        # (paper: AE ~2x RL at every size).
        assert ae_evals > rs_evals > rl_evals, n_nodes
        assert ae_evals > 1.5 * rl_evals, n_nodes

    # Evaluation counts scale ~linearly in nodes (paper: 2,093 -> 33,748
    # for AE between 33 and 512 nodes).
    sizes = sorted(result.table)
    for method in ("AE", "RS", "RL"):
        lo = result.table[sizes[0]][method][1]
        hi = result.table[sizes[-1]][method][1]
        ratio = sizes[-1] / sizes[0]
        assert hi / lo > 0.6 * ratio, method
