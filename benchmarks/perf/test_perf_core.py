"""Perf benchmarks — the pytest face of ``python -m repro.cli bench``.

Excluded from the default suite by the ``bench`` marker
(pyproject.toml); run with::

    PYTHONPATH=src python -m pytest benchmarks/perf -m bench -q

Set ``REPRO_BENCH_FULL=1`` for full workload sizes.
"""

import json
import os

import pytest

from repro.bench import default_suite, run_benchmark, run_suite, \
    validate_bench_data

pytestmark = pytest.mark.bench

QUICK = os.environ.get("REPRO_BENCH_FULL", "") != "1"
SUITE = default_suite(quick=QUICK)


@pytest.mark.parametrize("bench", SUITE, ids=[b.name for b in SUITE])
def test_benchmark_runs(bench):
    """Every benchmark runs, times positively, and keeps its metadata."""
    result = run_benchmark(bench, reps=3)
    assert result.mean_s > 0.0
    assert result.std_s >= 0.0
    assert result.metadata == bench.metadata


def test_suite_writes_valid_trajectory(tmp_path):
    """End-to-end: the suite writes a schema-valid BENCH_core.json."""
    out = tmp_path / "BENCH_core.json"
    results = run_suite(SUITE, reps=3, out_path=out)
    data = json.loads(out.read_text())
    validate_bench_data(data)
    assert set(data) == {b.name for b in SUITE}
    assert len(data) >= 6
    for name, result in results.items():
        assert data[name]["mean_s"] == result.mean_s
