"""Figure 9 benchmark: 10-seed variability of AE and RL on 128 nodes.

Paper shape: AE's reward and node-utilization bands are tight across
seeds ("the optimal performance of this search algorithm was not
fortuitous"); RL's reward stays below AE's for every seed and its
utilization is consistently low.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig9_variability import run_fig9
from repro.experiments.reporting import describe_distribution


def test_fig9_variability(benchmark, preset):
    reps = 10 if preset == "full" else 5
    result = run_once(benchmark, run_fig9, preset, n_nodes=128,
                      n_repetitions=reps, seed=31)

    print("\nFigure 9 — seed-to-seed variability (128 nodes)")
    for name in ("AE", "RL"):
        print(describe_distribution(result.final_rewards[name],
                                    label=f"  {name} final reward"))
        print(describe_distribution(result.utilizations[name],
                                    label=f"  {name} utilization"))

    ae_mean, ae_band = result.reward_band("AE")
    rl_mean, rl_band = result.reward_band("RL")
    # AE is reliably strong: tight 2-sigma band around a high mean.
    assert ae_mean > 0.955
    assert ae_band < 0.02
    # AE beats RL for every seed (paper: reward curves never cross).
    assert result.final_rewards["AE"].min() > \
        result.final_rewards["RL"].max()
    # Utilization separation holds across all seeds.
    assert result.utilizations["AE"].min() > 0.85
    assert result.utilizations["RL"].max() < 0.65
    # AE does more work than RL in every repetition.
    assert result.n_evaluations["AE"].min() > \
        1.4 * result.n_evaluations["RL"].max()
