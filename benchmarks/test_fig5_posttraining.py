"""Figure 5 benchmark: post-training convergence and coefficient forecasts.

Paper shape: post-training reaches a high validation R^2 (paper: 0.985);
training-period coefficients are tracked closely; test-period errors grow
with mode number; CESM's projected coefficients align with modes 1-2 only.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig5_posttraining import run_fig5
from repro.experiments.reporting import format_table


def test_fig5_posttraining(benchmark, preset):
    result = run_once(benchmark, run_fig5, preset)

    print("\nFigure 5 — post-training results "
          f"(validation R^2 = {result.validation_r2:.4f}; paper: 0.985)")
    rows = [[f"mode {m + 1}", result.train_mode_r2[m],
             result.test_mode_r2[m], result.cesm_mode_correlation[m]]
            for m in range(5)]
    print(format_table(["", "train R^2", "test R^2", "CESM corr"], rows))

    floor = 0.93 if preset == "full" else 0.80
    assert result.validation_r2 > floor
    # Training-period: leading modes tracked very well.
    assert result.train_mode_r2[0] > 0.95
    assert result.train_mode_r2[1] > 0.90
    # Test degrades relative to train (paper: 0.985 -> 0.876).
    assert max(result.test_mode_r2) <= max(result.train_mode_r2) + 0.02
    # Convergence: later epochs no worse than the early phase.
    early = max(result.epoch_r2[: max(1, len(result.epoch_r2) // 5)])
    assert result.epoch_r2[-1] >= early - 0.02
    # CESM tracks the seasonal pair but misaligns beyond (paper Fig. 5).
    assert result.cesm_mode_correlation[0] > 0.9
    assert result.cesm_mode_correlation[1] > 0.9
    assert min(result.cesm_mode_correlation[3:]) < 0.5
