from setuptools import setup

# Kept for legacy editable installs in offline environments without the
# `wheel` package; all metadata lives in pyproject.toml.
setup()
