import numpy as np
import pytest

from repro.forecast import PODCoefficientPipeline
from repro.forecast.scaling import StandardScaler


class TestPipeline:
    @pytest.fixture(scope="class")
    def fitted(self, train_snapshots):
        return PODCoefficientPipeline(n_modes=4, window=6).fit(
            train_snapshots)

    def test_transform_shape(self, fitted, train_snapshots):
        scaled = fitted.transform(train_snapshots)
        assert scaled.shape == (4, train_snapshots.shape[1])

    def test_training_data_scaled_into_head_range(self, fitted,
                                                  train_snapshots):
        scaled = fitted.transform(train_snapshots)
        assert np.abs(scaled).max() <= 0.85 + 1e-9

    def test_inverse_roundtrip(self, fitted, train_snapshots):
        scaled = fitted.transform(train_snapshots)
        raw = fitted.coefficients(train_snapshots)
        np.testing.assert_allclose(fitted.inverse(scaled), raw, atol=1e-8)

    def test_reconstruct_approximates_snapshots(self, fitted,
                                                train_snapshots):
        scaled = fitted.transform(train_snapshots)
        recon = fitted.reconstruct(scaled)
        rel = (np.linalg.norm(recon - train_snapshots)
               / np.linalg.norm(train_snapshots))
        assert rel < 0.1

    def test_windows_geometry(self, fitted, train_snapshots):
        examples = fitted.windows_from_snapshots(train_snapshots)
        assert examples.window == 6
        assert examples.n_features == 4
        assert examples.n_examples == train_snapshots.shape[1] - 12 + 1

    def test_energy_fraction(self, fitted):
        assert 0.5 < fitted.energy_fraction <= 1.0

    def test_use_before_fit(self, train_snapshots):
        pipe = PODCoefficientPipeline()
        with pytest.raises(RuntimeError):
            pipe.transform(train_snapshots)

    def test_custom_scaler(self, train_snapshots):
        pipe = PODCoefficientPipeline(n_modes=3, scaler=StandardScaler())
        pipe.fit(train_snapshots)
        scaled = pipe.transform(train_snapshots)
        np.testing.assert_allclose(scaled.std(axis=1), 1.0, atol=1e-9)

    def test_consistent_across_fits(self, train_snapshots):
        a = PODCoefficientPipeline(n_modes=3).fit(train_snapshots)
        b = PODCoefficientPipeline(n_modes=3).fit(train_snapshots)
        np.testing.assert_allclose(a.transform(train_snapshots),
                                   b.transform(train_snapshots))


class TestFittedState:
    """fitted_state()/from_fitted_state() — the bundle serialization
    contract: a restored pipeline is *exactly* the fitted one."""

    @pytest.fixture(scope="class")
    def fitted(self, train_snapshots):
        return PODCoefficientPipeline(n_modes=4, window=6).fit(
            train_snapshots)

    def test_round_trip_exact(self, fitted, train_snapshots):
        config, arrays = fitted.fitted_state()
        restored = PODCoefficientPipeline.from_fitted_state(config, arrays)
        assert restored.n_modes == fitted.n_modes
        assert restored.window == fitted.window
        np.testing.assert_array_equal(restored.basis.modes,
                                      fitted.basis.modes)
        np.testing.assert_array_equal(restored.basis.energies,
                                      fitted.basis.energies)
        np.testing.assert_array_equal(restored.transform(train_snapshots),
                                      fitted.transform(train_snapshots))
        windows_a = restored.windows_from_snapshots(train_snapshots)
        windows_b = fitted.windows_from_snapshots(train_snapshots)
        np.testing.assert_array_equal(windows_a.inputs, windows_b.inputs)

    def test_inverse_and_reconstruct_exact(self, fitted, train_snapshots):
        config, arrays = fitted.fitted_state()
        restored = PODCoefficientPipeline.from_fitted_state(config, arrays)
        scaled = fitted.transform(train_snapshots)
        np.testing.assert_array_equal(restored.inverse(scaled),
                                      fitted.inverse(scaled))
        np.testing.assert_array_equal(restored.reconstruct(scaled),
                                      fitted.reconstruct(scaled))

    def test_standard_scaler_round_trip(self, train_snapshots):
        pipe = PODCoefficientPipeline(n_modes=3, window=4,
                                      scaler=StandardScaler()).fit(
            train_snapshots)
        config, arrays = pipe.fitted_state()
        assert config["scaler"]["class"] == "StandardScaler"
        restored = PODCoefficientPipeline.from_fitted_state(config, arrays)
        assert isinstance(restored.scaler, StandardScaler)
        np.testing.assert_array_equal(restored.transform(train_snapshots),
                                      pipe.transform(train_snapshots))

    def test_state_is_decoupled_copy(self, fitted, train_snapshots):
        config, arrays = fitted.fitted_state()
        restored = PODCoefficientPipeline.from_fitted_state(config, arrays)
        restored.basis.modes[:] = 0.0  # mutating the copy...
        assert fitted.basis.modes.any()  # ...leaves the original intact

    def test_unfit_pipeline_rejected(self):
        with pytest.raises(RuntimeError, match="before fit"):
            PODCoefficientPipeline().fitted_state()

    def test_unknown_scaler_class_rejected(self, fitted):
        config, arrays = fitted.fitted_state()
        config["scaler"] = {"class": "MysteryScaler"}
        with pytest.raises(ValueError, match="unknown scaler"):
            PODCoefficientPipeline.from_fitted_state(config, arrays)
