import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam, clip_gradients


def quadratic_descent(optimizer, start, steps=200):
    """Minimize f(x) = ||x||^2 / 2 (gradient = x)."""
    x = np.array(start, dtype=np.float64)
    for _ in range(steps):
        optimizer.step([(x, x.copy())])
    return x


class TestSGD:
    def test_descends_quadratic(self):
        x = quadratic_descent(SGD(learning_rate=0.1), [5.0, -3.0])
        assert np.abs(x).max() < 1e-4

    def test_momentum_descends(self):
        x = quadratic_descent(SGD(learning_rate=0.05, momentum=0.9),
                              [5.0, -3.0])
        assert np.abs(x).max() < 1e-3

    def test_in_place_update(self):
        x = np.array([1.0])
        ref = x
        SGD(learning_rate=0.5).step([(x, np.array([1.0]))])
        assert ref is x
        assert x[0] == 0.5

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.0)


class TestAdam:
    def test_descends_quadratic(self):
        x = quadratic_descent(Adam(learning_rate=0.1), [5.0, -3.0],
                              steps=500)
        assert np.abs(x).max() < 1e-3

    def test_first_step_size_is_lr(self):
        """With bias correction, the first Adam step is ~lr regardless of
        gradient magnitude."""
        for g in (0.001, 1.0, 1000.0):
            x = np.array([0.0])
            Adam(learning_rate=0.1).step([(x, np.array([g]))])
            assert x[0] == pytest.approx(-0.1, rel=1e-4)

    def test_state_is_per_parameter(self):
        opt = Adam(learning_rate=0.1)
        a, b = np.array([1.0]), np.array([1.0])
        opt.step([(a, np.array([1.0]))])
        opt.step([(a, np.array([1.0])), (b, np.array([1.0]))])
        # b took one step, a took two: they must differ.
        assert a[0] != b[0]

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            Adam(epsilon=0.0)


class TestClipGradients:
    def test_noop_when_below(self):
        g = [np.array([1.0, 0.0])]
        norm = clip_gradients(g, max_norm=5.0)
        assert norm == pytest.approx(1.0)
        np.testing.assert_allclose(g[0], [1.0, 0.0])

    def test_scales_to_max_norm(self):
        g = [np.array([3.0, 4.0])]
        clip_gradients(g, max_norm=1.0)
        assert np.linalg.norm(g[0]) == pytest.approx(1.0)

    def test_global_norm_across_arrays(self):
        g = [np.array([3.0]), np.array([4.0])]
        norm = clip_gradients(g, max_norm=2.5)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(sum(float(np.sum(x * x)) for x in g))
        assert total == pytest.approx(2.5)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_gradients([np.ones(2)], 0.0)
