import numpy as np
import pytest

from repro.experiments.ascii_plots import (
    field_heatmap,
    sparkline,
    trajectory_panel,
)


class TestSparkline:
    def test_length_resampled(self):
        assert len(sparkline(np.arange(500), width=40)) == 40

    def test_short_series_kept(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_monotone_series_monotone_blocks(self):
        text = sparkline(np.linspace(0, 1, 9))
        order = [" ▁▂▃▄▅▆▇█".index(c) for c in text]
        assert order == sorted(order)

    def test_constant_series(self):
        text = sparkline([2.0, 2.0, 2.0])
        assert len(set(text)) == 1

    def test_shared_scale_clips(self):
        text = sparkline([10.0], value_range=(0.0, 1.0))
        assert text == "█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline(np.ones((2, 2)))
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestTrajectoryPanel:
    def test_names_and_scale_line(self):
        panel = trajectory_panel({
            "AE": (np.arange(5), np.linspace(0.9, 0.97, 5)),
            "RS": (np.arange(5), np.full(5, 0.93)),
        })
        assert "AE |" in panel and "RS |" in panel
        assert panel.splitlines()[0].startswith("scale:")

    def test_empty(self):
        assert "(no trajectories)" in trajectory_panel({})


class TestFieldHeatmap:
    def test_renders_land_and_ocean(self, generator):
        art = field_heatmap(generator.field(0), width=40)
        assert "#" in art          # continents
        assert any(c in art for c in "░▒▓█")
        assert art.splitlines()[-1].endswith("'#' = land]")

    def test_warm_equator_darker_than_poles(self, generator):
        """North-up rendering: middle rows (tropics) carry denser shades
        than the top rows (Arctic)."""
        art = field_heatmap(generator.field(0), width=40).splitlines()[:-1]
        shades = " ░▒▓█"
        def mean_shade(line):
            cells = [shades.index(c) for c in line if c in shades]
            return np.mean(cells) if cells else 0.0
        mid = mean_shade(art[len(art) // 2])
        top = mean_shade(art[0])
        assert mid > top

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            field_heatmap(np.full((4, 8), np.nan))

    def test_validation(self):
        with pytest.raises(ValueError):
            field_heatmap(np.ones(4))
        with pytest.raises(ValueError):
            field_heatmap(np.ones((2, 2)), width=0)
