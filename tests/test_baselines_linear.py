import numpy as np
import pytest

from repro.baselines import LinearRegressor
from repro.nn.metrics import r2_score


class TestLinearRegressor:
    def test_recovers_exact_linear_map(self, rng):
        w = rng.standard_normal((4, 3))
        b = rng.standard_normal(3)
        x = rng.standard_normal((60, 4))
        y = x @ w + b
        model = LinearRegressor().fit(x, y)
        np.testing.assert_allclose(model.coef_, w, atol=1e-8)
        np.testing.assert_allclose(model.intercept_, b, atol=1e-8)

    def test_prediction_r2_on_noisy_data(self, rng):
        x = rng.standard_normal((200, 5))
        y = x @ rng.standard_normal((5, 2)) + 0.01 * rng.standard_normal((200, 2))
        model = LinearRegressor().fit(x, y)
        assert r2_score(y, model.predict(x)) > 0.99

    def test_rank_deficient_handled(self, rng):
        x = rng.standard_normal((30, 3))
        x = np.hstack([x, x[:, :1]])  # duplicated column
        y = x @ np.ones((4, 1))
        model = LinearRegressor().fit(x, y)
        np.testing.assert_allclose(model.predict(x), y, atol=1e-8)

    def test_ridge_shrinks_coefficients(self, rng):
        x = rng.standard_normal((40, 6))
        y = x @ rng.standard_normal((6, 2)) + rng.standard_normal((40, 2))
        plain = LinearRegressor().fit(x, y)
        ridged = LinearRegressor(ridge=100.0).fit(x, y)
        assert np.linalg.norm(ridged.coef_) < np.linalg.norm(plain.coef_)

    def test_ridge_keeps_mean_prediction(self, rng):
        x = rng.standard_normal((50, 3))
        y = rng.standard_normal((50, 2)) + 5.0
        model = LinearRegressor(ridge=1e6).fit(x, y)
        np.testing.assert_allclose(model.predict(x).mean(axis=0),
                                   y.mean(axis=0), atol=0.2)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearRegressor().predict(np.ones((2, 2)))

    def test_feature_mismatch(self, rng):
        model = LinearRegressor().fit(rng.standard_normal((10, 3)),
                                      rng.standard_normal((10, 1)))
        with pytest.raises(ValueError):
            model.predict(np.ones((2, 4)))

    def test_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            LinearRegressor().fit(rng.standard_normal((10, 3)),
                                  rng.standard_normal((9, 1)))

    def test_negative_ridge(self):
        with pytest.raises(ValueError):
            LinearRegressor(ridge=-1.0)
