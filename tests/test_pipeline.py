"""Continuous-learning pipeline (repro.pipeline): feed replayability,
durable state, promotion-gate semantics, and the headline contract —
an interrupted-and-resumed pipeline reproduces the bitwise-identical
promotion sequence of an uninterrupted run, under climate drift
(docs/PIPELINE.md)."""

import numpy as np
import pytest

from repro.pipeline import (
    ContinuousPipeline,
    FeedConfig,
    PipelineConfig,
    PromotionDecision,
    SnapshotFeed,
    emulator_digest,
    field_rmse,
    load_state,
    validate_pipeline_status,
)
from repro.serve import ModelRegistry

# Small but real: 12-degree grid, 6-week batches, retrain every 3
# batches on a trailing 48-week window with 12 held-out weeks. Drift
# onset at week 40 so the validation window crosses it mid-stream and
# the promotion gate faces genuine regime change.
FEED = FeedConfig(degrees=12.0, seed=3, batch_weeks=6, n_weeks=108,
                  scenario="none")
CONFIG = PipelineConfig(n_modes=3, pod_rank=6, window=4, retrain_every=3,
                        train_weeks=48, val_weeks=12, epochs=1,
                        batch_size=16, lstm_units=8, seed=1)


def drift_feed(scenario: str) -> FeedConfig:
    return FeedConfig(degrees=12.0, seed=3, batch_weeks=6, n_weeks=108,
                      scenario=scenario, scenario_onset_week=40,
                      scenario_ramp_weeks=20)


def decision_tuple(d: PromotionDecision) -> tuple:
    """Everything the determinism contract covers, floats unrounded."""
    return (d.retrain_index, d.batch_index, d.week_end, d.version,
            d.candidate_rmse, d.active_rmse, d.promoted, d.reason)


class TestSnapshotFeed:
    def test_batches_cover_stream_exactly(self):
        feed = SnapshotFeed(FEED)
        assert feed.n_batches == 18
        weeks = np.concatenate([feed.batch_indices(b) for b in range(18)])
        np.testing.assert_array_equal(weeks, np.arange(108))
        assert feed.batch_indices(18).size == 0

    def test_short_final_batch(self):
        feed = SnapshotFeed(FeedConfig(degrees=12.0, batch_weeks=4,
                                       n_weeks=10))
        assert feed.n_batches == 3
        np.testing.assert_array_equal(feed.batch_indices(2), [8, 9])

    def test_replayable(self):
        a = SnapshotFeed(FEED)
        b = SnapshotFeed(FEED)
        _, block_a = a.batch(7)
        _, block_b = b.batch(7)
        np.testing.assert_array_equal(block_a, block_b)

    def test_batches_iterator_matches_random_access(self):
        feed = SnapshotFeed(FeedConfig(degrees=12.0, batch_weeks=30,
                                       n_weeks=60))
        seen = list(feed.batches())
        assert [b for b, _, _ in seen] == [0, 1]
        np.testing.assert_array_equal(seen[1][2], feed.batch(1)[1])

    def test_unbounded_feed_has_no_batch_count(self):
        feed = SnapshotFeed(FeedConfig(degrees=12.0, n_weeks=None))
        assert feed.n_batches is None
        assert feed.batch_indices(1000).size == 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FeedConfig(batch_weeks=0)
        with pytest.raises(ValueError):
            FeedConfig(n_weeks=0)
        with pytest.raises(ValueError):
            FeedConfig(scenario="nope")

    def test_config_json_round_trip(self):
        cfg = drift_feed("enso_shift")
        assert FeedConfig.from_json(cfg.as_json()) == cfg


class TestPipelineConfig:
    def test_json_round_trip(self):
        assert PipelineConfig.from_json(CONFIG.as_json()) == CONFIG

    def test_validation(self):
        with pytest.raises(ValueError, match="pod_rank"):
            PipelineConfig(n_modes=8, pod_rank=4)
        with pytest.raises(ValueError, match="val_weeks"):
            PipelineConfig(window=8, val_weeks=10)
        with pytest.raises(ValueError, match="retrain_every"):
            PipelineConfig(retrain_every=0)


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "reg")


class TestPipelineLoop:
    def test_full_run_promotes_and_rejects(self, tmp_path, registry):
        pipe = ContinuousPipeline(tmp_path / "state", registry, FEED,
                                  CONFIG)
        decisions = pipe.run()
        # 18 batches, retrain at batches 2,5,8,11,14,17 — but only once
        # 60 ingested weeks cover train+val: batches 9(60w)... -> at
        # batch 11, 14, 17.
        assert [d.batch_index for d in decisions] == [11, 14, 17]
        assert decisions[0].promoted and decisions[0].reason == "no-active"
        assert registry.active() is not None
        assert set(registry.versions()) == {
            d.version for d in decisions if d.promoted}
        promoted = [d for d in decisions if d.promoted]
        rejected = [d for d in decisions if not d.promoted]
        assert pipe.state.promotions == len(promoted)
        assert pipe.state.rejections == len(rejected)
        # Rejected versions are never published.
        assert not any(d.version in registry.versions() for d in rejected)

    def test_state_persisted_every_batch(self, tmp_path, registry):
        pipe = ContinuousPipeline(tmp_path / "state", registry, FEED,
                                  CONFIG)
        pipe.run(max_batches=2)
        state = load_state(tmp_path / "state.npz")
        assert state.next_batch == 2
        assert state.snapshots_ingested == 12
        assert state.basis_updates == 2
        assert state.pod.basis_version == 2

    def test_resume_refuses_different_feed(self, tmp_path, registry):
        ContinuousPipeline(tmp_path / "state", registry, FEED,
                           CONFIG).run(max_batches=1)
        with pytest.raises(ValueError, match="refusing to resume"):
            ContinuousPipeline(tmp_path / "state", registry,
                               drift_feed("enso_shift"), CONFIG)

    def test_resume_refuses_different_protocol(self, tmp_path, registry):
        ContinuousPipeline(tmp_path / "state", registry, FEED,
                           CONFIG).run(max_batches=1)
        other = PipelineConfig.from_json(
            {**CONFIG.as_json(), "retrain_every": 5})
        with pytest.raises(ValueError, match="refusing"):
            ContinuousPipeline(tmp_path / "state", registry, FEED, other)

    def test_resume_classmethod_reads_configs(self, tmp_path, registry):
        ContinuousPipeline(tmp_path / "state", registry,
                           drift_feed("enso_shift"),
                           CONFIG).run(max_batches=1)
        resumed = ContinuousPipeline.resume(tmp_path / "state", registry)
        assert resumed.feed.config == drift_feed("enso_shift")
        assert resumed.config == CONFIG
        with pytest.raises(FileNotFoundError):
            ContinuousPipeline.resume(tmp_path / "missing", registry)

    def test_unbounded_feed_requires_max_batches(self, tmp_path,
                                                 registry):
        pipe = ContinuousPipeline(
            tmp_path / "state", registry,
            FeedConfig(degrees=12.0, n_weeks=None), CONFIG)
        with pytest.raises(ValueError, match="max_batches"):
            pipe.run()

    def test_status_document_validates(self, tmp_path, registry):
        pipe = ContinuousPipeline(tmp_path / "state", registry, FEED,
                                  CONFIG)
        pipe.run()
        status = validate_pipeline_status(pipe.status())
        assert status["stream"]["weeks_ingested"] == 108
        assert status["counters"]["retrains"] == 3
        assert status["active"] == registry.active()
        # and the validator actually rejects malformed documents
        broken = {**status, "counters": {**status["counters"],
                                         "retrains": 99}}
        with pytest.raises(ValueError, match="retrains"):
            validate_pipeline_status(broken)

    def test_report_embeds_registry_report(self, tmp_path, registry):
        pipe = ContinuousPipeline(tmp_path / "state", registry, FEED,
                                  CONFIG)
        pipe.run()
        report = pipe.report()
        assert registry.report() in report
        for d in pipe.state.decisions:
            assert d.version in report


class TestPromotionGate:
    def test_promotion_iff_strict_improvement(self, tmp_path, registry):
        pipe = ContinuousPipeline(tmp_path / "state", registry, FEED,
                                  CONFIG)
        decisions = pipe.run()
        gated = [d for d in decisions if d.active_rmse is not None]
        assert gated, "expected at least one gated retrain"
        for d in gated:
            assert d.promoted == (d.candidate_rmse < d.active_rmse)
            assert d.reason == ("improved" if d.promoted
                                else "not-improved")

    def test_field_rmse_definition(self, tmp_path, registry):
        pipe = ContinuousPipeline(tmp_path / "state", registry, FEED,
                                  CONFIG)
        pipe.run()
        _, emulator = registry.load()
        feed = SnapshotFeed(FEED)
        val = feed.snapshots(np.arange(96, 108))
        times, fields = emulator.forecast_fields(val, horizon=1)
        expected = float(np.sqrt(np.mean(
            (val[:, times] - fields) ** 2)))
        assert field_rmse(emulator, val) == pytest.approx(expected,
                                                          rel=1e-12)


def run_pipeline(tmp_path, feed, interrupt_at=()):
    """One complete pipeline run, optionally killed-and-resumed after
    the given batch counts. Returns the promotion-sequence identity."""
    registry = ModelRegistry(tmp_path / "reg")
    decisions = []
    done = 0
    for stop in interrupt_at:
        pipe = ContinuousPipeline(tmp_path / "state", registry, feed,
                                  CONFIG)
        decisions += pipe.run(max_batches=stop - done)
        done = stop
        del pipe  # simulate process death; only the state file survives
    pipe = ContinuousPipeline(tmp_path / "state", registry, feed, CONFIG)
    decisions += pipe.run()
    _, active = registry.load()
    return ([decision_tuple(d) for d in decisions],
            registry.versions(), registry.active(),
            emulator_digest(active),
            [decision_tuple(d) for d in pipe.state.decisions])


class TestDeterministicResume:
    """The acceptance contract: interrupted-and-resumed == uninterrupted,
    bitwise, for the full promotion sequence, under both drift
    scenarios."""

    @pytest.mark.parametrize("scenario",
                             ["enso_shift", "trend_acceleration"])
    def test_interrupted_equals_uninterrupted(self, tmp_path, scenario):
        feed = drift_feed(scenario)
        baseline = run_pipeline(tmp_path / "a", feed)
        # Kill once mid-ingest (before any retrain) and once between
        # retrains; resume each time from the state artifact alone.
        resumed = run_pipeline(tmp_path / "b", feed,
                               interrupt_at=(5, 13))
        assert resumed == baseline

    def test_interrupt_immediately_after_retrain_batch(self, tmp_path):
        """The publish-then-save window: state saved right after the
        batch that retrained; next run must not retrain twice."""
        feed = drift_feed("enso_shift")
        baseline = run_pipeline(tmp_path / "a", feed)
        resumed = run_pipeline(tmp_path / "b", feed,
                               interrupt_at=(12,))  # batch 11 retrained
        assert resumed == baseline

    def test_no_drift_also_deterministic(self, tmp_path):
        baseline = run_pipeline(tmp_path / "a", FEED)
        resumed = run_pipeline(tmp_path / "b", FEED, interrupt_at=(9,))
        assert resumed == baseline

    def test_scenarios_change_outcomes(self, tmp_path):
        """Drift must actually flow into the decisions: the RMSE
        sequences under drift differ from no-drift."""
        none = run_pipeline(tmp_path / "a", FEED)
        enso = run_pipeline(tmp_path / "b", drift_feed("enso_shift"))
        assert none[0] != enso[0]
