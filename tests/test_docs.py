"""Documentation integrity: every `repro.*` dotted path and every
`repro <subcommand>` cited anywhere in README.md or docs/*.md must
resolve against the actual package and CLI — documentation drift fails
here, not in a reader's terminal. Also pins the docs index: INDEX.md
links every guide, README links INDEX.md."""

import importlib
import importlib.util
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

#: Dotted references: `repro.pod`, `repro.serve.registry.ModelRegistry`,
#: `repro.nn.detmath.batch_invariant` ... (trailing `()` not captured).
_DOTTED = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

#: CLI citations: `repro <word>` / `python -m repro <word>` /
#: `python -m repro.cli <word>`. The lookbehind skips Python import
#: statements (`from repro import ...`).
_SUBCOMMAND = re.compile(
    r"(?<!from )\brepro(?:\.cli)? (?!import\b)([a-z][a-z0-9]*)\b")


def _doc_ids():
    return [p.relative_to(REPO).as_posix() for p in DOC_FILES]


def _resolves(path: str) -> bool:
    """True when ``path`` is an importable module, or an attribute chain
    hanging off one (class, function, constant)."""
    parts = path.split(".")
    for split in range(len(parts), 0, -1):
        module = ".".join(parts[:split])
        try:
            spec = importlib.util.find_spec(module)
        except (ModuleNotFoundError, ValueError):
            spec = None
        if spec is None:
            continue
        obj = importlib.import_module(module)
        for attr in parts[split:]:
            if not hasattr(obj, attr):
                return False
            obj = getattr(obj, attr)
        return True
    return False


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_cited_module_paths_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    cited = sorted(set(_DOTTED.findall(text)))
    assert cited, f"{doc.name} cites no repro.* paths (regex broken?)"
    broken = [path for path in cited if not _resolves(path)]
    assert not broken, (
        f"{doc.name} cites repro.* paths that do not resolve: {broken}")


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_cited_subcommands_exist(doc):
    from repro.cli import EXPERIMENTS, SUBCOMMANDS
    valid = set(EXPERIMENTS) | set(SUBCOMMANDS) | {"all", "list"}
    text = doc.read_text(encoding="utf-8")
    cited = set(_SUBCOMMAND.findall(text))
    unknown = sorted(cited - valid)
    assert not unknown, (
        f"{doc.name} cites unknown repro subcommands {unknown}; "
        f"valid: {sorted(valid)}")


def test_every_guide_is_indexed():
    index = (REPO / "docs" / "INDEX.md").read_text(encoding="utf-8")
    guides = sorted(p.name for p in (REPO / "docs").glob("*.md")
                    if p.name != "INDEX.md")
    assert guides, "docs/ has no guides"
    missing = [name for name in guides if f"({name})" not in index]
    assert not missing, f"docs/INDEX.md does not link {missing}"


def test_readme_links_docs_index():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "docs/INDEX.md" in readme


def test_index_relative_links_exist():
    """Every relative markdown link in INDEX.md points at a real file."""
    index_dir = REPO / "docs"
    text = (index_dir / "INDEX.md").read_text(encoding="utf-8")
    targets = re.findall(r"\]\(([^)#\s]+)\)", text)
    assert targets
    broken = [t for t in targets
              if not t.startswith("http") and not (index_dir / t).exists()]
    assert not broken, f"docs/INDEX.md links missing files: {broken}"


def test_readme_relative_links_exist():
    text = (REPO / "README.md").read_text(encoding="utf-8")
    targets = re.findall(r"\]\(([^)#\s]+)\)", text)
    broken = [t for t in targets
              if not t.startswith("http") and not (REPO / t).exists()]
    assert not broken, f"README.md links missing files: {broken}"


def test_docs_cli_examples_use_real_flags():
    """Smoke-parse every `repro pipeline ...` example's subcommand word
    — the new CLI this PR documents — against its argparse tree."""
    from repro.cli import pipeline_main
    pattern = re.compile(r"repro(?:\.cli)? pipeline ([a-z]+)")
    cited = set()
    for doc in DOC_FILES:
        cited |= set(pattern.findall(doc.read_text(encoding="utf-8")))
    assert cited == {"run", "status"}
    for action in cited:
        with pytest.raises(SystemExit) as err:
            pipeline_main([action, "--help"])
        assert err.value.code == 0
