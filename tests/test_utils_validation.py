import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_matrix,
    check_positive_int,
    check_probability,
)


class TestCheckArray:
    def test_list_converted(self):
        out = check_array([[1, 2], [3, 4]])
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float64

    def test_contiguous(self):
        x = np.ones((4, 4))[::2]
        assert check_array(x).flags["C_CONTIGUOUS"]

    def test_ndim_enforced(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array(np.ones(3), ndim=2)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_array([1.0, np.nan])

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_array([1.0, np.inf])

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="myarr"):
            check_array([np.nan], name="myarr")


class TestCheckMatrix:
    def test_accepts_2d(self):
        assert check_matrix(np.ones((2, 3))).shape == (2, 3)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_matrix(np.ones(3))

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            check_matrix(np.ones((2, 2, 2)))


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(5) == 5

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(3)) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-1)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, p):
        assert check_probability(p) == p

    @pytest.mark.parametrize("p", [-0.1, 1.1, 2.0])
    def test_rejects_invalid(self, p):
        with pytest.raises(ValueError):
            check_probability(p)
