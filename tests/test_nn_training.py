import numpy as np
import pytest

from repro.baselines import build_manual_lstm
from repro.nn import LSTMLayer, Network, Trainer
from repro.nn.training import History


def toy_problem(rng, n=120, t=6, f=2):
    x = rng.standard_normal((n, t, f))
    y = 0.3 * np.cumsum(x, axis=1)
    return x, y


class TestTrainer:
    def test_loss_decreases(self, rng):
        x, y = toy_problem(rng)
        net = build_manual_lstm(12, 1, input_dim=2, output_dim=2, rng=0)
        history = Trainer(epochs=40, batch_size=32).fit(net, x, y, rng=0)
        assert history.train_loss[-1] < history.train_loss[0] * 0.5

    def test_validation_tracked(self, rng):
        x, y = toy_problem(rng)
        net = build_manual_lstm(8, 1, input_dim=2, output_dim=2, rng=0)
        history = Trainer(epochs=5, batch_size=32).fit(
            net, x[:80], y[:80], x[80:], y[80:], rng=0)
        assert history.n_epochs == 5
        assert len(history.val_r2) == 5
        assert np.isfinite(history.val_r2).all()

    def test_reproducible(self, rng):
        x, y = toy_problem(rng)
        h1 = Trainer(epochs=3, batch_size=16).fit(
            build_manual_lstm(6, 1, input_dim=2, output_dim=2, rng=1),
            x, y, rng=7)
        h2 = Trainer(epochs=3, batch_size=16).fit(
            build_manual_lstm(6, 1, input_dim=2, output_dim=2, rng=1),
            x, y, rng=7)
        np.testing.assert_allclose(h1.train_loss, h2.train_loss)

    def test_zero_epochs(self, rng):
        x, y = toy_problem(rng, n=20)
        net = build_manual_lstm(4, 1, input_dim=2, output_dim=2, rng=0)
        history = Trainer(epochs=0).fit(net, x, y, rng=0)
        assert history.n_epochs == 0

    def test_zero_epochs_invariants(self, rng):
        """epochs=0 is a no-op: weights untouched bitwise, history empty
        and saying so, the R^2 accessors failing with a useful message."""
        x, y = toy_problem(rng, n=20)
        net = build_manual_lstm(4, 1, input_dim=2, output_dim=2, rng=0)
        before = [w.copy() for w in net.get_weights()]
        history = Trainer(epochs=0, lr_decay=0.5, patience=3).fit(
            net, x, y, rng=0)
        for w_before, w_after in zip(before, net.get_weights(),
                                     strict=True):
            np.testing.assert_array_equal(w_before, w_after)
        assert history.is_empty
        assert history.learning_rates == []
        with pytest.raises(ValueError, match="epochs=0"):
            history.best_val_r2
        with pytest.raises(ValueError, match="epochs=0"):
            history.final_val_r2

    def test_lr_decay_schedule_recorded(self, rng):
        x, y = toy_problem(rng, n=20)
        net = build_manual_lstm(4, 1, input_dim=2, output_dim=2, rng=0)
        history = Trainer(epochs=3, learning_rate=0.01,
                          lr_decay=0.5).fit(net, x, y, rng=0)
        assert history.learning_rates == pytest.approx(
            [0.01, 0.005, 0.0025])

    def test_lr_decay_consistent_under_early_stop(self, rng):
        """An early-stopped run records the same per-epoch learning
        rates as the prefix of an un-stopped run (decay applies between
        epochs, so a break cannot skip or double-apply it)."""
        x, y = toy_problem(rng)
        kwargs = dict(epochs=8, batch_size=32, learning_rate=0.01,
                      lr_decay=0.5)
        stopped = Trainer(patience=1, min_delta=10.0, **kwargs).fit(
            build_manual_lstm(4, 1, input_dim=2, output_dim=2, rng=0),
            x[:80], y[:80], x[80:], y[80:], rng=0)
        free = Trainer(**kwargs).fit(
            build_manual_lstm(4, 1, input_dim=2, output_dim=2, rng=0),
            x[:80], y[:80], x[80:], y[80:], rng=0)
        n = stopped.n_epochs
        assert 0 < n < free.n_epochs
        assert stopped.learning_rates == pytest.approx(
            free.learning_rates[:n])
        assert len(stopped.learning_rates) == n

    def test_batch_larger_than_data(self, rng):
        x, y = toy_problem(rng, n=10)
        net = build_manual_lstm(4, 1, input_dim=2, output_dim=2, rng=0)
        history = Trainer(epochs=2, batch_size=512).fit(net, x, y, rng=0)
        assert history.n_epochs == 2

    def test_mismatched_examples(self, rng):
        x, y = toy_problem(rng, n=10)
        net = build_manual_lstm(4, 1, input_dim=2, output_dim=2, rng=0)
        with pytest.raises(ValueError):
            Trainer(epochs=1).fit(net, x, y[:5], rng=0)

    def test_val_requires_both(self, rng):
        x, y = toy_problem(rng, n=10)
        net = build_manual_lstm(4, 1, input_dim=2, output_dim=2, rng=0)
        with pytest.raises(ValueError, match="both"):
            Trainer(epochs=1).fit(net, x, y, x_val=x, rng=0)

    def test_empty_training_set(self, rng):
        net = build_manual_lstm(4, 1, input_dim=2, output_dim=2, rng=0)
        with pytest.raises(ValueError, match="zero examples"):
            Trainer(epochs=1).fit(net, np.zeros((0, 3, 2)),
                                  np.zeros((0, 3, 2)), rng=0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Trainer(batch_size=0)
        with pytest.raises(ValueError):
            Trainer(epochs=-1)

    def test_clipping_keeps_training_stable(self, rng):
        """A deep stack with an aggressive learning rate survives when
        clip_norm is enabled."""
        x, y = toy_problem(rng, n=60)
        net = build_manual_lstm(8, 3, input_dim=2, output_dim=2, rng=0)
        history = Trainer(epochs=5, batch_size=16, learning_rate=0.05,
                          clip_norm=1.0).fit(net, x, y, rng=0)
        assert np.isfinite(history.train_loss).all()


class TestHistory:
    def test_best_and_final(self):
        h = History(train_loss=[1, 2, 3], val_loss=[1, 2, 3],
                    val_r2=[0.1, 0.5, 0.3])
        assert h.best_val_r2 == 0.5
        assert h.final_val_r2 == 0.3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            History().best_val_r2
        with pytest.raises(ValueError):
            History().final_val_r2
