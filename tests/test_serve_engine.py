"""Micro-batching forecast engine (repro.serve.engine).

The load-bearing suite is ``TestDifferentialBitwise``: whatever way
concurrent requests get coalesced (max_batch 1/4/8, real client
threads), every response must be **bitwise identical** (exact ``==``)
to a serial one-at-a-time ``PODLSTMEmulator`` forecast — the serving
determinism contract of docs/SERVING.md, implemented by
repro.nn.detmath's batch-invariant kernels.

The behavioural tests (shed, timeout, stop, coalescing) drive the
worker deterministically by replacing ``engine._infer`` with a gate
that blocks until the test releases it.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import obs
from repro.serve import (EngineConfig, EngineOverloaded, ForecastCache,
                         ForecastEngine, ForecastTimeout, window_digest)


@pytest.fixture(scope="module")
def pool(tiny_emulator, generator):
    """32 distinct real request windows in scaled coefficient space."""
    snaps = generator.snapshots(np.arange(60))
    return tiny_emulator.pipeline.windows_from_snapshots(snaps).inputs[:32]


@pytest.fixture(scope="module")
def serial(tiny_emulator, pool):
    """The reference: every window forecast one at a time, no engine."""
    return [tiny_emulator.predict_windows(w[None])[0] for w in pool]


def _gated_engine(emulator, **overrides):
    """Engine whose inference blocks until the test releases it —
    deterministic control over what is queued while a batch is in
    flight. Returns (engine, entered, release)."""
    engine = ForecastEngine(emulator, cache_entries=0, **overrides)
    entered, release = threading.Event(), threading.Event()
    original = engine._infer

    def gated(stacked):
        entered.set()
        assert release.wait(10), "test never released the worker"
        return original(stacked)

    engine._infer = gated
    return engine, entered, release


class TestDifferentialBitwise:
    @pytest.mark.parametrize("max_batch", [1, 4, 8])
    def test_concurrent_responses_equal_serial(self, tiny_emulator, pool,
                                               serial, max_batch):
        with ForecastEngine(tiny_emulator, max_batch=max_batch,
                            cache_entries=0) as engine:
            with ThreadPoolExecutor(max_workers=8) as executor:
                futures = [executor.submit(engine.forecast, w)
                           for w in pool]
                outputs = [f.result() for f in futures]
        for output, reference in zip(outputs, serial, strict=True):
            assert np.array_equal(output, reference)  # exact ==

    def test_single_submit_equals_serial(self, tiny_emulator, pool,
                                         serial):
        with ForecastEngine(tiny_emulator, cache_entries=0) as engine:
            output = engine.forecast(pool[0])
        assert np.array_equal(output, serial[0])

    def test_cached_response_bitwise(self, tiny_emulator, pool, serial):
        with ForecastEngine(tiny_emulator) as engine:
            first = engine.forecast(pool[0])
            second = engine.forecast(pool[0])
            stats = engine.stats()
        assert np.array_equal(first, serial[0])
        assert np.array_equal(second, first)
        assert stats["cache"]["hits"] == 1
        assert stats["n_batches"] == 1  # the hit never reached the queue


class TestBatching:
    def test_requests_coalesce_into_one_batch(self, tiny_emulator, pool,
                                              serial):
        engine, entered, release = _gated_engine(tiny_emulator,
                                                 max_batch=8)
        with engine:
            head = engine.submit(pool[0])
            assert entered.wait(5)  # worker busy with the first batch
            rest = [engine.submit(w) for w in pool[1:5]]
            release.set()
            outputs = [head.result(5)] + [p.result(5) for p in rest]
        stats = engine.stats()
        assert stats["n_requests"] == 5
        assert stats["n_batches"] == 2  # [w0] then [w1..w4] coalesced
        for output, reference in zip(outputs, serial[:5], strict=True):
            assert np.array_equal(output, reference)

    def test_shed_when_queue_full(self, tiny_emulator, pool):
        engine, entered, release = _gated_engine(tiny_emulator,
                                                 max_batch=1, max_queue=1)
        with engine:
            head = engine.submit(pool[0])
            assert entered.wait(5)  # queue now empty, worker blocked
            waiting = engine.submit(pool[1])  # fills the queue
            with pytest.raises(EngineOverloaded, match="shed"):
                engine.submit(pool[2])
            assert engine.stats()["n_shed"] == 1
            release.set()
            head.result(5)
            waiting.result(5)

    def test_timeout_then_late_result(self, tiny_emulator, pool, serial):
        engine, entered, release = _gated_engine(tiny_emulator)
        with engine:
            pending = engine.submit(pool[0])
            assert entered.wait(5)
            with pytest.raises(ForecastTimeout, match="not served"):
                pending.result(timeout=0.05)
            assert engine.stats()["n_timeouts"] == 1
            release.set()
            # The result was still computed; a later wait observes it.
            assert np.array_equal(pending.result(5), serial[0])

    def test_stop_fails_queued_requests(self, tiny_emulator, pool):
        engine, entered, release = _gated_engine(tiny_emulator,
                                                 max_batch=1)
        engine.start()
        head = engine.submit(pool[0])
        assert entered.wait(5)
        queued = engine.submit(pool[1])
        engine._stop.set()  # worker exits after the in-flight batch
        release.set()
        engine.stop()
        head.result(5)  # the in-flight batch completed normally
        # The typed EngineStopped (a RuntimeError subclass) is part of
        # the wire contract: router workers translate it to the
        # `shutdown` error code, so the exact type is pinned here.
        from repro.serve.engine import EngineStopped
        with pytest.raises(EngineStopped, match="engine stopped"):
            queued.result(5)


class TestRequestValidation:
    def test_not_running(self, tiny_emulator, pool):
        engine = ForecastEngine(tiny_emulator)
        with pytest.raises(RuntimeError, match="not running"):
            engine.submit(pool[0])

    def test_wrong_shape(self, tiny_emulator):
        with ForecastEngine(tiny_emulator) as engine:
            with pytest.raises(ValueError, match="request window"):
                engine.forecast(np.zeros((2, 2)))

    def test_config_and_overrides_exclusive(self, tiny_emulator):
        with pytest.raises(TypeError, match="not both"):
            ForecastEngine(tiny_emulator, config=EngineConfig(),
                           max_batch=4)

    @pytest.mark.parametrize("field, value", [
        ("max_batch", 0), ("max_queue", 0), ("default_timeout_s", 0.0),
        ("cache_entries", -1), ("poll_interval_s", 0.0)])
    def test_config_validation(self, field, value):
        with pytest.raises(ValueError, match=field):
            EngineConfig(**{field: value})

    def test_start_idempotent_and_restartable(self, tiny_emulator, pool):
        engine = ForecastEngine(tiny_emulator, cache_entries=0)
        engine.start()
        engine.start()
        engine.forecast(pool[0])
        engine.stop()
        engine.stop()
        engine.start()  # a stopped engine can serve again
        engine.forecast(pool[1])
        engine.stop()


class TestForecastCache:
    def test_digest_sensitive_to_version_and_window(self):
        w = np.arange(6.0).reshape(2, 3)
        base = window_digest("v1", w)
        assert window_digest("v2", w) != base
        assert window_digest("v1", w.copy()) == base  # content-addressed
        assert window_digest("v1", w.reshape(3, 2)) != base
        bumped = w.copy()
        bumped[0, 0] = np.nextafter(bumped[0, 0], 1.0)
        assert window_digest("v1", bumped) != base

    def test_lru_eviction_order(self):
        cache = ForecastCache(max_entries=2)
        cache.put("a", np.array([1.0]))
        cache.put("b", np.array([2.0]))
        assert cache.get("a") is not None  # refresh a; b is now LRU
        cache.put("c", np.array([3.0]))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_zero_capacity_disables(self):
        cache = ForecastCache(max_entries=0)
        cache.put("a", np.array([1.0]))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_returns_copies(self):
        cache = ForecastCache()
        value = np.array([1.0, 2.0])
        cache.put("a", value)
        value[:] = 0.0
        out = cache.get("a")
        np.testing.assert_array_equal(out, [1.0, 2.0])
        out[:] = -1.0
        np.testing.assert_array_equal(cache.get("a"), [1.0, 2.0])

    def test_hit_miss_counters_and_obs(self):
        obs.enable()
        cache = ForecastCache()
        assert cache.get("a") is None
        cache.put("a", np.array([1.0]))
        cache.get("a")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        registry = obs.get_registry()
        assert registry.counters["serve/cache/hit"].value == 1
        assert registry.counters["serve/cache/miss"].value == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            ForecastCache(max_entries=-1)


class TestLegacyBundleCompatibility:
    """A bundle saved by the pre-fused-kernel tree (tests/data/) loads
    into today's fused layers and serves bitwise-identical forecasts —
    both directly and through the micro-batching engine."""

    @pytest.fixture(scope="class")
    def legacy(self):
        from pathlib import Path

        from repro.serve import load_bundle
        data = Path(__file__).parent / "data"
        emulator = load_bundle(data / "legacy_emulator_bundle.npz")
        windows = np.load(data / "legacy_emulator_windows.npy")
        forecasts = np.load(data / "legacy_emulator_forecast.npy")
        return emulator, windows, forecasts

    def test_direct_predictions_bitwise(self, legacy):
        emulator, windows, want = legacy
        got = emulator.predict_windows(windows)
        assert np.array_equal(got.view(np.uint8), want.view(np.uint8))

    def test_engine_serves_legacy_forecasts_bitwise(self, legacy):
        """Engine responses for a legacy bundle equal its serial
        one-at-a-time predictions (the engine contract; the recorded
        fixture is a full-batch prediction, which batch-invariance
        deliberately does NOT have to match for B > 1)."""
        emulator, windows, _ = legacy
        serial = [emulator.predict_windows(w[None])[0]
                  for w in windows[:16]]
        with ForecastEngine(emulator, max_batch=4,
                            cache_entries=0) as engine:
            with ThreadPoolExecutor(max_workers=4) as executor:
                futures = [executor.submit(engine.forecast, w)
                           for w in windows[:16]]
                outputs = [f.result() for f in futures]
        for output, reference in zip(outputs, serial, strict=True):
            assert np.array_equal(output, reference)
