"""Model registry (repro.serve.registry): layout, promotion atomicity
discipline, and name hygiene."""

import numpy as np
import pytest

from repro.serve import ModelRegistry


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "reg")


@pytest.fixture()
def windows(tiny_emulator, generator):
    snaps = generator.snapshots(np.arange(60))
    return tiny_emulator.pipeline.windows_from_snapshots(snaps).inputs


class TestPublish:
    def test_layout(self, registry, tiny_emulator):
        path = registry.publish("v1", tiny_emulator)
        assert path == registry.root / "versions" / "v1.npz"
        assert path.exists()
        assert registry.versions() == ["v1"]
        assert registry.active() is None  # publish alone does not promote

    def test_no_tmp_leftovers(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True)
        leftovers = [p for p in registry.root.rglob("*.tmp")]
        assert leftovers == []

    def test_republish_replaces(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, metadata={"rev": 1})
        registry.publish("v1", tiny_emulator, metadata={"rev": 2})
        assert registry.versions() == ["v1"]
        assert registry.header("v1")["metadata"] == {"rev": 2}

    @pytest.mark.parametrize("bad", ["", ".hidden", "a/b", "a b",
                                     "x.npz", "../escape", None])
    def test_bad_names_rejected(self, registry, tiny_emulator, bad):
        with pytest.raises(ValueError, match="invalid version name"):
            registry.publish(bad, tiny_emulator)


class TestPromotion:
    def test_promote_sets_active(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator)
        registry.publish("v2", tiny_emulator)
        registry.promote("v1")
        assert registry.active() == "v1"
        registry.promote("v2")
        assert registry.active() == "v2"

    def test_publish_activate(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True)
        assert registry.active() == "v1"

    def test_promote_unknown_rejected(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator)
        with pytest.raises(ValueError, match="unknown version"):
            registry.promote("v2")
        assert registry.active() is None  # failed promote changed nothing


class TestLoad:
    def test_load_active_bitwise(self, registry, tiny_emulator, windows):
        registry.publish("v1", tiny_emulator, activate=True)
        name, loaded = registry.load()
        assert name == "v1"
        np.testing.assert_array_equal(
            loaded.predict_windows(windows),
            tiny_emulator.predict_windows(windows))

    def test_load_by_name(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator)
        name, _ = registry.load("v1")
        assert name == "v1"

    def test_load_without_active(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator)
        with pytest.raises(ValueError, match="no active version"):
            registry.load()

    def test_load_unknown(self, registry):
        with pytest.raises(ValueError, match="unknown version"):
            registry.load("ghost")

    def test_reopen_existing_registry(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True)
        reopened = ModelRegistry(registry.root)
        assert reopened.versions() == ["v1"]
        assert reopened.active() == "v1"

    def test_repr_mentions_state(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True)
        text = repr(registry)
        assert "v1" in text


class TestAuditTrail:
    def test_publish_and_promote_append(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True)
        registry.publish("v2", tiny_emulator)
        trail = registry.audit_trail()
        assert [(e["action"], e["version"]) for e in trail] == [
            ("publish", "v1"), ("promote", "v1"), ("publish", "v2")]

    def test_promote_records_previous(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True)
        registry.publish("v2", tiny_emulator)
        registry.promote("v2")
        promotes = [e for e in registry.audit_trail()
                    if e["action"] == "promote"]
        assert promotes[0]["previous"] is None
        assert promotes[1]["previous"] == "v1"

    def test_note_recorded(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True,
                         note="retrain 0 (no-active)")
        assert all(e["note"] == "retrain 0 (no-active)"
                   for e in registry.audit_trail())

    def test_empty_trail(self, registry):
        assert registry.audit_trail() == []

    def test_torn_final_line_tolerated(self, registry, tiny_emulator):
        """A crash mid-append leaves a torn last line; readers skip it."""
        registry.publish("v1", tiny_emulator)
        with open(registry.root / "AUDIT.jsonl", "a",
                  encoding="utf-8") as fh:
            fh.write('{"action": "pub')  # torn
        trail = registry.audit_trail()
        assert len(trail) == 1
        assert trail[0]["version"] == "v1"

    def test_trail_never_consulted_by_operations(self, registry,
                                                 tiny_emulator):
        """The trail is advisory: deleting it breaks nothing."""
        registry.publish("v1", tiny_emulator, activate=True)
        (registry.root / "AUDIT.jsonl").unlink()
        registry.promote("v1")                 # works without history
        name, _ = registry.load()
        assert name == "v1"

    def test_failed_promote_not_recorded(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator)
        with pytest.raises(ValueError):
            registry.promote("ghost")
        assert [e["action"] for e in registry.audit_trail()] == ["publish"]


class TestReport:
    """The one formatter behind `repro serve --status` and
    `repro pipeline status` — regression-pinned here so both CLIs render
    identically."""

    def test_empty_registry(self, registry):
        report = registry.report()
        assert str(registry.root) in report
        assert "(no versions published)" in report

    def test_lists_versions_with_active_marker(self, registry,
                                               tiny_emulator):
        registry.publish("v1", tiny_emulator)
        registry.publish("v2", tiny_emulator, activate=True)
        lines = registry.report().splitlines()
        assert lines[1:] == ["  v1", "  v2 *active*"]

    def test_exact_rendering(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True)
        assert registry.report() == (
            f"registry {registry.root}\n  v1 *active*")

    def test_serve_status_uses_report(self, registry, tiny_emulator,
                                      capsys):
        """`repro serve --status` prints report() verbatim."""
        from repro.cli import serve_main
        registry.publish("v1", tiny_emulator, activate=True)
        assert serve_main(["--registry", str(registry.root),
                           "--status"]) == 0
        assert registry.report() in capsys.readouterr().out
