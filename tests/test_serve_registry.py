"""Model registry (repro.serve.registry): layout, promotion atomicity
discipline, and name hygiene."""

import numpy as np
import pytest

from repro.serve import ModelRegistry


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "reg")


@pytest.fixture()
def windows(tiny_emulator, generator):
    snaps = generator.snapshots(np.arange(60))
    return tiny_emulator.pipeline.windows_from_snapshots(snaps).inputs


class TestPublish:
    def test_layout(self, registry, tiny_emulator):
        path = registry.publish("v1", tiny_emulator)
        assert path == registry.root / "versions" / "v1.npz"
        assert path.exists()
        assert registry.versions() == ["v1"]
        assert registry.active() is None  # publish alone does not promote

    def test_no_tmp_leftovers(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True)
        leftovers = [p for p in registry.root.rglob("*.tmp")]
        assert leftovers == []

    def test_republish_replaces(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, metadata={"rev": 1})
        registry.publish("v1", tiny_emulator, metadata={"rev": 2})
        assert registry.versions() == ["v1"]
        assert registry.header("v1")["metadata"] == {"rev": 2}

    @pytest.mark.parametrize("bad", ["", ".hidden", "a/b", "a b",
                                     "x.npz", "../escape", None])
    def test_bad_names_rejected(self, registry, tiny_emulator, bad):
        with pytest.raises(ValueError, match="invalid version name"):
            registry.publish(bad, tiny_emulator)


class TestPromotion:
    def test_promote_sets_active(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator)
        registry.publish("v2", tiny_emulator)
        registry.promote("v1")
        assert registry.active() == "v1"
        registry.promote("v2")
        assert registry.active() == "v2"

    def test_publish_activate(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True)
        assert registry.active() == "v1"

    def test_promote_unknown_rejected(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator)
        with pytest.raises(ValueError, match="unknown version"):
            registry.promote("v2")
        assert registry.active() is None  # failed promote changed nothing


class TestLoad:
    def test_load_active_bitwise(self, registry, tiny_emulator, windows):
        registry.publish("v1", tiny_emulator, activate=True)
        name, loaded = registry.load()
        assert name == "v1"
        np.testing.assert_array_equal(
            loaded.predict_windows(windows),
            tiny_emulator.predict_windows(windows))

    def test_load_by_name(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator)
        name, _ = registry.load("v1")
        assert name == "v1"

    def test_load_without_active(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator)
        with pytest.raises(ValueError, match="no active version"):
            registry.load()

    def test_load_unknown(self, registry):
        with pytest.raises(ValueError, match="unknown version"):
            registry.load("ghost")

    def test_reopen_existing_registry(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True)
        reopened = ModelRegistry(registry.root)
        assert reopened.versions() == ["v1"]
        assert reopened.active() == "v1"

    def test_repr_mentions_state(self, registry, tiny_emulator):
        registry.publish("v1", tiny_emulator, activate=True)
        text = repr(registry)
        assert "v1" in text
