"""Experiment-driver tests on a miniature preset.

These exercise the same code paths as the paper-scale benchmarks but with
tiny budgets, asserting structural correctness and the coarse orderings
(full-shape assertions live in the benchmarks).
"""

import numpy as np
import pytest

from repro.experiments.context import (
    ExperimentPreset,
    ReproductionContext,
    get_context,
)


@pytest.fixture(scope="module")
def mini_ctx():
    preset = ExperimentPreset(name="mini", degrees=12.0, seed=3,
                              posttrain_epochs=4, search_evaluations=150,
                              forest_estimators=4, boosting_rounds=6,
                              wall_seconds=900.0)
    return ReproductionContext(preset)


class TestContext:
    def test_get_context_memoized(self):
        assert get_context("quick") is get_context("quick")

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            get_context("huge")

    def test_lazy_dataset(self, mini_ctx):
        ds = mini_ctx.dataset
        assert ds is mini_ctx.dataset  # cached
        assert ds.grid.degrees == 12.0

    def test_best_architecture_valid_and_cached(self, mini_ctx):
        arch = mini_ctx.best_architecture()
        mini_ctx.space.validate(arch)
        assert mini_ctx.best_architecture() is arch

    def test_test_snapshots_shape(self, mini_ctx):
        snaps = mini_ctx.test_snapshots()
        assert snaps.shape == (mini_ctx.dataset.n_ocean,
                               mini_ctx.dataset.n_test)


class TestSearchExperiments:
    def test_fig3_structure(self, mini_ctx, monkeypatch):
        from repro.experiments import fig3_trajectories as f3
        monkeypatch.setattr(f3, "get_context", lambda preset: mini_ctx)
        result = f3.run_fig3("mini", n_nodes=24, seed=1)
        assert set(result.trajectories) == {"AE", "RL", "RS"}
        for times, rewards in result.trajectories.values():
            assert times.size == rewards.size > 0
        assert 0.5 < result.reward_at("AE", 10.0) < 1.0

    def test_table3_structure(self, mini_ctx, monkeypatch):
        from repro.experiments import table3_scaling as t3
        monkeypatch.setattr(t3, "get_context", lambda preset: mini_ctx)
        result = t3.run_table3("mini", node_counts=(24, 48), seed=1)
        assert set(result.table) == {24, 48}
        for methods in result.table.values():
            assert set(methods) == {"AE", "RL", "RS"}
        # Asynchronous methods beat RL utilization at every size.
        for methods in result.table.values():
            assert methods["AE"][0] > methods["RL"][0]
            assert methods["RS"][0] > methods["RL"][0]
        # Evaluations grow with node count for AE.
        assert result.table[48]["AE"][1] > result.table[24]["AE"][1]

    def test_fig8_structure(self, mini_ctx, monkeypatch):
        from repro.experiments import fig8_scaling_architectures as f8
        monkeypatch.setattr(f8, "get_context", lambda preset: mini_ctx)
        result = f8.run_fig8("mini", node_counts=(24,), seed=1,
                             threshold=0.94)
        assert 24 in result.ae_curves
        counts = result.final_counts[24]
        assert set(counts) == {"AE", "RL", "RS"}

    def test_fig9_structure(self, mini_ctx, monkeypatch):
        from repro.experiments import fig9_variability as f9
        monkeypatch.setattr(f9, "get_context", lambda preset: mini_ctx)
        result = f9.run_fig9("mini", n_nodes=24, n_repetitions=3, seed=1)
        assert result.final_rewards["AE"].shape == (3,)
        mean, band = result.reward_band("AE")
        assert 0.5 < mean < 1.0
        assert band >= 0.0

    def test_fig4_description(self, mini_ctx, monkeypatch):
        from repro.experiments import fig4_best_architecture as f4
        monkeypatch.setattr(f4, "get_context", lambda preset: mini_ctx)
        result = f4.run_fig4("mini")
        assert "layer ops" in result.description
        assert result.n_parameters > 0
        assert 0 <= result.n_active_layers <= 5


class TestScienceExperiments:
    def test_fig5_structure(self, mini_ctx, monkeypatch):
        from repro.experiments import fig5_posttraining as f5
        monkeypatch.setattr(f5, "get_context", lambda preset: mini_ctx)
        result = f5.run_fig5("mini")
        assert len(result.train_mode_r2) == 5
        assert len(result.cesm_mode_correlation) == 5
        assert np.isfinite(result.validation_r2)

    def test_table1_structure(self, mini_ctx, monkeypatch):
        from repro.experiments import table1_rmse as t1
        monkeypatch.setattr(t1, "get_context", lambda preset: mini_ctx)
        result = t1.run_table1("mini", max_targets=10, n_weeks=3)
        assert result.weeks == [1, 2, 3]
        assert set(result.rmse) == {"Predicted", "CESM", "HYCOM"}
        for values in result.rmse.values():
            assert len(values) == 3
            assert all(v > 0 for v in values)
        # CESM (uninitialized climate run) is the least accurate system.
        assert result.rmse["CESM"][0] > result.rmse["HYCOM"][0]

    def test_fig6_structure(self, mini_ctx, monkeypatch):
        from repro.experiments import fig6_field_forecast as f6
        monkeypatch.setattr(f6, "get_context", lambda preset: mini_ctx)
        result = f6.run_fig6("mini")
        assert set(result.fields) == {"NOAA (truth)", "HYCOM", "CESM",
                                      "POD-LSTM"}
        assert result.global_rmse["NOAA (truth)"] == 0.0
        for name in ("HYCOM", "CESM", "POD-LSTM"):
            assert result.global_rmse[name] > 0.0

    def test_fig7_structure(self, mini_ctx, monkeypatch):
        from repro.experiments import fig7_probes as f7
        monkeypatch.setattr(f7, "get_context", lambda preset: mini_ctx)
        result = f7.run_fig7("mini", max_targets=12)
        from repro.experiments.fig7_probes import PROBES
        for name, per_probe in result.rmse.items():
            assert set(per_probe) == set(PROBES)
        for probe in PROBES:
            assert result.rmse["NOAA (truth)"][probe] == 0.0
