import numpy as np
import pytest

from repro.data import SSTDataset, WeeklyCalendar, load_sst_dataset


class TestSSTDataset:
    def test_split_sizes(self, tiny_dataset):
        # 200-week archive starting 1981-10-22: all pre-1990 -> all train.
        assert tiny_dataset.n_train + tiny_dataset.n_test == 200

    def test_training_snapshot_shape(self, tiny_dataset, train_snapshots):
        assert train_snapshots.shape == (tiny_dataset.n_ocean,
                                         tiny_dataset.n_train)

    def test_training_snapshots_cached(self, tiny_dataset):
        a = tiny_dataset.training_snapshots()
        b = tiny_dataset.training_snapshots()
        assert a is b

    def test_test_chunks_cover_test_period(self, split_dataset):
        total = 0
        seen = []
        for idx, block in split_dataset.test_snapshot_chunks(16):
            assert block.shape == (split_dataset.n_ocean, idx.size)
            total += idx.size
            seen.extend(idx.tolist())
        assert total == split_dataset.n_test
        assert seen == list(split_dataset.test_indices)

    def test_split_dataset_has_both_periods(self, split_dataset):
        assert split_dataset.n_train == 427
        assert split_dataset.n_test == 480 - 427

    def test_chunks_match_direct_generation(self, split_dataset):
        idx, block = next(iter(split_dataset.test_snapshot_chunks(8)))
        np.testing.assert_allclose(block, split_dataset.snapshots(idx))

    def test_bad_chunk_size(self, split_dataset):
        with pytest.raises(ValueError):
            next(iter(split_dataset.test_snapshot_chunks(0)))

    def test_indices_are_disjoint(self, tiny_dataset):
        train = set(tiny_dataset.train_indices)
        test = set(tiny_dataset.test_indices)
        assert not train & test
        assert len(train | test) == 200


class TestLoadSSTDataset:
    def test_default_paper_split(self):
        ds = load_sst_dataset(degrees=12.0, seed=0)
        assert ds.n_train == 427
        assert ds.n_test == 1487

    def test_grid_resolution(self):
        ds = load_sst_dataset(degrees=12.0, seed=0)
        assert ds.grid.degrees == 12.0

    def test_seed_controls_fields(self):
        a = load_sst_dataset(degrees=12.0, seed=1).snapshots([0])
        b = load_sst_dataset(degrees=12.0, seed=2).snapshots([0])
        assert not np.allclose(a, b)

    def test_short_archive(self):
        ds = load_sst_dataset(degrees=12.0, seed=0, n_snapshots=50)
        assert ds.n_train == 50
        assert ds.n_test == 0
