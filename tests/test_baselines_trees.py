import numpy as np
import pytest

from repro.baselines import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    RandomForestRegressor,
)
from repro.nn.metrics import r2_score


@pytest.fixture()
def step_data(rng):
    """Piecewise-constant target — trees should fit it exactly."""
    x = rng.uniform(-1, 1, size=(120, 2))
    y = np.where(x[:, :1] > 0.0, 2.0, -1.0) + np.where(x[:, 1:] > 0.3,
                                                       0.5, 0.0)
    return x, y


@pytest.fixture()
def smooth_data(rng):
    x = rng.uniform(-2, 2, size=(200, 3))
    y = np.stack([np.sin(x[:, 0]) + 0.5 * x[:, 1],
                  x[:, 2] ** 2], axis=1)
    return x, y


class TestDecisionTree:
    def test_fits_piecewise_constant_exactly(self, step_data):
        x, y = step_data
        tree = DecisionTreeRegressor().fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y, atol=1e-12)

    def test_max_depth_limits(self, step_data):
        x, y = step_data
        stump = DecisionTreeRegressor(max_depth=1).fit(x, y)
        assert stump.depth() == 1
        deep = DecisionTreeRegressor().fit(x, y)
        assert deep.depth() >= 2

    def test_min_samples_leaf(self, smooth_data):
        x, y = smooth_data
        tree = DecisionTreeRegressor(min_samples_leaf=30).fit(x, y)

        def leaf_sizes(node, xs):
            if node.is_leaf:
                return [len(xs)]
            mask = xs[:, node.feature] <= node.threshold
            return (leaf_sizes(node.left, xs[mask])
                    + leaf_sizes(node.right, xs[~mask]))

        assert min(leaf_sizes(tree._root, x)) >= 30

    def test_multi_output_leaves(self, smooth_data):
        x, y = smooth_data
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert tree.predict(x).shape == y.shape

    def test_constant_target_single_leaf(self, rng):
        x = rng.standard_normal((30, 2))
        y = np.full((30, 1), 3.0)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.depth() == 0
        np.testing.assert_allclose(tree.predict(x), 3.0)

    def test_predictions_bounded_by_training_targets(self, smooth_data,
                                                     rng):
        """Trees cannot extrapolate — the Table II failure mechanism."""
        x, y = smooth_data
        tree = DecisionTreeRegressor().fit(x, y)
        far = rng.uniform(5, 10, size=(50, 3))
        pred = tree.predict(far)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    def test_max_features_subsampling(self, smooth_data):
        x, y = smooth_data
        tree = DecisionTreeRegressor(max_features=1, rng=0).fit(x, y)
        assert r2_score(y, tree.predict(x)) > 0.3

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((2, 2)))

    def test_feature_count_check(self, step_data):
        x, y = step_data
        tree = DecisionTreeRegressor().fit(x, y)
        with pytest.raises(ValueError):
            tree.predict(np.ones((2, 5)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_deterministic_given_rng(self, smooth_data):
        x, y = smooth_data
        t1 = DecisionTreeRegressor(max_features=2, rng=7).fit(x, y)
        t2 = DecisionTreeRegressor(max_features=2, rng=7).fit(x, y)
        np.testing.assert_allclose(t1.predict(x), t2.predict(x))


class TestRandomForest:
    def test_improves_over_single_tree_oob(self, rng):
        x = rng.uniform(-2, 2, size=(150, 3))
        y = (np.sin(2 * x[:, :1]) + 0.3 * rng.standard_normal((150, 1)))
        x_test = rng.uniform(-2, 2, size=(100, 3))
        y_test = np.sin(2 * x_test[:, :1])
        tree = DecisionTreeRegressor(rng=0).fit(x, y)
        forest = RandomForestRegressor(n_estimators=25, rng=0).fit(x, y)
        assert (r2_score(y_test, forest.predict(x_test))
                > r2_score(y_test, tree.predict(x_test)))

    def test_no_bootstrap_all_features_reduces_to_tree(self, smooth_data):
        x, y = smooth_data
        forest = RandomForestRegressor(n_estimators=3, bootstrap=False,
                                       rng=0).fit(x, y)
        tree = DecisionTreeRegressor().fit(x, y)
        np.testing.assert_allclose(forest.predict(x), tree.predict(x))

    def test_estimator_count(self, smooth_data):
        x, y = smooth_data
        forest = RandomForestRegressor(n_estimators=7, max_depth=2,
                                       rng=0).fit(x, y)
        assert len(forest.estimators_) == 7

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((2, 2)))

    def test_reproducible(self, smooth_data):
        x, y = smooth_data
        f1 = RandomForestRegressor(n_estimators=5, rng=3).fit(x, y)
        f2 = RandomForestRegressor(n_estimators=5, rng=3).fit(x, y)
        np.testing.assert_allclose(f1.predict(x), f2.predict(x))


class TestGradientBoosting:
    def test_fits_smooth_function(self, smooth_data):
        x, y = smooth_data
        gbt = GradientBoostingRegressor(n_estimators=80, rng=0).fit(x, y)
        assert r2_score(y, gbt.predict(x)) > 0.9

    def test_more_rounds_fit_train_better(self, smooth_data):
        x, y = smooth_data
        few = GradientBoostingRegressor(n_estimators=5, rng=0).fit(x, y)
        many = GradientBoostingRegressor(n_estimators=60, rng=0).fit(x, y)
        assert (r2_score(y, many.predict(x))
                > r2_score(y, few.predict(x)))

    def test_base_prediction_is_mean(self, smooth_data):
        x, y = smooth_data
        gbt = GradientBoostingRegressor(n_estimators=1, learning_rate=0.0001,
                                        rng=0).fit(x, y)
        np.testing.assert_allclose(gbt.predict(x).mean(axis=0),
                                   y.mean(axis=0), atol=0.01)

    def test_subsample(self, smooth_data):
        x, y = smooth_data
        gbt = GradientBoostingRegressor(n_estimators=20, subsample=0.5,
                                        rng=0).fit(x, y)
        assert r2_score(y, gbt.predict(x)) > 0.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.ones((2, 2)))
