import datetime as dt

import numpy as np
import pytest

from repro.experiments.assessment import (
    ASSESSMENT_END,
    ASSESSMENT_START,
    assessment_indices,
    podlstm_field_forecasts,
)
from repro.experiments.context import ExperimentPreset, ReproductionContext


@pytest.fixture(scope="module")
def mini_ctx():
    preset = ExperimentPreset(name="mini-assess", degrees=12.0, seed=4,
                              posttrain_epochs=2, search_evaluations=60,
                              wall_seconds=600.0)
    return ReproductionContext(preset)


class TestAssessmentWindow:
    def test_paper_dates(self):
        assert ASSESSMENT_START == dt.date(2015, 4, 5)
        assert ASSESSMENT_END == dt.date(2018, 6, 24)

    def test_indices_inside_test_period(self, mini_ctx):
        idx = assessment_indices(mini_ctx)
        assert idx.min() >= mini_ctx.dataset.test_indices.start
        assert idx.max() < mini_ctx.dataset.calendar.n_snapshots
        assert 160 <= idx.size <= 172

    def test_dates_round_trip(self, mini_ctx):
        idx = assessment_indices(mini_ctx)
        cal = mini_ctx.dataset.calendar
        assert cal.date_of(int(idx[0])) >= ASSESSMENT_START
        assert cal.date_of(int(idx[-1])) <= ASSESSMENT_END


class TestFieldForecasts:
    def test_shapes_and_masks(self, mini_ctx):
        targets = assessment_indices(mini_ctx)[:5]
        fields = podlstm_field_forecasts(mini_ctx, 1, targets)
        generator = mini_ctx.dataset.generator
        assert fields.shape == (5,) + generator.grid.shape
        assert np.isnan(fields[:, ~generator.ocean_mask]).all()
        assert np.isfinite(fields[:, generator.ocean_mask]).all()

    def test_every_horizon_supported(self, mini_ctx):
        targets = assessment_indices(mini_ctx)[:3]
        k = mini_ctx.emulator().pipeline.window
        for horizon in (1, k // 2, k):
            fields = podlstm_field_forecasts(mini_ctx, horizon, targets)
            assert fields.shape[0] == targets.size

    def test_early_target_rejected(self, mini_ctx):
        with pytest.raises(ValueError, match="before index 0"):
            podlstm_field_forecasts(mini_ctx, 1, np.asarray([2]))
