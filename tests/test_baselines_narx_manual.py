import numpy as np
import pytest

from repro.baselines import (
    DirectNARXForecaster,
    LinearRegressor,
    MANUAL_LSTM_WIDTHS,
    build_manual_lstm,
)
from repro.data.windowing import make_windowed_examples
from repro.nn.metrics import r2_score


@pytest.fixture()
def sinusoid_examples():
    t = np.arange(200, dtype=np.float64)
    coeff = np.stack([np.sin(2 * np.pi * t / 24.0),
                      np.cos(2 * np.pi * t / 24.0)])
    return make_windowed_examples(coeff, window=6)


class TestDirectNARX:
    def test_forecasts_periodic_series(self, sinusoid_examples):
        narx = DirectNARXForecaster(LinearRegressor(), window=6)
        narx.fit(sinusoid_examples)
        pred = narx.predict(sinusoid_examples.inputs)
        assert pred.shape == sinusoid_examples.outputs.shape
        assert r2_score(sinusoid_examples.outputs, pred) > 0.999

    def test_window_mismatch(self, sinusoid_examples):
        narx = DirectNARXForecaster(LinearRegressor(), window=5)
        with pytest.raises(ValueError, match="window"):
            narx.fit(sinusoid_examples)

    def test_predict_before_fit(self, sinusoid_examples):
        narx = DirectNARXForecaster(LinearRegressor(), window=6)
        with pytest.raises(RuntimeError):
            narx.predict(sinusoid_examples.inputs)

    def test_flattening_layout(self):
        """Features must flatten time-major: (K, F) -> K*F row."""
        tensor = np.arange(12.0).reshape(1, 3, 4)
        flat = DirectNARXForecaster._flatten(tensor)
        np.testing.assert_allclose(flat[0], np.arange(12.0))

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            DirectNARXForecaster._flatten(np.ones((3, 4)))

    def test_non_autoregressive(self, sinusoid_examples):
        """Predictions depend only on supplied true inputs (no recursion):
        predicting the same window twice gives identical output."""
        narx = DirectNARXForecaster(LinearRegressor(), window=6)
        narx.fit(sinusoid_examples)
        one = sinusoid_examples.inputs[:1]
        np.testing.assert_array_equal(narx.predict(one), narx.predict(one))


class TestManualLSTM:
    def test_paper_widths(self):
        assert MANUAL_LSTM_WIDTHS == (40, 80, 120, 200)

    @pytest.mark.parametrize("layers", [1, 5])
    def test_layer_counts(self, layers):
        net = build_manual_lstm(16, layers, rng=0)
        lstm_nodes = [n for n in net.node_names if n.startswith("lstm_")]
        assert len(lstm_nodes) == layers
        assert net.output_name == "output"

    def test_output_geometry(self, rng):
        net = build_manual_lstm(24, 2, input_dim=5, output_dim=5, rng=0)
        y = net.forward(rng.standard_normal((2, 8, 5)))
        assert y.shape == (2, 8, 5)

    def test_param_count_single_layer(self):
        net = build_manual_lstm(40, 1, input_dim=5, output_dim=5, rng=0)
        expected = 4 * ((5 + 40) * 40 + 40) + 4 * ((40 + 5) * 5 + 5)
        assert net.n_parameters == expected

    def test_width_scaling(self):
        assert (build_manual_lstm(80, 1, rng=0).n_parameters
                > build_manual_lstm(40, 1, rng=0).n_parameters)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_manual_lstm(0, 1)
        with pytest.raises(ValueError):
            build_manual_lstm(8, 0)
