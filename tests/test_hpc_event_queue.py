import pytest

from repro.hpc.event_queue import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        log = []
        q.schedule(5.0, lambda: log.append("b"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(9.0, lambda: log.append("c"))
        q.run_until(10.0)
        assert log == ["a", "b", "c"]

    def test_tie_broken_by_insertion(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append(1))
        q.schedule(1.0, lambda: log.append(2))
        q.run_until(2.0)
        assert log == [1, 2]

    def test_clock_advances_to_end(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run_until(50.0)
        assert q.now == 50.0

    def test_events_beyond_horizon_not_run(self):
        q = EventQueue()
        log = []
        q.schedule(5.0, lambda: log.append("late"))
        q.run_until(3.0)
        assert log == []
        assert q.pending == 1
        q.run_until(6.0)
        assert log == ["late"]

    def test_callbacks_can_schedule(self):
        q = EventQueue()
        log = []

        def recur():
            log.append(q.now)
            if q.now < 5.0:
                q.schedule(1.0, recur)

        q.schedule(1.0, recur)
        q.run_until(10.0)
        assert log == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_schedule_at_absolute(self):
        q = EventQueue()
        log = []
        q.schedule_at(4.0, lambda: log.append(q.now))
        q.run_until(10.0)
        assert log == [4.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_past_schedule_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.run_until(5.0)
        with pytest.raises(ValueError):
            q.schedule_at(2.0, lambda: None)

    def test_run_backwards_rejected(self):
        q = EventQueue()
        q.run_until(5.0)
        with pytest.raises(ValueError):
            q.run_until(1.0)
