"""Shared fixtures: coarse grids and tiny datasets keep the suite fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import LatLonGrid, SSTDataset, WeeklyCalendar
from repro.data.sst import SSTConfig, SyntheticSST
from repro.nas.space import StackedLSTMSpace


def pytest_collection_modifyitems(items) -> None:
    """Everything under tests/ is the fast tier-1 suite (see pyproject)."""
    for item in items:
        if "bench" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture(autouse=True)
def _observability_isolation():
    """Each test starts with a disabled, empty global obs registry and
    cannot leak recorded state (or the enabled flag) into the next."""
    from repro import obs
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="session")
def coarse_grid() -> LatLonGrid:
    """12-degree grid (15 x 30) — big enough for all geometry invariants."""
    return LatLonGrid(degrees=12.0)


@pytest.fixture(scope="session")
def generator(coarse_grid) -> SyntheticSST:
    return SyntheticSST(grid=coarse_grid, seed=123)


@pytest.fixture(scope="session")
def tiny_dataset(generator) -> SSTDataset:
    """200-week archive on the coarse grid (train split ~107 snapshots)."""
    return SSTDataset(generator=generator,
                      calendar=WeeklyCalendar(n_snapshots=200))


@pytest.fixture(scope="session")
def train_snapshots(tiny_dataset) -> np.ndarray:
    return tiny_dataset.training_snapshots()


@pytest.fixture(scope="session")
def tiny_emulator(generator):
    """Small fitted POD-LSTM emulator shared by the serving tests.

    Session-scoped and treated as read-only: serving never mutates the
    emulator, so bundle/registry/engine tests can share one fit.
    """
    from repro.forecast import PODLSTMEmulator
    from repro.nn import Trainer
    snapshots = generator.snapshots(np.arange(60))
    emulator = PODLSTMEmulator(n_modes=3, window=4,
                               trainer=Trainer(epochs=2, batch_size=16))
    emulator.fit(snapshots, rng=0)
    return emulator


@pytest.fixture(scope="session")
def split_dataset(generator) -> SSTDataset:
    """480-week archive: crosses the 1990 boundary so test data exists."""
    return SSTDataset(generator=generator,
                      calendar=WeeklyCalendar(n_snapshots=480))


@pytest.fixture(scope="session")
def small_space() -> StackedLSTMSpace:
    """3-layer space with 4 ops — 4^3 * 2^3 = 512 architectures."""
    from repro.nas.space.ops import Operation
    ops = (Operation("identity"), Operation("lstm", 4),
           Operation("lstm", 8), Operation("lstm", 12))
    return StackedLSTMSpace(n_layers=3, input_dim=3, output_dim=3,
                            operations=ops, max_skip_depth=3)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
