import numpy as np
import pytest

from repro.nas import (
    ArchitecturePerformanceModel,
    RealTrainingEvaluator,
    StackedLSTMSpace,
    SurrogateEvaluator,
)
from repro.nn.training import Trainer


class TestPerformanceModel:
    def test_quality_deterministic(self, small_space, rng):
        model = ArchitecturePerformanceModel(small_space, seed=0)
        arch = small_space.random_architecture(rng)
        assert model.quality(arch) == model.quality(arch)

    def test_quality_bounded(self, small_space, rng):
        model = ArchitecturePerformanceModel(small_space, seed=0)
        for _ in range(100):
            q = model.quality(small_space.random_architecture(rng))
            assert 0.30 <= q <= model.coeff.ceiling

    def test_posttraining_improves_good_archs(self, small_space, rng):
        model = ArchitecturePerformanceModel(small_space, seed=0)
        best = max((small_space.random_architecture(rng)
                    for _ in range(300)), key=model.quality)
        assert model.quality(best, epochs=100) > model.quality(best, epochs=20)

    def test_undertraining_degrades(self, small_space, rng):
        model = ArchitecturePerformanceModel(small_space, seed=0)
        arch = small_space.random_architecture(rng)
        assert model.quality(arch, epochs=5) < model.quality(arch, epochs=20)

    def test_empty_network_is_poor(self, small_space):
        model = ArchitecturePerformanceModel(small_space, seed=0)
        empty = (0, 0, 0) + (0,) * 3
        assert model.quality(empty) == pytest.approx(
            model.coeff.empty_network_quality)

    def test_observed_quality_noisy(self, small_space, rng):
        model = ArchitecturePerformanceModel(small_space, seed=0)
        arch = small_space.random_architecture(rng)
        values = {model.observed_quality(arch, np.random.default_rng(i))
                  for i in range(5)}
        assert len(values) == 5

    def test_training_seconds_scale_with_params(self, small_space):
        model = ArchitecturePerformanceModel(small_space, seed=0)
        small = (1, 0, 0) + (0,) * 3
        big = (3, 3, 3) + (0,) * 3
        assert model.training_seconds(big) > model.training_seconds(small)

    def test_training_seconds_scale_with_epochs(self, small_space, rng):
        model = ArchitecturePerformanceModel(small_space, seed=0)
        arch = small_space.random_architecture(rng)
        assert model.training_seconds(arch, epochs=100) == pytest.approx(
            5.0 * model.training_seconds(arch, epochs=20))

    def test_cost_noise_mean_preserving(self, small_space, rng):
        model = ArchitecturePerformanceModel(small_space, seed=0)
        arch = small_space.random_architecture(rng)
        noisy = [model.training_seconds(arch, np.random.default_rng(i))
                 for i in range(600)]
        assert np.mean(noisy) == pytest.approx(
            model.training_seconds(arch), rel=0.05)

    def test_invalid_epochs(self, small_space, rng):
        model = ArchitecturePerformanceModel(small_space, seed=0)
        with pytest.raises(ValueError):
            model.quality(small_space.random_architecture(rng), epochs=0)

    def test_paper_scale_calibration(self, rng):
        """Random architectures on the paper space score ~0.93-0.94 and
        the reachable optimum ~0.96-0.975 (paper Fig. 3 regime)."""
        space = StackedLSTMSpace()
        model = ArchitecturePerformanceModel(space, seed=0)
        qualities = [model.quality(space.random_architecture(rng))
                     for _ in range(800)]
        assert 0.925 < np.mean(qualities) < 0.945
        assert max(qualities) > 0.955


class TestSurrogateEvaluator:
    def test_result_fields(self, small_space, rng):
        ev = SurrogateEvaluator(small_space)
        arch = small_space.random_architecture(rng)
        res = ev.evaluate(arch, rng)
        assert res.architecture == arch
        assert res.duration > 0
        assert res.n_parameters == small_space.count_parameters(arch)
        assert res.metadata["fidelity"] == "surrogate"


class TestRealTrainingEvaluator:
    @pytest.fixture()
    def data(self, rng):
        x = rng.standard_normal((40, 4, 3))
        y = 0.2 * np.cumsum(x, axis=1)
        return x[:32], y[:32], x[32:], y[32:]

    def test_trains_and_scores(self, small_space, data, rng):
        ev = RealTrainingEvaluator(small_space, data,
                                   trainer=Trainer(epochs=3, batch_size=16))
        arch = small_space.random_architecture(rng)
        res = ev.evaluate(arch, rng=0)
        assert res.metadata["fidelity"] == "real"
        assert -5.0 < res.reward <= 1.0
        assert res.metadata["history"].n_epochs == 3

    def test_duration_from_cost_model(self, small_space, data, rng):
        model = ArchitecturePerformanceModel(small_space, seed=0)
        ev = RealTrainingEvaluator(small_space, data,
                                   trainer=Trainer(epochs=2, batch_size=16),
                                   cost_model=model)
        arch = small_space.random_architecture(rng)
        res = ev.evaluate(arch, rng=0)
        assert res.duration > 1.0  # simulated KNL seconds, not wall time

    def test_shape_validation(self, small_space, rng):
        bad = (rng.standard_normal((10, 4, 99)),) * 4
        with pytest.raises(ValueError):
            RealTrainingEvaluator(small_space, bad)

    def test_deterministic_given_seed(self, small_space, data):
        ev = RealTrainingEvaluator(small_space, data,
                                   trainer=Trainer(epochs=2, batch_size=16))
        arch = (1, 2, 0) + (0,) * 3
        r1 = ev.evaluate(arch, rng=9).reward
        r2 = ev.evaluate(arch, rng=9).reward
        assert r1 == r2
