import numpy as np
import pytest

from repro.forecast import posttrain_architecture
from repro.nas.space import StackedLSTMSpace
from repro.nas.space.ops import Operation


@pytest.fixture(scope="module")
def tiny_space():
    ops = (Operation("identity"), Operation("lstm", 6),
           Operation("lstm", 10))
    return StackedLSTMSpace(n_layers=2, input_dim=3, output_dim=3,
                            operations=ops)


class TestPosttraining:
    def test_returns_fitted_emulator(self, tiny_space, generator):
        snaps = generator.snapshots(np.arange(60))
        arch = tiny_space.random_architecture(np.random.default_rng(0))
        emulator = posttrain_architecture(tiny_space, arch, snaps,
                                          epochs=3, rng=0)
        assert emulator.history.n_epochs == 3
        assert emulator.pipeline.n_modes == 3

    def test_longer_posttraining_does_not_hurt_validation(self, tiny_space,
                                                          generator):
        """Paper Sec. IV-B: retraining longer improves the best arch."""
        snaps = generator.snapshots(np.arange(120))
        arch = (1, 2) + (0,) * tiny_space.n_skip_nodes
        short = posttrain_architecture(tiny_space, arch, snaps, epochs=3,
                                       rng=0)
        long = posttrain_architecture(tiny_space, arch, snaps, epochs=30,
                                      rng=0)
        assert long.validation_r2 >= short.validation_r2 - 0.02

    def test_deterministic(self, tiny_space, generator):
        snaps = generator.snapshots(np.arange(60))
        arch = (1, 1) + (0,) * tiny_space.n_skip_nodes
        a = posttrain_architecture(tiny_space, arch, snaps, epochs=2, rng=5)
        b = posttrain_architecture(tiny_space, arch, snaps, epochs=2, rng=5)
        assert a.validation_r2 == b.validation_r2
